//! The suite execution engine: one uniform, fault-isolated path for every
//! registered benchmark.
//!
//! Each benchmark runs on its own thread behind `catch_unwind` and a
//! wall-clock budget, so a panicking or wedged benchmark costs its own
//! result and nothing else: the engine records a [`BenchStatus`] per
//! registry entry, applies surviving [`TablePatch`]es to a partial
//! [`SuiteRun`], and returns both alongside a [`RunReport`] with full
//! measurement provenance.
//!
//! Scheduling follows the registry metadata: entries marked `exclusive`
//! (memory sweeps, context switching — anything the paper's methodology
//! wants alone on the machine, §3.4) run serially; everything else runs on
//! a small worker pool. `derived` entries run in a second phase against a
//! snapshot of the measured results, replacing the hard-coded composition
//! the old `run_suite` performed inline.

use crate::config::SuiteConfig;
use crate::error::SuiteError;
use crate::host::detect_host;
use crate::registry::{Benchmark, Registry};
use lmb_results::{
    BenchRecord, BenchStatus, CounterDelta, HarnessMetrics, MetricValue, Provenance, ResourceUsage,
    RunReport, SuiteRun, TablePatch,
};
use lmb_sys::{RusageDelta, RusageSnapshot};
use lmb_timing::{
    new_recorder, open_perf, take_events, ClockInfo, CounterValues, Counters, Harness,
    MeasureEvent, PerfCounters, Quality, RealClock, SimClock, TimeSource,
};
use lmb_trace::{emit, emit_in, ContextGuard, EventKind, Span, SpanId};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicU8, Ordering};
use std::sync::{mpsc, Mutex, Once};
use std::time::Duration;

/// The clock every engine-level decision reads: scheduling stamps, phase
/// budgets, watchdog deadlines, retry sleeps.
///
/// An enum rather than a generic parameter so `Engine`, `RunCtx` and every
/// public signature stay un-parameterized: the real arm delegates to the
/// zero-sized [`RealClock`] (one match on a fieldless discriminant), the
/// sim arm shares a seeded [`SimClock`] with the scripted benchmark bodies
/// so a whole suite run advances one virtual timeline.
#[derive(Debug, Clone)]
pub enum EngineClock {
    /// The host monotonic clock (the default).
    Real(RealClock),
    /// A seeded virtual clock; the engine runs with zero real-time sleeps.
    Sim(SimClock),
}

impl EngineClock {
    /// The shared sim clock, when this engine runs under virtual time.
    #[must_use]
    pub fn sim(&self) -> Option<&SimClock> {
        match self {
            EngineClock::Real(_) => None,
            EngineClock::Sim(sim) => Some(sim),
        }
    }
}

impl Default for EngineClock {
    fn default() -> Self {
        EngineClock::Real(RealClock)
    }
}

impl TimeSource for EngineClock {
    fn now_ns(&self) -> f64 {
        match self {
            EngineClock::Real(c) => c.now_ns(),
            EngineClock::Sim(c) => c.now_ns(),
        }
    }

    fn sleep(&self, d: Duration) {
        match self {
            EngineClock::Real(c) => c.sleep(d),
            EngineClock::Sim(c) => c.sleep(d),
        }
    }

    fn is_virtual(&self) -> bool {
        matches!(self, EngineClock::Sim(_))
    }
}

/// Per-execute phase accounting, in nanoseconds. Owned by one `execute`
/// call (never global), so concurrent engines — parallel tests, nested
/// harnesses — cannot pollute each other's budgets. Pool workers add
/// concurrently, which is why the fields are atomics; the sums are
/// therefore CPU-ish time and may exceed the suite's wall clock.
#[derive(Default)]
struct PhaseBudget {
    probe_ns: AtomicU64,
    attempt_ns: AtomicU64,
    retry_ns: AtomicU64,
    /// Benchmark threads abandoned past their watchdog deadline that are
    /// still (possibly) running. A nonzero count means later records in
    /// the same run are `contended`: the zombie holds its substrate and
    /// competes for CPU even through the exclusive phase.
    leaked_threads: AtomicU32,
}

/// Folds a region's elapsed time (read from the engine's clock, so virtual
/// under simulation) into a [`PhaseBudget`] field on drop, so every
/// `break`/`continue` path through the attempt loop is accounted.
struct PhaseTimer<'a> {
    sink: &'a AtomicU64,
    clock: &'a EngineClock,
    started: f64,
}

impl<'a> PhaseTimer<'a> {
    fn start(clock: &'a EngineClock, sink: &'a AtomicU64) -> Self {
        PhaseTimer {
            sink,
            clock,
            started: clock.now_ns(),
        }
    }
}

impl Drop for PhaseTimer<'_> {
    fn drop(&mut self) {
        self.sink.fetch_add(
            (self.clock.now_ns() - self.started).max(0.0) as u64,
            Ordering::Relaxed,
        );
    }
}

/// An OS facility a benchmark needs; probed before launch so a degraded
/// machine yields `Skipped` rows instead of mid-run crashes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Substrate {
    /// A writable `/dev/null` (the paper's "simplest nontrivial syscall").
    DevNull,
    /// A bindable loopback interface for TCP/UDP benchmarks.
    Loopback,
    /// A writable temp directory for file benchmarks.
    TempDir,
}

impl Substrate {
    /// Human name for skip reasons.
    #[must_use]
    pub fn describe(self) -> &'static str {
        match self {
            Substrate::DevNull => "/dev/null",
            Substrate::Loopback => "loopback networking",
            Substrate::TempDir => "writable temp directory",
        }
    }

    /// Cheap liveness probe; `Err` carries a skip reason.
    pub fn probe(self) -> Result<(), String> {
        let fail = |e: &dyn std::fmt::Display| Err(format!("{} unavailable: {e}", self.describe()));
        match self {
            Substrate::DevNull => {
                use std::io::Write;
                match std::fs::OpenOptions::new().write(true).open("/dev/null") {
                    Ok(mut f) => f.write_all(b"x").or_else(|e| fail(&e)),
                    Err(e) => fail(&e),
                }
            }
            Substrate::Loopback => std::net::TcpListener::bind(("127.0.0.1", 0))
                .map(drop)
                .or_else(|e| fail(&e)),
            Substrate::TempDir => {
                let path =
                    std::env::temp_dir().join(format!("lmbench-probe-{}", std::process::id()));
                match std::fs::write(&path, b"probe") {
                    Ok(()) => {
                        let _ = std::fs::remove_file(&path);
                        Ok(())
                    }
                    Err(e) => fail(&e),
                }
            }
        }
    }
}

/// Everything a benchmark runner may consult. Owned (no borrows) so the
/// engine can move it onto the watchdogged benchmark thread.
#[derive(Debug, Clone)]
pub struct RunCtx {
    /// Measurement harness, pre-wired with the engine's provenance
    /// recorder.
    pub harness: Harness,
    /// Suite configuration.
    pub config: SuiteConfig,
    /// Host name for result rows.
    pub host: String,
    /// Results measured so far — empty in phase 1, populated for
    /// `derived` entries in phase 2.
    pub snapshot: SuiteRun,
    /// The benchmark's trace span (`SpanId::NONE` when tracing is off);
    /// runners may attribute their own events to it via
    /// [`lmb_trace::emit_in`].
    pub span: SpanId,
}

/// Injected failures, for tests and fault drills. Each field names the
/// benchmark to sabotage.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    /// Panic inside this benchmark's runner.
    pub panic_in: Option<String>,
    /// Hang this benchmark past any reasonable budget.
    pub hang_in: Option<String>,
    /// Make this benchmark's substrate probe report a missing facility.
    pub deny_substrate_in: Option<String>,
}

impl FaultPlan {
    /// Reads the `LMBENCH_FAULT_PANIC`, `LMBENCH_FAULT_HANG` and
    /// `LMBENCH_FAULT_NOSUBSTRATE` environment variables (each naming a
    /// benchmark), so fault drills can target a released binary.
    #[must_use]
    pub fn from_env() -> Self {
        FaultPlan {
            panic_in: std::env::var("LMBENCH_FAULT_PANIC").ok(),
            hang_in: std::env::var("LMBENCH_FAULT_HANG").ok(),
            deny_substrate_in: std::env::var("LMBENCH_FAULT_NOSUBSTRATE").ok(),
        }
    }

    fn names(&self, bench: &str) -> (bool, bool, bool) {
        let hit = |v: &Option<String>| v.as_deref() == Some(bench);
        (
            hit(&self.panic_in),
            hit(&self.hang_in),
            hit(&self.deny_substrate_in),
        )
    }
}

/// What [`Engine::execute`] produces.
#[derive(Debug, Clone)]
pub struct EngineOutcome {
    /// The (possibly partial) result set.
    pub run: SuiteRun,
    /// Per-benchmark outcomes and provenance, registry order.
    pub report: RunReport,
}

/// What one isolated benchmark run yields: its report record plus the
/// table patches to fold into the suite result.
type BenchResult = (BenchRecord, Vec<TablePatch>);

/// The suite execution engine.
pub struct Engine {
    registry: Registry,
    config: SuiteConfig,
    faults: FaultPlan,
    clock: EngineClock,
}

impl Engine {
    /// Builds an engine over a registry; rejects invalid configurations.
    pub fn new(registry: Registry, config: SuiteConfig) -> Result<Self, SuiteError> {
        config.validate()?;
        Ok(Engine {
            registry,
            config,
            faults: FaultPlan::default(),
            clock: EngineClock::default(),
        })
    }

    /// Installs a fault plan (tests, drills).
    #[must_use]
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Installs the clock engine-level decisions read. Pass
    /// [`EngineClock::Sim`] with the same [`SimClock`] the scripted
    /// benchmark bodies share to run the whole suite under virtual time.
    #[must_use]
    pub fn with_clock(mut self, clock: EngineClock) -> Self {
        self.clock = clock;
        self
    }

    /// Runs every registered benchmark and returns the partial result set
    /// plus the run report. Never panics on a benchmark's behalf.
    pub fn execute(&self) -> EngineOutcome {
        let host = detect_host().name;
        let benches = self.registry.all();
        // Virtual runs are single-worker by decree: a shared SimClock has
        // no scheduler, so concurrent workers would interleave virtual
        // advances nondeterministically and break same-seed byte identity.
        let workers = if self.clock.is_virtual() {
            1
        } else {
            self.config.workers.max(1)
        };
        // The self-budget brackets: wall clock, the process-wide metrics
        // registry (harness warmup/calibration counters accumulate only
        // while the switch is on), and the trace sink's emission stats.
        let suite_started = self.clock.now_ns();
        let metrics_were_enabled = lmb_metrics::enabled();
        lmb_metrics::enable();
        let metrics_before = lmb_metrics::snapshot();
        let sink_before = lmb_trace::sink_stats();
        let budget = PhaseBudget::default();
        let suite_span = Span::enter("suite");
        let suite_id = suite_span.id();
        emit(|| EventKind::SuiteStart {
            benchmarks: benches.len() as u32,
            workers: workers as u32,
        });
        let slots: Mutex<Vec<Option<BenchResult>>> =
            Mutex::new((0..benches.len()).map(|_| None).collect());

        // Phase 1a: independent benchmarks on the worker pool.
        let empty = SuiteRun::default();
        let pool_queue: Mutex<VecDeque<usize>> = Mutex::new(
            (0..benches.len())
                .filter(|&i| !benches[i].derived && !benches[i].exclusive)
                .collect(),
        );
        emit(|| EventKind::PhaseStart {
            phase: "pool".into(),
        });
        std::thread::scope(|scope| {
            // Shadow the owned locals as references so the `move` closures
            // (which need their per-worker index by value) share them.
            let (pool_queue, slots, host, empty, budget) =
                (&pool_queue, &slots, &host, &empty, &budget);
            for worker in 0..workers {
                scope.spawn(move || loop {
                    let idx = pool_queue.lock().expect("queue lock").pop_front();
                    let Some(idx) = idx else { break };
                    emit_in(suite_id, || EventKind::Schedule {
                        bench: benches[idx].name.to_string(),
                        worker: worker as u32,
                    });
                    let result =
                        self.run_one(&benches[idx], host, empty, suite_id, workers > 1, budget);
                    slots.lock().expect("slots lock")[idx] = Some(result);
                });
            }
        });

        // Phase 1b: interference-sensitive benchmarks, strictly serial.
        emit(|| EventKind::PhaseStart {
            phase: "exclusive".into(),
        });
        for (idx, bench) in benches.iter().enumerate() {
            if bench.exclusive && !bench.derived {
                let result = self.run_one(bench, &host, &empty, suite_id, false, &budget);
                slots.lock().expect("slots lock")[idx] = Some(result);
            }
        }

        // Apply measured patches in registry (= table) order.
        let mut slots = slots.into_inner().expect("slots lock");
        let mut run = SuiteRun::default();
        for (_, patches) in slots.iter_mut().flatten() {
            for patch in std::mem::take(patches) {
                patch.apply(&mut run);
            }
        }

        // Phase 2: derived entries see the measured snapshot; each one's
        // patches land before the next runs.
        emit(|| EventKind::PhaseStart {
            phase: "derived".into(),
        });
        for (idx, bench) in benches.iter().enumerate() {
            if bench.derived {
                let snapshot = run.clone();
                let (record, patches) =
                    self.run_one(bench, &host, &snapshot, suite_id, false, &budget);
                for patch in patches {
                    patch.apply(&mut run);
                }
                slots[idx] = Some((record, Vec::new()));
            }
        }

        let harness = harness_budget(
            &self.clock,
            suite_started,
            &budget,
            &metrics_before,
            &sink_before,
        );
        if !metrics_were_enabled {
            lmb_metrics::disable();
        }
        let report = RunReport {
            records: slots
                .into_iter()
                .map(|slot| slot.expect("every benchmark produced a record").0)
                .collect(),
            harness: Some(harness),
            sim: self.clock.sim().map(|sim| lmb_results::SimProvenance {
                seed: sim.seed(),
                resolution_ns: sim.resolution_ns(),
                read_overhead_ns: sim.read_overhead_ns(),
                read_jitter_ns: sim.read_jitter_ns(),
            }),
            ..Default::default()
        };
        emit(|| EventKind::SuiteEnd {
            ok: report.count("ok") as u32,
            failed: report.count("failed") as u32,
            timeout: report.count("timeout") as u32,
            skipped: report.count("skipped") as u32,
        });
        drop(suite_span);
        EngineOutcome { run, report }
    }

    /// Runs one benchmark through probes, isolation, timeout and retry,
    /// narrating every decision into the run's trace span.
    fn run_one(
        &self,
        bench: &Benchmark,
        host: &str,
        snapshot: &SuiteRun,
        suite_span: SpanId,
        contended: bool,
        budget: &PhaseBudget,
    ) -> BenchResult {
        let started = self.clock.now_ns();
        let span = Span::enter_with_parent(format!("bench:{}", bench.name), suite_span);
        let mut record = BenchRecord {
            name: bench.name.to_string(),
            produces: bench.produces.to_string(),
            status: BenchStatus::Ok,
            attempts: 0,
            wall_ms: 0.0,
            exclusive: bench.exclusive,
            provenance: None,
            rusage: None,
            counters: None,
            metrics: Vec::new(),
            span: span.id().as_option(),
        };
        let (inject_panic, inject_hang, deny_substrate) = self.faults.names(bench.name);

        let probe_timer = PhaseTimer::start(&self.clock, &budget.probe_ns);
        let probe_failure = if deny_substrate {
            let reason = "injected fault: substrate reported missing".to_string();
            emit(|| EventKind::Probe {
                substrate: "injected".into(),
                ok: false,
                detail: reason.clone(),
            });
            Some(reason)
        } else {
            let mut failure = None;
            for s in bench.requires {
                let result = s.probe();
                emit(|| EventKind::Probe {
                    substrate: s.describe().to_string(),
                    ok: result.is_ok(),
                    detail: result.clone().err().unwrap_or_default(),
                });
                if let Err(reason) = result {
                    failure = Some(reason);
                    break;
                }
            }
            failure
        };
        drop(probe_timer);
        if let Some(reason) = probe_failure {
            emit(|| EventKind::Skip {
                reason: reason.clone(),
            });
            record.status = BenchStatus::Skipped(reason);
            record.wall_ms = (self.clock.now_ns() - started).max(0.0) / 1e6;
            emit_outcome(&record);
            return (record, Vec::new());
        }

        let timeout = self.config.bench_timeout;
        let limit_ms = timeout.as_millis() as u64;
        let max_attempts = if bench.derived {
            1
        } else {
            self.config.retry.max_attempts.max(1)
        };
        let mut patches = Vec::new();
        loop {
            record.attempts += 1;
            // Drops at every exit from this iteration: the first attempt
            // bills the attempt phase, noise re-runs bill the retry one.
            let _attempt_timer = PhaseTimer::start(
                &self.clock,
                if record.attempts == 1 {
                    &budget.attempt_ns
                } else {
                    &budget.retry_ns
                },
            );
            emit(|| EventKind::Attempt {
                attempt: record.attempts,
            });
            // Exact under serial execution (exclusive/derived phases, or a
            // one-worker pool); with concurrent workers a delta may include
            // a neighbour's calls — the counters are process-global.
            let sys_before = lmb_sys::syscall_snapshot();
            let recorder = new_recorder();
            let bench_span = span.id();
            // Under simulation the context harness is never measured with
            // (scripted bodies build their own sim-clocked harness), so a
            // pinned ClockInfo replaces the real probe: no wall-clock work
            // and no host-dependent numbers anywhere near the report.
            let harness = match self.clock.sim() {
                Some(_) => Harness::with_source_and_clock(
                    self.config.options,
                    RealClock,
                    ClockInfo {
                        resolution_ns: 1.0,
                        overhead_ns: 15.0,
                    },
                ),
                None => Harness::new(self.config.options),
            };
            let ctx = RunCtx {
                harness: harness.with_recorder(recorder.clone()),
                config: self.config,
                host: host.to_string(),
                snapshot: snapshot.clone(),
                span: bench_span,
            };
            let runner = bench.runner_fn();
            // Moved onto the bench thread so the injected hang sleeps on
            // the engine's clock: real time on hardware, an 86,400 s
            // virtual advance (and an instant return) under simulation.
            let hang_clock = self.clock.clone();
            // Virtual deadline anchor, read before the body advances the
            // shared timeline; `None` on hardware, where the blocking
            // `recv_timeout` below enforces the budget instead.
            let attempt_virtual_start = self.clock.is_virtual().then(|| self.clock.now_ns());
            let (tx, rx) = mpsc::channel();
            // Detached on purpose: a wedged benchmark thread is abandoned at
            // the deadline (it cannot be cancelled), and only its result
            // channel is dropped. The fork-based `lmb_sys::run_isolated` is
            // the heavier alternative when abandonment is not acceptable.
            std::thread::Builder::new()
                .name(format!("bench-{}", bench.name))
                .spawn(move || {
                    // The bench span lives on the engine's thread; re-enter
                    // it here so the harness's warmup/calibration events
                    // land under the right benchmark.
                    let _trace_ctx = ContextGuard::enter(bench_span);
                    // Thread-scope rusage brackets the runner so the delta
                    // is exactly this attempt's cost, even with pool
                    // neighbours running; taken outside `catch_unwind` so a
                    // panicking attempt still reports what it consumed.
                    let usage_before = RusageSnapshot::thread();
                    // The hardware-counter bracket nests just inside the
                    // rusage one and around `catch_unwind`: a panicking
                    // attempt still closes to a whole (never torn) delta,
                    // and the counts cover exactly what the attempt ran.
                    // Opened on this thread because perf groups bind to
                    // the opener (`pid = 0`).
                    let mut counters = thread_counters();
                    let counting = counters.as_mut().is_some_and(|c| c.begin());
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        if inject_panic {
                            panic!("injected fault: forced panic");
                        }
                        if inject_hang {
                            hang_clock.sleep(Duration::from_secs(86_400));
                        }
                        (*runner)(&ctx)
                    }));
                    let delta = if counting {
                        counters.as_mut().and_then(|c| c.end())
                    } else {
                        None
                    };
                    let usage = usage_before.delta(&RusageSnapshot::thread());
                    let _ = tx.send((outcome.map_err(panic_message), usage, delta));
                })
                .expect("spawn benchmark thread");

            // The watchdog. On hardware, `recv_timeout` enforces the
            // budget in real time and expiry abandons a still-running
            // thread (a tracked leak, below). Under simulation scripted
            // bodies always terminate — virtual sleeps return instantly —
            // so the engine joins the result unconditionally and then
            // classifies against the virtual clock: deterministic
            // timeouts, no leak.
            let received = match attempt_virtual_start {
                Some(t0) => rx
                    .recv()
                    .ok()
                    .filter(|_| (self.clock.now_ns() - t0) <= timeout.as_nanos() as f64),
                None => rx.recv_timeout(timeout).ok(),
            };
            let (outcome, usage, counter_delta) = match received {
                None => {
                    emit(|| EventKind::Timeout { limit_ms });
                    if !self.clock.is_virtual() {
                        // The benchmark thread is abandoned, not dead: it
                        // keeps its substrate and its CPU until the body
                        // returns, so every later record in this run is
                        // measured on a contended machine.
                        let leaked = budget.leaked_threads.fetch_add(1, Ordering::Relaxed) + 1;
                        emit(|| EventKind::ThreadLeak {
                            bench: bench.name.to_string(),
                            leaked,
                        });
                    }
                    record.status = BenchStatus::TimedOut { limit_ms };
                    break;
                }
                Some(received) => received,
            };
            // Kernel-accounted costs and hardware counters are real-world
            // observations; under simulation they are nondeterministic
            // noise that would break same-seed byte identity, so the
            // record omits them (the tolerant schema already allows it).
            if !self.clock.is_virtual() {
                let leaked = budget.leaked_threads.load(Ordering::Relaxed) > 0;
                record.rusage = Some(archive_rusage(&usage, contended || leaked));
                record.counters = counter_delta.map(archive_counters);
            }
            record.provenance = provenance_from(&take_events(&recorder));
            emit_quality_metrics(record.provenance.as_ref());
            match outcome {
                Err(panic_msg) => {
                    emit(|| EventKind::Panic {
                        message: panic_msg.clone(),
                    });
                    record.status = BenchStatus::Failed(panic_msg);
                    break;
                }
                Ok(output) => {
                    emit(|| EventKind::Syscalls {
                        counts: sys_before.delta(&lmb_sys::syscall_snapshot()),
                    });
                    if let Some(reason) = output.skip {
                        emit(|| EventKind::Skip {
                            reason: reason.clone(),
                        });
                        record.status = BenchStatus::Skipped(reason);
                        break;
                    }
                    record.status = BenchStatus::Ok;
                    record.metrics = output
                        .metrics
                        .iter()
                        .map(|m| MetricValue {
                            label: m.label.to_string(),
                            value: m.value,
                            unit: m.unit.name().to_string(),
                        })
                        .collect();
                    record
                        .metrics
                        .extend(counter_metrics(record.counters.as_ref()));
                    for m in &record.metrics {
                        emit(|| EventKind::Metric {
                            label: m.label.clone(),
                            value: m.value,
                            unit: m.unit.clone(),
                        });
                    }
                    patches = output.patches;
                    let noisy_cv = record
                        .provenance
                        .as_ref()
                        .map(|p| p.cv)
                        .filter(|&cv| cv > self.config.retry.cv_threshold);
                    if let Some(cv) = noisy_cv {
                        if record.attempts < max_attempts {
                            emit(|| EventKind::Retry {
                                attempt: record.attempts,
                                cv,
                                threshold: self.config.retry.cv_threshold,
                            });
                            continue;
                        }
                    }
                    break;
                }
            }
        }
        record.wall_ms = (self.clock.now_ns() - started).max(0.0) / 1e6;
        emit_outcome(&record);
        (record, patches)
    }
}

/// Assembles the run's self-budget: wall clock, phase atomics, the
/// metrics-registry delta (the timing harness accumulates warmup and
/// calibration time there) and the trace sink's emission delta.
fn harness_budget(
    clock: &EngineClock,
    suite_started: f64,
    budget: &PhaseBudget,
    metrics_before: &lmb_metrics::Snapshot,
    sink_before: &lmb_trace::SinkStatsSnapshot,
) -> HarnessMetrics {
    let ns_to_ms = |ns: u64| ns as f64 / 1e6;
    let delta = lmb_metrics::snapshot().delta_from(metrics_before);
    let counter = |name: &str| {
        delta
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    };
    let sink = lmb_trace::sink_stats().delta_from(sink_before);
    HarnessMetrics {
        suite_ms: (clock.now_ns() - suite_started).max(0.0) / 1e6,
        probe_ms: ns_to_ms(budget.probe_ns.load(Ordering::Relaxed)),
        warmup_ms: ns_to_ms(counter("harness.warmup_ns")),
        calibrate_ms: ns_to_ms(counter("harness.calibrate_ns")),
        attempt_ms: ns_to_ms(budget.attempt_ns.load(Ordering::Relaxed)),
        retry_ms: ns_to_ms(budget.retry_ns.load(Ordering::Relaxed)),
        trace_events: sink.events,
        trace_bytes: sink.bytes,
        trace_writes: sink.writes,
        trace_dropped: sink.dropped,
    }
}

/// Emits the per-benchmark closing event (the caller's thread still has the
/// bench span entered, so attribution is implicit).
fn emit_outcome(record: &BenchRecord) {
    emit(|| EventKind::Outcome {
        status: record.status.label().to_string(),
        attempts: record.attempts,
        wall_ms: record.wall_ms,
    });
}

/// Renders a panic payload as a failure reason.
pub(crate) fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Archives a kernel-accounted attempt cost into the report's shape,
/// narrating it into the trace on the way. The snapshots are taken on the
/// bench thread with thread scope, so the CPU-time and fault counts are
/// this attempt's own; `contended` records that pool neighbours ran
/// concurrently, which still perturbs maxrss (process-wide) and preemption
/// counts, so contended deltas must not be compared as isolated-run costs.
fn archive_rusage(delta: &RusageDelta, contended: bool) -> ResourceUsage {
    emit(|| EventKind::Rusage {
        utime_us: delta.utime_us,
        stime_us: delta.stime_us,
        maxrss_kb: delta.maxrss_kb,
        minor_faults: delta.minor_faults,
        major_faults: delta.major_faults,
        vol_ctx_switches: delta.vol_ctx_switches,
        invol_ctx_switches: delta.invol_ctx_switches,
        contended,
    });
    ResourceUsage {
        utime_us: delta.utime_us,
        stime_us: delta.stime_us,
        maxrss_kb: delta.maxrss_kb,
        minor_faults: delta.minor_faults,
        major_faults: delta.major_faults,
        vol_ctx_switches: delta.vol_ctx_switches,
        invol_ctx_switches: delta.invol_ctx_switches,
        contended,
    }
}

/// Process-global counter availability: 0 = unprobed, 1 = seen working,
/// 2 = unavailable (reported; stop trying).
static COUNTERS_STATE: AtomicU8 = AtomicU8::new(0);
static COUNTERS_REPORT: Once = Once::new();

/// Opens a calibrated hardware-counter bracket on the calling bench
/// thread, or `None` where the host denies counters. The first failure
/// emits a single `counters_unavailable` trace event for the whole
/// process; after that every attempt runs exactly as an uncounted run
/// would, with no per-attempt open retries.
fn thread_counters() -> Option<Counters<PerfCounters>> {
    if COUNTERS_STATE.load(Ordering::Relaxed) == 2 {
        return None;
    }
    match open_perf() {
        Ok(counters) => {
            COUNTERS_STATE.store(1, Ordering::Relaxed);
            Some(counters)
        }
        Err(e) => {
            COUNTERS_STATE.store(2, Ordering::Relaxed);
            COUNTERS_REPORT.call_once(|| {
                emit(|| EventKind::CountersUnavailable {
                    reason: e.reason().to_string(),
                    paranoid: e.paranoid(),
                });
            });
            None
        }
    }
}

/// Archives a compensated hardware-counter delta into the report's shape,
/// narrating it into the trace on the way (the counter analog of
/// [`archive_rusage`]; the bracket ran on the bench thread, so the counts
/// are that attempt's own).
fn archive_counters(delta: CounterValues) -> CounterDelta {
    emit(|| EventKind::Counters {
        cycles: delta.cycles,
        instructions: delta.instructions,
        branch_misses: delta.branch_misses,
        cache_misses: delta.cache_misses,
        dtlb_misses: delta.dtlb_misses,
        enabled_ns: delta.enabled_ns,
        running_ns: delta.running_ns,
    });
    CounterDelta {
        cycles: delta.cycles,
        instructions: delta.instructions,
        branch_misses: delta.branch_misses,
        cache_misses: delta.cache_misses,
        dtlb_misses: delta.dtlb_misses,
        enabled_ns: delta.enabled_ns,
        running_ns: delta.running_ns,
    }
}

/// Derived counter metrics (IPC, misses per kilo-instruction) appended to
/// a record's metric rows, so they flow through `lmbench diff` under the
/// same noise-aware significance rules as the headline numbers.
fn counter_metrics(counters: Option<&CounterDelta>) -> Vec<MetricValue> {
    let Some(c) = counters else {
        return Vec::new();
    };
    let mut rows = Vec::new();
    let mut push = |label: &str, value: Option<f64>, unit: &str| {
        if let Some(value) = value {
            rows.push(MetricValue {
                label: label.into(),
                value,
                unit: unit.into(),
            });
        }
    };
    push("ipc", c.ipc(), "ipc");
    push("branch_miss_pki", c.branch_miss_pki(), "pki");
    push("cache_miss_pki", c.cache_miss_pki(), "pki");
    push("dtlb_miss_pki", c.dtlb_miss_pki(), "pki");
    rows
}

/// Emits the attempt's quality assessment as Metric events, so trace
/// consumers see the noise band next to the numbers it qualifies.
fn emit_quality_metrics(provenance: Option<&Provenance>) {
    let Some(p) = provenance else { return };
    let (cv, severity) = (
        p.cv,
        Quality::from_label(&p.quality)
            .unwrap_or(Quality::Suspect)
            .severity(),
    );
    emit(|| EventKind::Metric {
        label: "quality_cv".into(),
        value: cv,
        unit: "x".into(),
    });
    emit(|| EventKind::Metric {
        label: "quality_grade".into(),
        value: severity,
        unit: "severity".into(),
    });
}

/// Summarizes recorded events: calibration and samples of the *worst*
/// measurement (gravest quality grade, then highest CV, ties broken toward
/// the last), plus the total measurement count — the dispersion a reader
/// should worry about, not the prettiest.
///
/// Quality ranks before CV because an overhead-clamped measurement is a
/// set of identical zero floors: its CV is 0.0, and sorting by CV alone
/// would bury the suite's most broken measurement under ordinary noise.
pub(crate) fn provenance_from(events: &[MeasureEvent]) -> Option<Provenance> {
    let worst = events
        .iter()
        .enumerate()
        .max_by(|(ai, a), (bi, b)| {
            (a.quality().severity(), a.cv(), ai)
                .partial_cmp(&(b.quality().severity(), b.cv(), bi))
                .unwrap_or(std::cmp::Ordering::Equal)
        })
        .map(|(_, e)| e)?;
    let samples = worst.samples();
    Some(Provenance {
        repetitions: worst.per_op_ns.len() as u32,
        warmup_runs: worst.warmup_runs,
        calibrated_iterations: worst.iterations,
        clock_resolution_ns: worst.clock_resolution_ns,
        sample_min_ns: worst.min_ns(),
        sample_median_ns: worst.median_ns(),
        sample_p90_ns: samples.p90().unwrap_or(worst.max_ns()),
        sample_p99_ns: samples.p99().unwrap_or(worst.max_ns()),
        sample_max_ns: worst.max_ns(),
        mad_ns: samples.mad().unwrap_or(0.0),
        min_median_gap: worst.min_median_gap(),
        cv: worst.cv(),
        iqr_outliers: samples.outliers() as u32,
        quality: worst.quality().label().to_string(),
        measure_calls: events.len() as u32,
        clamped_samples: worst.clamped_samples,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RetryPolicy;
    use std::time::Instant;

    fn engine_for(names: &[&str], config: SuiteConfig) -> Engine {
        Engine::new(Registry::standard().filtered(names).unwrap(), config).unwrap()
    }

    fn fast_config() -> SuiteConfig {
        SuiteConfig::quick().with_workers(1)
    }

    #[test]
    fn invalid_config_is_rejected_at_construction() {
        let mut config = SuiteConfig::quick();
        config.copy_bytes = 1;
        assert!(matches!(
            Engine::new(Registry::standard(), config),
            Err(SuiteError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn clean_run_applies_patches_and_records_provenance() {
        let outcome = engine_for(&["sys_info", "lat_syscall"], fast_config()).execute();
        assert!(outcome.run.system.is_some(), "sys_info patch applied");
        assert!(outcome.run.syscall.is_some(), "lat_syscall patch applied");
        let rec = outcome.report.find("lat_syscall").unwrap();
        assert!(rec.status.is_ok());
        assert_eq!(rec.attempts, 1);
        let prov = rec.provenance.as_ref().expect("provenance recorded");
        assert!(prov.calibrated_iterations > 0);
        assert!(prov.sample_min_ns > 0.0);
        assert!(prov.sample_median_ns >= prov.sample_min_ns);
        assert!(prov.sample_p90_ns > 0.0);
        assert!(prov.sample_p99_ns >= prov.sample_p90_ns);
        assert!(prov.sample_max_ns >= prov.sample_p99_ns);
        assert!(prov.mad_ns >= 0.0);
        assert!(
            Quality::from_label(&prov.quality).is_some(),
            "unparseable quality {:?}",
            prov.quality
        );
        assert!(prov.measure_calls >= 1);
        let usage = rec.rusage.as_ref().expect("rusage recorded");
        assert!(usage.maxrss_kb > 0, "maxrss missing: {usage:?}");
        assert!(!rec.metrics.is_empty(), "metrics archived on the record");
        assert!(rec.metrics.iter().all(|m| !m.unit.is_empty()));
    }

    #[test]
    fn provenance_prefers_the_clamped_measurement_over_the_noisy_one() {
        let event = |per_op_ns: &[f64], iterations: u64, clamped: u32| MeasureEvent {
            iterations,
            warmup_runs: 1,
            clock_resolution_ns: 30.0,
            per_op_ns: per_op_ns.to_vec(),
            clamped_samples: clamped,
        };
        // A fully clamped measurement has CV 0.0 — sorting by CV alone
        // would bury it under ordinary noise. Quality severity must win.
        let noisy = event(&[100.0, 150.0, 90.0, 160.0], 100, 0);
        let clamped = event(&[0.0, 0.0, 0.0], 7, 3);
        let p = provenance_from(&[noisy.clone(), clamped]).expect("provenance");
        assert_eq!(p.quality, "suspect");
        assert_eq!(p.clamped_samples, 3);
        assert_eq!(p.calibrated_iterations, 7, "clamped event selected");
        // Without clamps anywhere, the highest-CV event is still the pick.
        let quiet = event(&[100.0, 101.0, 99.0, 100.5], 200, 0);
        let p = provenance_from(&[quiet, noisy]).expect("provenance");
        assert_eq!(p.calibrated_iterations, 100, "noisiest event selected");
        assert_eq!(p.clamped_samples, 0);
        assert!(provenance_from(&[]).is_none());
    }

    #[test]
    fn injected_panic_becomes_failed_not_a_crash() {
        let engine =
            engine_for(&["sys_info", "lat_syscall"], fast_config()).with_faults(FaultPlan {
                panic_in: Some("lat_syscall".into()),
                ..FaultPlan::default()
            });
        let outcome = engine.execute();
        let rec = outcome.report.find("lat_syscall").unwrap();
        match &rec.status {
            BenchStatus::Failed(reason) => assert!(reason.contains("forced panic"), "{reason}"),
            other => panic!("want Failed, got {other:?}"),
        }
        assert!(outcome.run.syscall.is_none(), "no patch from a failed run");
        // The rest of the suite survived.
        assert!(outcome.report.find("sys_info").unwrap().status.is_ok());
        assert!(outcome.run.system.is_some());
    }

    #[test]
    fn injected_hang_becomes_timed_out_within_budget() {
        let config = fast_config().with_timeout(Duration::from_millis(150));
        let engine = engine_for(&["lat_syscall"], config).with_faults(FaultPlan {
            hang_in: Some("lat_syscall".into()),
            ..FaultPlan::default()
        });
        let started = Instant::now();
        let outcome = engine.execute();
        assert!(
            started.elapsed() < Duration::from_secs(30),
            "engine blocked on the hung benchmark"
        );
        assert_eq!(
            outcome.report.find("lat_syscall").unwrap().status,
            BenchStatus::TimedOut { limit_ms: 150 }
        );
        assert!(outcome.run.syscall.is_none());
    }

    #[test]
    fn denied_substrate_becomes_skipped() {
        let engine = engine_for(&["lat_syscall"], fast_config()).with_faults(FaultPlan {
            deny_substrate_in: Some("lat_syscall".into()),
            ..FaultPlan::default()
        });
        let outcome = engine.execute();
        match &outcome.report.find("lat_syscall").unwrap().status {
            BenchStatus::Skipped(reason) => assert!(reason.contains("substrate"), "{reason}"),
            other => panic!("want Skipped, got {other:?}"),
        }
        assert!(outcome.run.syscall.is_none());
    }

    #[test]
    fn noisy_benchmark_is_retried_up_to_the_policy_limit() {
        // cv is always > -1, so every attempt looks noisy: the engine must
        // stop at max_attempts, keeping the final attempt's result.
        let config = fast_config().with_retry(RetryPolicy {
            max_attempts: 3,
            cv_threshold: -1.0,
        });
        let outcome = engine_for(&["lat_syscall"], config).execute();
        let rec = outcome.report.find("lat_syscall").unwrap();
        assert_eq!(rec.attempts, 3);
        assert!(rec.status.is_ok());
        assert!(outcome.run.syscall.is_some());
    }

    #[test]
    fn derived_entry_composes_from_measured_snapshot() {
        let outcome = engine_for(&["bw_pipe_tcp", "remote_bw_model"], fast_config()).execute();
        assert!(outcome.run.ipc_bw.is_some());
        let rec = outcome.report.find("remote_bw_model").unwrap();
        assert!(rec.status.is_ok(), "status {:?}", rec.status);
        assert!(!outcome.run.remote_bw.is_empty(), "Table 4 rows composed");
    }

    #[test]
    fn derived_entry_skips_when_its_input_failed() {
        // Sabotage the measured input; the model must degrade to Skipped.
        let engine =
            engine_for(&["bw_pipe_tcp", "remote_bw_model"], fast_config()).with_faults(FaultPlan {
                panic_in: Some("bw_pipe_tcp".into()),
                ..FaultPlan::default()
            });
        let outcome = engine.execute();
        assert!(matches!(
            outcome.report.find("remote_bw_model").unwrap().status,
            BenchStatus::Skipped(_)
        ));
        assert!(outcome.run.remote_bw.is_empty());
    }

    #[test]
    fn execute_attaches_a_harness_budget() {
        let outcome = engine_for(&["lat_syscall"], fast_config()).execute();
        let h = outcome.report.harness.expect("self-budget attached");
        assert!(h.suite_ms > 0.0, "{h:?}");
        assert!(h.probe_ms > 0.0, "substrate probes ran: {h:?}");
        assert!(h.attempt_ms > 0.0, "{h:?}");
        assert!(h.calibrate_ms > 0.0, "the harness calibrated: {h:?}");
        // A single clean attempt bills nothing to the retry phase.
        assert_eq!(h.retry_ms, 0.0, "{h:?}");
        // Phases nest inside the suite; on this one-worker config each
        // must fit inside the total wall time.
        assert!(h.attempt_ms <= h.suite_ms, "{h:?}");
    }

    #[test]
    fn retries_bill_the_retry_phase() {
        let config = fast_config().with_retry(RetryPolicy {
            max_attempts: 3,
            cv_threshold: -1.0,
        });
        let outcome = engine_for(&["lat_syscall"], config).execute();
        let h = outcome.report.harness.expect("self-budget attached");
        assert!(h.retry_ms > 0.0, "two noise re-runs happened: {h:?}");
    }

    #[test]
    fn traced_run_budgets_its_trace_emission() {
        let _guard = trace_test_lock();
        let engine = engine_for(&["lat_syscall"], fast_config());
        let (outcome, events) = traced_execute(&engine);
        let h = outcome.report.harness.expect("self-budget attached");
        assert!(h.trace_events > 0, "{h:?}");
        // The budget is sealed before the run's own closing events
        // (`suite_end`, the suite `span_end`), so it may trail the sink's
        // final count by exactly those two.
        assert!(
            h.trace_events + 2 >= events.len() as u64 && h.trace_events <= events.len() as u64,
            "sink saw {} events, budget claims {}",
            events.len(),
            h.trace_events
        );
    }

    #[test]
    fn report_covers_every_registry_entry_in_order() {
        let names = ["sys_info", "lat_syscall", "lat_disk"];
        let outcome = engine_for(&names, fast_config()).execute();
        let reported: Vec<&str> = outcome
            .report
            .records
            .iter()
            .map(|r| r.name.as_str())
            .collect();
        assert_eq!(reported, names);
    }

    /// Serializes the tests that install a process-global trace sink.
    fn trace_test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn traced_execute(engine: &Engine) -> (EngineOutcome, Vec<lmb_trace::TraceEvent>) {
        let sink = lmb_trace::MemorySink::shared();
        let handle = lmb_trace::install(Box::new(sink.clone()));
        let outcome = engine.execute();
        lmb_trace::uninstall(handle);
        (outcome, sink.events())
    }

    /// Events attributed to the named benchmark's span in this outcome.
    fn bench_events<'e>(
        outcome: &EngineOutcome,
        events: &'e [lmb_trace::TraceEvent],
        bench: &str,
    ) -> Vec<&'e lmb_trace::TraceEvent> {
        let span = outcome.report.find(bench).unwrap().span;
        assert!(span.is_some(), "{bench} record carries no span id");
        events.iter().filter(|e| e.span == span).collect()
    }

    #[test]
    fn traced_run_narrates_lifecycle_and_links_spans() {
        let _guard = trace_test_lock();
        let engine = engine_for(&["sys_info", "lat_syscall"], fast_config());
        let (outcome, events) = traced_execute(&engine);
        assert!(
            events.iter().any(|e| matches!(
                e.kind,
                EventKind::SuiteStart {
                    benchmarks: 2,
                    workers: 1
                }
            )),
            "suite_start missing"
        );
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::SuiteEnd { ok: 2, .. })));
        for phase in ["pool", "exclusive", "derived"] {
            assert!(
                events
                    .iter()
                    .any(|e| matches!(&e.kind, EventKind::PhaseStart { phase: p } if p == phase)),
                "phase_start {phase} missing"
            );
        }
        let mine = bench_events(&outcome, &events, "lat_syscall");
        let has = |pred: &dyn Fn(&EventKind) -> bool| mine.iter().any(|e| pred(&e.kind));
        assert!(
            has(&|k| matches!(k, EventKind::SpanStart { name, .. } if name == "bench:lat_syscall")),
            "span_start missing: {mine:?}"
        );
        assert!(has(&|k| matches!(k, EventKind::SpanEnd { .. })));
        assert!(has(&|k| matches!(k, EventKind::Probe { ok: true, .. })));
        assert!(has(&|k| matches!(k, EventKind::Attempt { attempt: 1 })));
        assert!(
            has(&|k| matches!(k, EventKind::Warmup { .. })),
            "harness warmup not attributed to the bench span (ContextGuard broken?)"
        );
        assert!(has(&|k| matches!(k, EventKind::Calibrated { .. })));
        assert!(has(&|k| matches!(k, EventKind::Metric { .. })));
        assert!(
            has(&|k| matches!(k, EventKind::Rusage { .. })),
            "attempt cost not narrated"
        );
        for label in ["quality_cv", "quality_grade"] {
            assert!(
                has(&|k| matches!(k, EventKind::Metric { label: l, .. } if l == label)),
                "{label} metric missing"
            );
        }
        assert!(
            has(&|k| matches!(k, EventKind::Syscalls { counts } if counts.contains_key("write"))),
            "lat_syscall writes /dev/null; write count missing"
        );
        assert!(has(
            &|k| matches!(k, EventKind::Outcome { status, .. } if status == "ok")
        ));
    }

    #[test]
    fn retry_on_noise_emits_retry_events_with_the_cv() {
        let _guard = trace_test_lock();
        let config = fast_config().with_retry(RetryPolicy {
            max_attempts: 3,
            cv_threshold: -1.0,
        });
        let engine = engine_for(&["lat_syscall"], config);
        let (outcome, events) = traced_execute(&engine);
        let mine = bench_events(&outcome, &events, "lat_syscall");
        let retries: Vec<_> = mine
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::Retry {
                    attempt,
                    cv,
                    threshold,
                } => Some((*attempt, *cv, *threshold)),
                _ => None,
            })
            .collect();
        // Attempts 1 and 2 look noisy and retry; attempt 3 hits the cap.
        assert_eq!(retries.len(), 2, "{retries:?}");
        assert_eq!(retries[0].0, 1);
        assert_eq!(retries[1].0, 2);
        for (_, cv, threshold) in retries {
            assert!(cv > threshold, "retry fired with cv {cv} <= {threshold}");
            assert_eq!(threshold, -1.0);
        }
        let attempts = mine
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Attempt { .. }))
            .count();
        assert_eq!(attempts, 3);
    }

    #[test]
    fn faulted_runs_emit_their_terminal_events() {
        let _guard = trace_test_lock();
        let config = fast_config().with_timeout(Duration::from_millis(150));
        let engine =
            engine_for(&["lat_syscall", "lat_sig", "lat_fs"], config).with_faults(FaultPlan {
                panic_in: Some("lat_syscall".into()),
                hang_in: Some("lat_sig".into()),
                deny_substrate_in: Some("lat_fs".into()),
            });
        let (outcome, events) = traced_execute(&engine);
        assert!(
            bench_events(&outcome, &events, "lat_syscall").iter().any(
                |e| matches!(&e.kind, EventKind::Panic { message } if message.contains("forced panic"))
            ),
            "panic event missing"
        );
        assert!(bench_events(&outcome, &events, "lat_sig")
            .iter()
            .any(|e| matches!(e.kind, EventKind::Timeout { limit_ms: 150 })));
        let fs = bench_events(&outcome, &events, "lat_fs");
        assert!(fs
            .iter()
            .any(|e| matches!(&e.kind, EventKind::Probe { ok: false, .. })));
        assert!(fs.iter().any(|e| matches!(&e.kind, EventKind::Skip { .. })));
    }

    #[test]
    fn untraced_run_records_no_span_ids() {
        let _guard = trace_test_lock();
        let outcome = engine_for(&["sys_info"], fast_config()).execute();
        assert_eq!(outcome.report.find("sys_info").unwrap().span, None);
    }

    #[test]
    fn substrate_probes_pass_on_a_healthy_machine() {
        for s in [Substrate::DevNull, Substrate::Loopback, Substrate::TempDir] {
            assert_eq!(s.probe(), Ok(()), "{}", s.describe());
        }
    }
}
