//! Scenario fuzzing for whole-engine virtual time.
//!
//! The sim seam ([`EngineClock::Sim`], scripted registries) makes a *full*
//! suite run — scheduling, probes, watchdog, retries, phase budgets,
//! report, diff — a deterministic function of a seed. This module turns
//! that seam into a property fuzzer: a [`Scenario`] is a seeded random
//! point in the space of cost-model shapes (flat costs, cache knees,
//! drift, noise bursts, coarse clock ticks), [`run_scenario`] drives it
//! through the real [`Engine`], and the `check_*` properties assert what
//! must hold for *every* point:
//!
//! 1. clean (constant-cost, jitter-free) runs are never graded `suspect`;
//! 2. the calibrator converges below its ramp cap;
//! 3. `diff` never alarms on scripted noise, and always alarms on a
//!    scripted 10x regression;
//! 4. the same seed reproduces the report byte for byte.
//!
//! A seed that violates a property is a counterexample: it gets pinned as
//! a named regression scenario in `tests/sim_fuzz.rs` alongside the fix.

use crate::config::{RetryPolicy, SuiteConfig};
use crate::engine::{Engine, EngineClock, EngineOutcome};
use crate::output::{BenchOutput, Unit};
use crate::registry::{BenchRunner, Benchmark, Category, Registry};
use crate::scale::{omission_gap, LoadGen, LoadMode, LoadRunner, SimServerGen};
use lmb_results::{ReportDiff, RunReport, SimProvenance};
use lmb_timing::{ClockInfo, CostModel, Harness, SimClock, TimeUnit};
use std::sync::Arc;

/// The scripted benchmark names a scenario draws from. Static because
/// [`Benchmark`] names are `&'static str` (registry names are normally
/// compiled in); the pool bounds a scenario at eight benchmarks.
const NAMES: [&str; 8] = [
    "sim_alpha",
    "sim_beta",
    "sim_gamma",
    "sim_delta",
    "sim_epsilon",
    "sim_zeta",
    "sim_eta",
    "sim_theta",
];

/// The clock-tick granularities a scenario may draw: a modern 1 ns
/// counter, a 100 ns TSC-ish clock, and the coarse 10 us tick that forces
/// the calibrator to earn its keep (the paper's §3.4 starting point was a
/// 10 ms `gettimeofday`).
const RESOLUTIONS: [f64; 3] = [1.0, 100.0, 10_000.0];

/// splitmix64, duplicated from `lmb_timing::sim` (private there) so the
/// scenario stream is stable and dependency-free. Scenario derivation and
/// clock jitter draw from different seeds, so sharing the algorithm does
/// not correlate them.
struct SplitMix {
    state: u64,
}

impl SplitMix {
    fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    fn pick(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

/// One scripted benchmark inside a scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScriptedBench {
    /// Registry name (drawn from the static pool).
    pub name: &'static str,
    /// Per-call cost script.
    pub model: CostModel,
    /// Scheduled through the engine's exclusive phase when set.
    pub exclusive: bool,
    /// `Some(ops)` measures one un-calibrated block of `ops` operations
    /// (the clamp-inducing short-interval shape); `None` runs the full
    /// calibrated `measure` path.
    pub block_ops: Option<u64>,
}

/// A seeded point in the scenario space: a virtual clock profile plus a
/// handful of scripted benchmarks, all derived deterministically from
/// `seed`.
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Seed for the clock, the body noise streams, and (via
    /// [`Scenario::from_seed`]) the scenario's own shape.
    pub seed: u64,
    /// Virtual clock tick granularity, ns.
    pub resolution_ns: f64,
    /// Virtual cost per clock read, ns.
    pub read_overhead_ns: f64,
    /// Uniform per-read jitter band width, ns.
    pub read_jitter_ns: f64,
    /// The scripted registry, in registry order.
    pub benches: Vec<ScriptedBench>,
}

impl Scenario {
    /// Derives a random scenario from `seed`: clock resolution, read
    /// jitter, 4–7 benchmarks with mixed cost-model shapes. Costs are
    /// scaled to the drawn resolution so calibration converges in a
    /// bounded number of virtual (and real) operations.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        let mut rng = SplitMix::new(seed ^ 0x5CE2_A210_F022_D00D);
        let resolution_ns = RESOLUTIONS[rng.pick(RESOLUTIONS.len())];
        let read_jitter_ns = if rng.uniform() < 0.5 { 0.0 } else { 5.0 };
        let floor = resolution_ns.max(50.0);
        let count = 4 + rng.pick(4);
        let benches = (0..count)
            .map(|i| {
                let base_ns = floor * (2.0 + 30.0 * rng.uniform());
                let model = match rng.pick(4) {
                    0 => CostModel::Constant { ns: base_ns },
                    1 => CostModel::Step {
                        knee: 64 + rng.pick(1000) as u64,
                        before_ns: base_ns,
                        after_ns: base_ns * (1.2 + rng.uniform()),
                    },
                    2 => CostModel::Noisy {
                        base_ns,
                        spread_ns: base_ns * 0.5 * rng.uniform(),
                    },
                    _ => CostModel::Drifting {
                        start_ns: base_ns,
                        per_call_ns: base_ns * 1e-5 * rng.uniform(),
                    },
                };
                ScriptedBench {
                    name: NAMES[i],
                    model,
                    exclusive: rng.uniform() < 0.25,
                    block_ops: None,
                }
            })
            .collect();
        Scenario {
            seed,
            resolution_ns,
            read_overhead_ns: 15.0,
            read_jitter_ns,
            benches,
        }
    }

    /// A scenario with only flat, jitter-free cost models: the "quiet
    /// machine" every grader property is anchored to. Costs still vary
    /// with the seed.
    #[must_use]
    pub fn clean(seed: u64) -> Self {
        let mut s = Scenario::from_seed(seed);
        s.read_jitter_ns = 0.0;
        let mut rng = SplitMix::new(seed ^ 0xC1EA_4000_0000_0001);
        let floor = s.resolution_ns.max(50.0);
        for b in &mut s.benches {
            b.model = CostModel::Constant {
                ns: floor * (2.0 + 30.0 * rng.uniform()),
            };
        }
        s
    }

    /// The same scenario shape driven by a different seed: identical
    /// models and clock profile, fresh noise and jitter streams. This is
    /// what "the same machine on a different day" looks like in the
    /// simulation, and what the diff must *not* alarm on.
    #[must_use]
    pub fn reseeded(&self, seed: u64) -> Self {
        Scenario {
            seed,
            ..self.clone()
        }
    }

    /// The same scenario with every cost scaled by `factor`: a scripted,
    /// unambiguous regression (for `factor` well above the diff's noise
    /// band) that the diff *must* alarm on.
    #[must_use]
    pub fn amplified(&self, factor: f64) -> Self {
        let mut s = self.clone();
        for b in &mut s.benches {
            b.model = match b.model {
                CostModel::Constant { ns } => CostModel::Constant { ns: ns * factor },
                CostModel::Step {
                    knee,
                    before_ns,
                    after_ns,
                } => CostModel::Step {
                    knee,
                    before_ns: before_ns * factor,
                    after_ns: after_ns * factor,
                },
                CostModel::Noisy { base_ns, spread_ns } => CostModel::Noisy {
                    base_ns: base_ns * factor,
                    spread_ns: spread_ns * factor,
                },
                CostModel::Drifting {
                    start_ns,
                    per_call_ns,
                } => CostModel::Drifting {
                    start_ns: start_ns * factor,
                    per_call_ns: per_call_ns * factor,
                },
            };
        }
        s
    }

    /// The seeded virtual clock this scenario runs on.
    #[must_use]
    pub fn clock(&self) -> SimClock {
        let mut sim = SimClock::new(self.seed)
            .with_resolution_ns(self.resolution_ns)
            .with_read_overhead_ns(self.read_overhead_ns);
        if self.read_jitter_ns > 0.0 {
            sim = sim.with_read_jitter_ns(self.read_jitter_ns);
        }
        sim
    }

    /// The scripted registry: every benchmark body advances `sim` by its
    /// cost model instead of doing real work, and measures itself against
    /// a sim-clocked harness wearing the engine's provenance recorder.
    #[must_use]
    pub fn registry(&self, sim: &SimClock) -> Registry {
        let benches = self
            .benches
            .iter()
            .map(|b| scripted_benchmark(b, sim))
            .collect();
        Registry::custom(benches)
    }
}

/// Builds one scripted registry entry around a shared [`SimClock`].
fn scripted_benchmark(bench: &ScriptedBench, sim: &SimClock) -> Benchmark {
    let sim = sim.clone();
    let model = bench.model;
    let block_ops = bench.block_ops;
    let runner: BenchRunner = Arc::new(move |ctx| {
        // The context harness is real-clocked (RunCtx is not generic); a
        // scripted body instead builds its own harness over the shared
        // sim clock, pinned to the scenario's true clock properties so
        // calibration and overhead compensation see exactly the clock
        // the scenario scripted — and hands it the engine's recorder so
        // provenance flows into the record as usual.
        let mut harness = Harness::with_source_and_clock(
            ctx.config.options,
            sim.clone(),
            ClockInfo {
                resolution_ns: sim.resolution_ns(),
                overhead_ns: sim.read_overhead_ns(),
            },
        );
        if let Some(recorder) = ctx.harness.recorder() {
            harness = harness.with_recorder(recorder);
        }
        let body = sim.scripted_body(model);
        let m = match block_ops {
            Some(ops) => harness.measure_block(ops, body),
            None => harness.measure(body),
        };
        BenchOutput::new().metric("op", m.per_op(TimeUnit::Micros), Unit::Micros)
    });
    Benchmark::scripted(
        bench.name,
        "virtual cost model",
        Category::Latency,
        bench.exclusive,
        runner,
    )
}

/// The suite configuration scenarios run under: quick sizing, the
/// noise-retry policy armed (so the retry path is inside the fuzzed
/// surface), and the scenario's seed recorded for provenance.
#[must_use]
pub fn scenario_config(scenario: &Scenario) -> SuiteConfig {
    SuiteConfig::quick()
        .with_retry(RetryPolicy::on_noise())
        .with_sim_seed(scenario.seed)
}

/// Drives one scenario through the full engine under virtual time.
///
/// # Panics
///
/// Panics only if the quick preset stops validating — a build error, not
/// a scenario outcome.
#[must_use]
pub fn run_scenario(scenario: &Scenario) -> EngineOutcome {
    let sim = scenario.clock();
    let engine = Engine::new(scenario.registry(&sim), scenario_config(scenario))
        .expect("quick preset validates")
        .with_clock(EngineClock::Sim(sim));
    engine.execute()
}

/// Property 1 + 2: a clean scenario's run has every record `Ok`, no
/// measurement graded `suspect`, and every calibration converged below
/// the ramp cap. `Err` carries the counterexample detail.
pub fn check_clean_run(scenario: &Scenario, outcome: &EngineOutcome) -> Result<(), String> {
    for record in &outcome.report.records {
        if record.status.label() != "ok" {
            return Err(format!(
                "seed {}: {} ended {} instead of ok",
                scenario.seed,
                record.name,
                record.status.label()
            ));
        }
        let Some(p) = record.provenance.as_ref() else {
            return Err(format!(
                "seed {}: {} has no provenance",
                scenario.seed, record.name
            ));
        };
        if p.quality == "suspect" {
            return Err(format!(
                "seed {}: clean {} graded suspect (cv {:.4}, clamped {})",
                scenario.seed, record.name, p.cv, p.clamped_samples
            ));
        }
        if p.calibrated_iterations >= lmb_timing::MAX_ITERATIONS {
            return Err(format!(
                "seed {}: {} calibration hit the ramp cap",
                scenario.seed, record.name
            ));
        }
    }
    Ok(())
}

/// Property 3a: two runs of the same shape under different seeds — pure
/// scripted noise — must not produce a benchmark-row regression. (The
/// harness self-budget rows are judged by their own wider band and are
/// not a benchmark grading property.)
pub fn check_noise_no_alarm(scenario: &Scenario) -> Result<(), String> {
    let base = run_scenario(scenario).report;
    let noisy = run_scenario(&scenario.reseeded(scenario.seed.wrapping_add(0x9E37))).report;
    let diff = ReportDiff::between(&base, &noisy);
    if let Some(row) = diff.regressions().find(|r| r.bench != "(harness)") {
        return Err(format!(
            "seed {}: scripted noise alarmed on {}/{} ({:+.1}% vs band {:.1}%)",
            scenario.seed,
            row.bench,
            row.metric,
            row.delta_frac * 100.0,
            row.band_frac * 100.0
        ));
    }
    Ok(())
}

/// Property 3b: a scripted 10x slowdown of every benchmark must alarm on
/// every benchmark row.
pub fn check_regression_alarms(scenario: &Scenario) -> Result<(), String> {
    let base = run_scenario(scenario).report;
    let slower = run_scenario(&scenario.amplified(10.0)).report;
    let diff = ReportDiff::between(&base, &slower);
    for bench in &scenario.benches {
        let alarmed = diff
            .regressions()
            .any(|r| r.bench == bench.name && r.metric == "op");
        if !alarmed {
            return Err(format!(
                "seed {}: 10x regression in {} raised no alarm",
                scenario.seed, bench.name
            ));
        }
    }
    Ok(())
}

/// Property 4: the same seed reproduces the run byte for byte.
pub fn check_determinism(scenario: &Scenario) -> Result<(), String> {
    let a = run_scenario(scenario).report.to_json();
    let b = run_scenario(scenario).report.to_json();
    if a != b {
        let at = a
            .lines()
            .zip(b.lines())
            .position(|(x, y)| x != y)
            .unwrap_or(0);
        return Err(format!(
            "seed {}: same-seed reports diverge (first differing line {at})",
            scenario.seed
        ));
    }
    Ok(())
}

/// Floor on the open-over-closed p99 ratio a load scenario must show
/// past the knee: closed-loop pacing hides at least this much queueing.
pub const OMISSION_GAP_FLOOR: f64 = 5.0;

/// One virtual load run for `seed`: a scripted server whose constant
/// per-op service time is drawn from the seed (40–120 µs — far above the
/// clock-read overhead, small enough that a 256-arrival sweep finishes in
/// virtual milliseconds), swept open- and closed-loop up the shared
/// fraction ladder on one [`SimClock`]. Past the knee the inter-arrival
/// gap drops below the service time, so the open loop must observe the
/// queueing that closed-loop pacing absorbs. Returns the full report
/// (record plus sweeps) so callers can check both the gap and byte
/// determinism.
/// The scripted rig behind [`run_load_scenario`]: the shared virtual
/// clock plus the seeded constant service-cost model, exposed so the CLI
/// can drive the same rig under user-chosen modes and arrival processes.
#[must_use]
pub fn load_sim_rig(seed: u64) -> (SimClock, CostModel) {
    let mut rng = SplitMix::new(seed ^ 0x10AD_0000_0BAD_C0DE);
    let service_ns = 40_000.0 * (1.0 + 2.0 * rng.uniform());
    (SimClock::new(seed), CostModel::Constant { ns: service_ns })
}

#[must_use]
pub fn run_load_scenario(seed: u64) -> RunReport {
    let (sim, model) = load_sim_rig(seed);
    let provenance = SimProvenance {
        seed,
        resolution_ns: sim.resolution_ns(),
        read_overhead_ns: sim.read_overhead_ns(),
        read_jitter_ns: sim.read_jitter_ns(),
    };
    let runner = LoadRunner::new(SuiteConfig::quick().with_sim_seed(seed))
        .expect("quick preset validates")
        .with_clock(EngineClock::Sim(sim.clone()))
        .with_ops(256);
    let make = move || -> Result<Box<dyn LoadGen>, String> {
        Ok(Box::new(SimServerGen::new(&sim, model)))
    };
    let (sweeps, record) = runner.run_target(
        "sim_server",
        "virtual service latency under offered load",
        &make,
        &[LoadMode::Open, LoadMode::Closed],
    );
    RunReport {
        records: vec![record],
        rate_sweeps: sweeps,
        sim: Some(provenance),
        ..RunReport::default()
    }
}

/// Property 5: when the offered rate passes the service rate, the
/// open-loop p99 must exceed the closed-loop p99 by at least
/// [`OMISSION_GAP_FLOOR`] at the same offered rate — the coordinated
/// omission the closed loop is scripted to hide.
pub fn check_omission_gap(seed: u64) -> Result<(), String> {
    let report = run_load_scenario(seed);
    let Some((fraction, gap)) = omission_gap(&report.rate_sweeps) else {
        return Err(format!(
            "seed {seed}: load sweeps produced no comparable open/closed point"
        ));
    };
    if gap < OMISSION_GAP_FLOOR {
        return Err(format!(
            "seed {seed}: omission gap only {gap:.1}x at f{fraction:.2} \
             (expected >= {OMISSION_GAP_FLOOR}x past the knee)"
        ));
    }
    Ok(())
}

/// Property 6: the same seed reproduces the load report byte for byte —
/// arrivals, queueing, knee and all.
pub fn check_sweep_determinism(seed: u64) -> Result<(), String> {
    let a = run_load_scenario(seed).to_json();
    let b = run_load_scenario(seed).to_json();
    if a != b {
        let at = a
            .lines()
            .zip(b.lines())
            .position(|(x, y)| x != y)
            .unwrap_or(0);
        return Err(format!(
            "seed {seed}: same-seed load reports diverge (first differing line {at})"
        ));
    }
    Ok(())
}

/// Runs every property over `count` seeds starting at `first_seed` and
/// returns the counterexamples (empty means the space held). This is the
/// entry the `sim-fuzz` CI job calls through `tests/sim_fuzz.rs`.
#[must_use]
pub fn fuzz(first_seed: u64, count: u64) -> Vec<String> {
    let mut counterexamples = Vec::new();
    for seed in first_seed..first_seed.saturating_add(count) {
        let clean = Scenario::clean(seed);
        if let Err(e) = check_clean_run(&clean, &run_scenario(&clean)) {
            counterexamples.push(e);
        }
        let scenario = Scenario::from_seed(seed);
        for check in [
            check_determinism,
            check_noise_no_alarm,
            check_regression_alarms,
        ] {
            if let Err(e) = check(&scenario) {
                counterexamples.push(e);
            }
        }
        for check in [check_omission_gap, check_sweep_determinism] {
            if let Err(e) = check(seed) {
                counterexamples.push(e);
            }
        }
    }
    counterexamples
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmb_results::BenchStatus;

    #[test]
    fn scenario_derivation_is_deterministic_and_seed_sensitive() {
        assert_eq!(Scenario::from_seed(11), Scenario::from_seed(11));
        assert_ne!(Scenario::from_seed(11), Scenario::from_seed(12));
        let s = Scenario::from_seed(11);
        assert!((4..=7).contains(&s.benches.len()));
        assert!(RESOLUTIONS.contains(&s.resolution_ns));
    }

    #[test]
    fn reseeding_keeps_shape_and_amplifying_scales_costs() {
        let s = Scenario::from_seed(3);
        let r = s.reseeded(99);
        assert_eq!(r.benches, s.benches);
        assert_eq!(r.resolution_ns, s.resolution_ns);
        assert_eq!(r.seed, 99);
        let a = s.amplified(10.0);
        for (orig, amp) in s.benches.iter().zip(&a.benches) {
            let ns = |m: &CostModel| match *m {
                CostModel::Constant { ns } => ns,
                CostModel::Step { before_ns, .. } => before_ns,
                CostModel::Noisy { base_ns, .. } => base_ns,
                CostModel::Drifting { start_ns, .. } => start_ns,
            };
            assert!((ns(&amp.model) - 10.0 * ns(&orig.model)).abs() < 1e-9);
        }
    }

    #[test]
    fn a_scenario_runs_the_full_engine_virtually() {
        let scenario = Scenario::from_seed(1);
        let outcome = run_scenario(&scenario);
        assert_eq!(outcome.report.records.len(), scenario.benches.len());
        for r in &outcome.report.records {
            assert_eq!(r.status, BenchStatus::Ok, "{}", r.name);
            assert!(r.rusage.is_none(), "virtual runs carry no rusage");
            assert!(r.counters.is_none(), "virtual runs carry no counters");
        }
        let sim = outcome.report.sim.expect("sim provenance present");
        assert_eq!(sim.seed, 1);
        assert_eq!(sim.resolution_ns, scenario.resolution_ns);
    }

    #[test]
    fn load_scenario_pins_the_omission_gap() {
        // The acceptance pin: service time above the inter-arrival gap
        // past the knee must open a >= 5x open-over-closed p99 gap.
        let report = run_load_scenario(7);
        let (fraction, gap) = omission_gap(&report.rate_sweeps).expect("comparable point");
        assert!(
            gap >= OMISSION_GAP_FLOOR,
            "open p99 only {gap:.1}x closed p99 at f{fraction:.2}"
        );
        assert!(fraction > 1.0, "the gap should open past the knee");
        let record = &report.records[0];
        assert_eq!(record.name, "load_sim_server");
        assert_eq!(record.status.label(), "ok");
        let metric = record
            .metrics
            .iter()
            .find(|m| m.label.starts_with("omission gap"))
            .expect("gap metric");
        assert_eq!(metric.unit, "x");
        assert!((metric.value - gap).abs() < 1e-9);
        check_omission_gap(7).expect("property 5 holds for seed 7");
    }

    #[test]
    fn load_scenario_reproduces_byte_for_byte() {
        check_sweep_determinism(7).expect("property 6 holds for seed 7");
        assert_ne!(
            run_load_scenario(7).to_json(),
            run_load_scenario(8).to_json(),
            "different seeds draw different service costs"
        );
    }

    #[test]
    fn clamped_block_measurement_is_graded_suspect_not_clean() {
        // The grader-side half of property 1: an interval shorter than
        // the clock-read overhead measures nothing, and the quality
        // pipeline must say so rather than report a confident zero.
        let mut scenario = Scenario::clean(5);
        scenario.benches.truncate(1);
        scenario.benches[0].model = CostModel::Constant { ns: 1.0 };
        scenario.benches[0].block_ops = Some(1);
        let outcome = run_scenario(&scenario);
        let p = outcome.report.records[0]
            .provenance
            .as_ref()
            .expect("provenance");
        assert!(p.clamped_samples > 0, "1ns op under a 15ns clock clamps");
        assert_eq!(p.quality, "suspect");
    }
}
