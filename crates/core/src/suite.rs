//! Running the full suite and filling a [`SuiteRun`].
//!
//! [`run_suite`] delegates to the execution engine ([`crate::engine`]):
//! every registered benchmark runs through the same fault-isolated,
//! timeout-guarded path, and the remote tables (4 and 14) are composed by
//! the registry's `derived` model entries instead of inline glue here.
//! The `measure_*` functions below remain the suite's measurement
//! vocabulary, called by the registry runners and usable standalone.

use crate::config::SuiteConfig;
use crate::engine::{Engine, EngineOutcome};
use crate::error::SuiteError;
use crate::registry::Registry;
use lmb_results::*;
use lmb_timing::{Harness, SummaryPolicy};

/// Runs every benchmark in the suite at the configured scale and returns
/// the host's (possibly partial) result set. Individual benchmark
/// failures, timeouts and skips cost their own rows only; use
/// [`run_suite_with_report`] to see per-benchmark outcomes.
pub fn run_suite(config: &SuiteConfig) -> Result<SuiteRun, SuiteError> {
    run_suite_with_report(config).map(|outcome| outcome.run)
}

/// Like [`run_suite`], also returning the per-benchmark
/// [`lmb_results::RunReport`] with statuses and measurement provenance.
pub fn run_suite_with_report(config: &SuiteConfig) -> Result<EngineOutcome, SuiteError> {
    Ok(Engine::new(Registry::standard(), *config)?.execute())
}

/// Table 2 row for this host.
pub fn measure_mem_bw(h: &Harness, config: &SuiteConfig, name: &str) -> MemBwRow {
    let r = lmb_mem::bw::measure_all(h, config.copy_bytes);
    MemBwRow {
        system: name.into(),
        bcopy_unrolled: r.bcopy_unrolled.mb_per_s,
        bcopy_libc: r.bcopy_libc.mb_per_s,
        read: r.read.mb_per_s,
        write: r.write.mb_per_s,
    }
}

/// Table 3 row.
pub fn measure_ipc_bw(h: &Harness, config: &SuiteConfig, name: &str) -> IpcBwRow {
    let reps = config.options.repetitions.min(3);
    let pipe = lmb_ipc::pipe_bw::measure_pipe_bw(
        config.stream_total,
        lmb_ipc::PIPE_CHUNK,
        reps,
        SummaryPolicy::Last,
    );
    let tcp = lmb_ipc::tcp_bw::measure_tcp_bw(
        config.stream_total,
        lmb_ipc::TCP_CHUNK,
        lmb_ipc::TCP_SOCKBUF,
        reps,
        SummaryPolicy::Last,
    );
    IpcBwRow {
        system: name.into(),
        bcopy_libc: lmb_mem::bw::measure_bcopy_libc(h, config.copy_bytes).mb_per_s,
        pipe: pipe.mb_per_s,
        tcp: Some(tcp.mb_per_s),
    }
}

/// Table 5 row.
pub fn measure_file_bw(h: &Harness, config: &SuiteConfig, name: &str) -> FileBwRow {
    let scratch = lmb_fs::ScratchFile::create("suite", config.file_bytes).expect("scratch file");
    FileBwRow {
        system: name.into(),
        bcopy_libc: lmb_mem::bw::measure_bcopy_libc(h, config.copy_bytes).mb_per_s,
        file_read: lmb_fs::measure_file_reread(h, scratch.path()).mb_per_s,
        file_mmap: lmb_fs::measure_mmap_reread(h, scratch.path()).mb_per_s,
        mem_read: lmb_mem::bw::measure_read(h, config.copy_bytes).mb_per_s,
    }
}

/// Table 6 row, via the latency sweep and hierarchy analyzer.
pub fn measure_cache_lat(h: &Harness, config: &SuiteConfig, name: &str) -> CacheLatRow {
    let hier =
        lmb_mem::hierarchy::measure_hierarchy(h, config.sweep_max, 64).expect("hierarchy analysis");
    let l1 = hier.l1();
    let l2 = hier.l2();
    CacheLatRow {
        system: name.into(),
        clock_ns: 0.0, // Modern CPUs scale frequency; a fixed clock is fiction.
        l1_ns: l1.map(|l| l.latency_ns),
        l1_size: l1.and_then(|l| l.capacity).map(|c| c as u64),
        l2_ns: l2.map(|l| l.latency_ns),
        l2_size: l2.and_then(|l| l.capacity).map(|c| c as u64),
        memory_ns: hier.memory_latency_ns().unwrap_or(0.0),
    }
}

/// Table 7 row.
pub fn measure_syscall(h: &Harness, name: &str) -> SyscallRow {
    SyscallRow {
        system: name.into(),
        syscall_us: lmb_proc::syscall::measure_write_devnull(h).as_micros(),
    }
}

/// Table 8 row.
pub fn measure_signal(h: &Harness, name: &str) -> SignalRow {
    let c = lmb_proc::signal::measure_all(h);
    SignalRow {
        system: name.into(),
        sigaction_us: c.install.as_micros(),
        handler_us: c.dispatch.as_micros(),
    }
}

/// Table 9 row.
pub fn measure_proc(h: &Harness, name: &str) -> ProcRow {
    let c = lmb_proc::proc::measure_all(h);
    ProcRow {
        system: name.into(),
        fork_ms: c.fork_exit.value,
        fork_exec_ms: c.fork_exec.value,
        fork_sh_ms: c.fork_sh.value,
    }
}

/// Table 10 row: the four corner configurations.
pub fn measure_ctx(h: &Harness, config: &SuiteConfig, name: &str) -> CtxRow {
    let cell = |processes: usize, footprint_bytes: usize| {
        lmb_proc::ctx::measure(
            h,
            &lmb_proc::ctx::CtxOptions {
                processes,
                footprint_bytes,
                passes: config.ctx_passes,
            },
        )
        .per_switch
        .as_micros()
    };
    CtxRow {
        system: name.into(),
        p2_0k: cell(2, 0),
        p2_32k: cell(2, 32 << 10),
        p8_0k: cell(8, 0),
        p8_32k: cell(8, 32 << 10),
    }
}

/// Table 11 row.
pub fn measure_pipe_lat(h: &Harness, config: &SuiteConfig, name: &str) -> PipeLatRow {
    PipeLatRow {
        system: name.into(),
        pipe_us: lmb_ipc::measure_pipe_latency(h, config.round_trips).as_micros(),
    }
}

/// Table 12 row: raw TCP and RPC/TCP.
pub fn measure_tcp_rpc(h: &Harness, config: &SuiteConfig, name: &str) -> TcpRpcRow {
    let tcp = lmb_ipc::measure_tcp_latency(h, config.round_trips).as_micros();
    let registry = lmb_rpc::Registry::new();
    let server = lmb_rpc::RpcServer::start(registry.clone()).expect("rpc server");
    server.register(
        lmb_rpc::ECHO_PROGRAM,
        lmb_rpc::ECHO_VERSION,
        lmb_rpc::ECHO_PROC,
        Box::new(Ok),
    );
    let rpc = lmb_rpc::client::measure_rpc_latency(
        h,
        &registry,
        lmb_rpc::Protocol::Tcp,
        config.round_trips,
    )
    .as_micros();
    TcpRpcRow {
        system: name.into(),
        tcp_us: tcp,
        rpc_tcp_us: rpc,
    }
}

/// Table 13 row: raw UDP and RPC/UDP.
pub fn measure_udp_rpc(h: &Harness, config: &SuiteConfig, name: &str) -> UdpRpcRow {
    let udp = lmb_ipc::measure_udp_latency(h, config.round_trips).as_micros();
    let registry = lmb_rpc::Registry::new();
    let server = lmb_rpc::RpcServer::start(registry.clone()).expect("rpc server");
    server.register(
        lmb_rpc::ECHO_PROGRAM,
        lmb_rpc::ECHO_VERSION,
        lmb_rpc::ECHO_PROC,
        Box::new(Ok),
    );
    let rpc = lmb_rpc::client::measure_rpc_latency(
        h,
        &registry,
        lmb_rpc::Protocol::Udp,
        config.round_trips,
    )
    .as_micros();
    UdpRpcRow {
        system: name.into(),
        udp_us: udp,
        rpc_udp_us: rpc,
    }
}

/// Table 15 row.
pub fn measure_connect(config: &SuiteConfig, name: &str) -> ConnectRow {
    ConnectRow {
        system: name.into(),
        connect_us: lmb_ipc::measure_tcp_connect(config.connect_attempts).as_micros(),
    }
}

/// Table 16 row.
pub fn measure_fs_lat(config: &SuiteConfig, name: &str) -> FsLatRow {
    let r = lmb_fs::create_delete::measure_in_tempdir(config.fs_files);
    FsLatRow {
        system: name.into(),
        fs: detect_fs_type(),
        create_us: r.create.as_micros(),
        delete_us: r.delete.as_micros(),
    }
}

/// Table 17 row against the simulated classic drive.
pub fn measure_disk(h: &Harness, config: &SuiteConfig, name: &str) -> DiskRow {
    let mut disk = lmb_disk::SimDisk::classic_1995();
    let r = lmb_disk::measure_overhead(h, &mut disk, config.disk_ops);
    DiskRow {
        system: name.into(),
        overhead_us: r.service.as_micros() + r.host_cpu.as_micros(),
    }
}

/// Best-effort file-system type of the temp directory.
fn detect_fs_type() -> String {
    let mounts = std::fs::read_to_string("/proc/mounts").unwrap_or_default();
    let tmp = std::env::temp_dir();
    let mut best: (usize, &str) = (0, "unknown");
    for line in mounts.lines() {
        let mut fields = line.split_whitespace();
        let (Some(_dev), Some(mount), Some(fstype)) = (fields.next(), fields.next(), fields.next())
        else {
            continue;
        };
        if tmp.starts_with(mount) && mount.len() >= best.0 {
            best = (mount.len(), fstype);
        }
    }
    best.1.to_uppercase()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> (Harness, SuiteConfig) {
        let c = SuiteConfig::quick();
        (Harness::new(c.options), c)
    }

    #[test]
    fn syscall_row_is_sane() {
        let (h, _) = quick();
        let r = measure_syscall(&h, "host");
        assert!(r.syscall_us > 0.0 && r.syscall_us < 1000.0);
    }

    #[test]
    fn mem_bw_row_is_sane() {
        let (h, c) = quick();
        let r = measure_mem_bw(&h, &c, "host");
        for v in [r.bcopy_unrolled, r.bcopy_libc, r.read, r.write] {
            assert!(v > 0.0 && v.is_finite());
        }
    }

    #[test]
    fn fs_type_detection_returns_something() {
        let t = detect_fs_type();
        assert!(!t.is_empty());
    }

    #[test]
    fn disk_row_is_paper_scale() {
        let (h, c) = quick();
        let r = measure_disk(&h, &c, "host");
        // Command overhead constant is 100us; total must exceed it.
        assert!(r.overhead_us > 100.0, "{}", r.overhead_us);
        assert!(r.overhead_us < 10_000.0);
    }

    #[test]
    fn tcp_rpc_row_shows_rpc_tax() {
        let (h, mut c) = quick();
        c.round_trips = 30;
        let r = measure_tcp_rpc(&h, &c, "host");
        assert!(r.tcp_us > 0.0);
        assert!(
            r.rpc_tcp_us > r.tcp_us * 0.8,
            "RPC {} implausibly below raw TCP {}",
            r.rpc_tcp_us,
            r.tcp_us
        );
    }
}
