//! Suite-level errors: conditions the caller chose, not conditions the
//! machine produced.
//!
//! A benchmark that crashes or hangs is *data* — the engine records it in
//! the [`lmb_results::RunReport`] and keeps going. [`SuiteError`] is
//! reserved for the cases where there is nothing sensible to run at all:
//! a nonsensical configuration or a benchmark name that does not exist.
//! The CLI maps each variant to a distinct exit code so scripts can react
//! without parsing stderr.

use std::fmt;

/// Why a suite invocation could not start.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SuiteError {
    /// The configuration fails validation; `what` names the bad knob.
    InvalidConfig {
        /// Which constraint was violated.
        what: &'static str,
    },
    /// A benchmark name matched nothing in the registry.
    UnknownBenchmark {
        /// The name as given.
        name: String,
    },
}

impl SuiteError {
    /// Process exit code for the CLI: distinct per variant, disjoint from
    /// the generic usage error (2).
    #[must_use]
    pub fn exit_code(&self) -> u8 {
        match self {
            SuiteError::InvalidConfig { .. } => 3,
            SuiteError::UnknownBenchmark { .. } => 4,
        }
    }
}

impl fmt::Display for SuiteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SuiteError::InvalidConfig { what } => {
                write!(f, "invalid suite configuration: {what}")
            }
            SuiteError::UnknownBenchmark { name } => {
                write!(f, "unknown benchmark {name:?} (try `lmbench list`)")
            }
        }
    }
}

impl std::error::Error for SuiteError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_have_distinct_exit_codes() {
        let invalid = SuiteError::InvalidConfig { what: "x" };
        let unknown = SuiteError::UnknownBenchmark { name: "y".into() };
        assert_ne!(invalid.exit_code(), unknown.exit_code());
        assert!(invalid.exit_code() > 2, "2 is reserved for usage errors");
        assert!(unknown.exit_code() > 2);
    }

    #[test]
    fn display_names_the_problem() {
        let e = SuiteError::UnknownBenchmark {
            name: "lat_warp".into(),
        };
        assert!(e.to_string().contains("lat_warp"));
        let e = SuiteError::InvalidConfig {
            what: "copy buffer too small",
        };
        assert!(e.to_string().contains("copy buffer too small"));
    }
}
