//! The lmbench-rs suite: configuration, host detection, orchestration and
//! report generation.
//!
//! This crate is the paper's *product*: a portable micro-benchmark suite
//! you point at a machine, which runs every experiment (§5 bandwidth, §6
//! latency), appends the host to the results database, and regenerates the
//! paper's tables and figures with the new row in place.
//!
//! Every benchmark reaches the machine through the execution [`engine`]:
//! substrate probes, per-benchmark panic/timeout isolation, retry-on-noise
//! and measurement provenance, producing a partial result set plus a
//! [`lmb_results::RunReport`] instead of an all-or-nothing run.
//!
//! # Examples
//!
//! ```no_run
//! use lmb_core::{SuiteConfig, run_suite};
//!
//! let run = run_suite(&SuiteConfig::quick()).expect("valid config");
//! println!("{}", lmb_core::report::full_report(Some(&run)));
//! ```

pub mod config;
pub mod engine;
pub mod error;
pub mod host;
pub mod output;
pub mod registry;
pub mod report;
pub mod scale;
pub mod service;
pub mod simfuzz;
pub mod suite;

pub use config::{RetryPolicy, SuiteConfig, Verbosity};
pub use engine::{Engine, EngineClock, EngineOutcome, FaultPlan, RunCtx, Substrate};
pub use error::SuiteError;
pub use host::detect_host;
pub use output::{BenchOutput, Metric, Unit};
pub use registry::{BenchRunner, Benchmark, Category, Registry};
pub use scale::{
    find_scale_spec, omission_gap, scale_registry, LoadGen, LoadMode, LoadRunner, LoadSpec,
    ScaleFaultPlan, ScaleRunner, SimServerGen, LADDER_FRACTIONS,
};
pub use service::{ReportClient, ResultsService, ServiceConfig};
pub use simfuzz::{
    load_sim_rig, run_load_scenario, run_scenario, scenario_config, Scenario, ScriptedBench,
};
pub use suite::{run_suite, run_suite_with_report};
