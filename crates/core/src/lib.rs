//! The lmbench-rs suite: configuration, host detection, orchestration and
//! report generation.
//!
//! This crate is the paper's *product*: a portable micro-benchmark suite
//! you point at a machine, which runs every experiment (§5 bandwidth, §6
//! latency), appends the host to the results database, and regenerates the
//! paper's tables and figures with the new row in place.
//!
//! # Examples
//!
//! ```no_run
//! use lmb_core::{SuiteConfig, run_suite};
//!
//! let run = run_suite(&SuiteConfig::quick());
//! println!("{}", lmb_core::report::full_report(Some(&run)));
//! ```

pub mod config;
pub mod host;
pub mod registry;
pub mod report;
pub mod suite;

pub use config::SuiteConfig;
pub use host::detect_host;
pub use registry::{Benchmark, Category, Registry};
pub use suite::run_suite;
