//! Typed benchmark output: measurements plus the table rows they feed.
//!
//! Benchmark runners used to return a formatted `String`, which made the
//! suite path re-measure everything separately from the per-benchmark
//! path. A [`BenchOutput`] carries both faces of a result: [`Metric`]s
//! (headline numbers with units, rendered by `Display` into the old
//! one-line text) and [`lmb_results::TablePatch`]es (the typed rows the
//! engine applies to the `SuiteRun`).

use lmb_results::TablePatch;
use std::fmt;

/// The unit of a headline metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Unit {
    /// Megabytes per second (bandwidths, §5).
    MbPerSec,
    /// Microseconds (most latencies, §6).
    Micros,
    /// Milliseconds (process creation).
    Millis,
    /// Nanoseconds (memory hierarchy).
    Nanos,
    /// A dimensionless multiplier.
    Ratio,
    /// A dimensionless count.
    Count,
}

impl Unit {
    /// Unit suffix as printed.
    #[must_use]
    pub fn suffix(self) -> &'static str {
        match self {
            Unit::MbPerSec => " MB/s",
            Unit::Micros => "us",
            Unit::Millis => "ms",
            Unit::Nanos => "ns",
            Unit::Ratio => "x",
            Unit::Count => "",
        }
    }

    /// Bare unit name (no spacing), for structured outputs like trace
    /// metric events.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Unit::MbPerSec => "MB/s",
            Unit::Micros => "us",
            Unit::Millis => "ms",
            Unit::Nanos => "ns",
            Unit::Ratio => "x",
            Unit::Count => "count",
        }
    }

    /// Decimal places appropriate for the unit's typical magnitude.
    fn precision(self) -> usize {
        match self {
            Unit::MbPerSec | Unit::Count => 0,
            Unit::Micros | Unit::Millis => 2,
            Unit::Nanos | Unit::Ratio => 1,
        }
    }
}

/// One headline number.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// What was measured ("bcopy unrolled", "fork").
    pub label: &'static str,
    /// The value, in `unit`s.
    pub value: f64,
    /// The value's unit.
    pub unit: Unit,
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.label.is_empty() {
            write!(
                f,
                "{:.prec$}{}",
                self.value,
                self.unit.suffix(),
                prec = self.unit.precision()
            )
        } else {
            write!(
                f,
                "{} {:.prec$}{}",
                self.label,
                self.value,
                self.unit.suffix(),
                prec = self.unit.precision()
            )
        }
    }
}

/// What a benchmark runner hands back to the engine.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BenchOutput {
    /// Headline numbers, display order.
    pub metrics: Vec<Metric>,
    /// Typed rows for the `SuiteRun`.
    pub patches: Vec<TablePatch>,
    /// Set when the benchmark discovered mid-run that it cannot measure
    /// anything here (the engine reports `Skipped` and applies no patches).
    pub skip: Option<String>,
}

impl BenchOutput {
    /// An empty output, ready for builder calls.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An output that declares the benchmark unrunnable here.
    #[must_use]
    pub fn skipped(reason: impl Into<String>) -> Self {
        BenchOutput {
            skip: Some(reason.into()),
            ..Self::default()
        }
    }

    /// Appends a headline metric.
    #[must_use]
    pub fn metric(mut self, label: &'static str, value: f64, unit: Unit) -> Self {
        self.metrics.push(Metric { label, value, unit });
        self
    }

    /// Appends a table patch.
    #[must_use]
    pub fn patch(mut self, patch: TablePatch) -> Self {
        self.patches.push(patch);
        self
    }

    /// The old one-line text form (also available via `Display`), kept so
    /// `lmbench run NAME` output is unchanged across the API redesign.
    #[must_use]
    pub fn run_line(&self) -> String {
        self.to_string()
    }
}

impl fmt::Display for BenchOutput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(reason) = &self.skip {
            return write!(f, "skipped: {reason}");
        }
        let mut first = true;
        for m in &self.metrics {
            if !first {
                f.write_str(", ")?;
            }
            write!(f, "{m}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmb_results::SyscallRow;

    #[test]
    fn display_joins_metrics_with_units() {
        let out = BenchOutput::new()
            .metric("pipe", 330.4, Unit::MbPerSec)
            .metric("TCP", 9.1, Unit::Micros);
        assert_eq!(out.to_string(), "pipe 330 MB/s, TCP 9.10us");
        assert_eq!(out.run_line(), out.to_string());
    }

    #[test]
    fn unlabeled_metric_is_bare_value() {
        let out = BenchOutput::new().metric("", 4.7, Unit::Micros);
        assert_eq!(out.to_string(), "4.70us");
    }

    #[test]
    fn skip_wins_over_metrics() {
        let out = BenchOutput::skipped("no loopback");
        assert_eq!(out.to_string(), "skipped: no loopback");
        assert!(out.patches.is_empty());
    }

    #[test]
    fn patches_accumulate() {
        let out = BenchOutput::new().patch(TablePatch::Syscall(SyscallRow {
            system: "t".into(),
            syscall_us: 4.0,
        }));
        assert_eq!(out.patches.len(), 1);
    }
}
