//! Parallel load scaling: the paper's numbers under concurrency.
//!
//! Every measurement in the paper is one client against one resource
//! (§3.2 "lmbench measures the performance of the primitive" — alone).
//! The question a server operator asks next is how those primitives
//! degrade when P processes hit the same resource at once. A
//! [`ScaleRunner`] answers it by running a benchmark's inner operation
//! under P = 1, 2, 4, … concurrent generator threads — each generator its
//! own [`Harness`] with the suite's repetition and quality machinery, all
//! released together by a rendezvous barrier — and folding the results
//! into a typed [`ScalingCurve`]: aggregate throughput, p50/p99
//! latency-under-load, parallel efficiency against P = 1, and a quality
//! grade per point, judged over the *pooled* cross-generator samples.
//!
//! Fault isolation matches the engine's contract: a generator that
//! panics (or cannot be built) fails only its own P-point; the sweep
//! continues, and the failure is recorded in the curve rather than
//! crashing the run.

use crate::config::SuiteConfig;
use crate::engine::{panic_message, provenance_from, EngineClock, Substrate};
use crate::error::SuiteError;
use lmb_results::{
    BenchRecord, BenchStatus, GeneratorSample, MetricValue, RatePoint, RateSweep, ScalePoint,
    ScalingCurve,
};
use lmb_timing::clock::Stopwatch;
use lmb_timing::{
    new_recorder, take_events, ArrivalProcess, ClockInfo, CostModel, Harness, MeasureEvent,
    Quality, Samples, SimClock, TimeSource,
};
use lmb_trace::{emit, emit_in, ContextGuard, EventKind, Span, SpanId};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Barrier};
use std::time::Duration;

/// One generator's repeated operation: the benchmark body a scaling
/// sweep multiplies. `Send` is a supertrait because each generator is
/// moved onto its own thread.
pub trait LoadGen: Send {
    /// Performs one operation (one copy, one round trip, one chunk).
    fn op(&mut self);

    /// The virtual clock this generator advances, when it is a scripted
    /// simulation generator rather than a real one. A `Some` return makes
    /// the sweep time this generator against that clock (pinned
    /// resolution, no hardware probe) so a whole sweep can run in virtual
    /// milliseconds.
    fn sim_clock(&self) -> Option<SimClock> {
        None
    }

    /// The first error this generator's `op()` hit, when its transport
    /// can fail transiently (a socket round trip, say). A failed
    /// generator must keep `op()` a cheap no-op — the runners poll this
    /// after (or between) operations and fail the point with the
    /// underlying error instead of panicking mid-measurement.
    fn failure(&self) -> Option<String> {
        None
    }
}

/// A scalable benchmark: how to build one load generator and how to
/// interpret what it does.
pub struct LoadSpec {
    /// Benchmark name (`bw_mem`, `lat_pipe`, ...), matching the suite
    /// registry where the plain benchmark exists.
    pub name: &'static str,
    /// What the curve reports, for humans.
    pub produces: &'static str,
    /// Throughput unit: `MB/s` when operations move bytes, `ops/s` for
    /// round trips.
    pub unit: &'static str,
    /// OS facilities every generator needs; probed before the sweep.
    pub requires: &'static [Substrate],
    /// Bytes one operation moves (0 for latency benchmarks).
    pub bytes_per_op: fn(&SuiteConfig) -> u64,
    /// Operations per timed repetition.
    pub ops_per_rep: fn(&SuiteConfig) -> u64,
    /// Builds one generator (its own buffers / pipe / socket / process),
    /// so P generators share nothing but the machine.
    pub make: fn(&SuiteConfig) -> Result<Box<dyn LoadGen>, String>,
}

struct MemCopyGen(lmb_mem::bw::CopyBuffers);

impl LoadGen for MemCopyGen {
    fn op(&mut self) {
        lmb_mem::bw::bcopy_unrolled(&mut self.0);
    }
}

struct PipeLatGen(lmb_ipc::PipeEchoPair);

impl LoadGen for PipeLatGen {
    fn op(&mut self) {
        self.0.round_trip();
    }
}

struct UnixLatGen {
    pair: lmb_ipc::UnixEchoPair,
    error: Option<String>,
}

impl LoadGen for UnixLatGen {
    fn op(&mut self) {
        // A transient socket error fails the point through `failure()`,
        // not a panic; once failed, further ops are no-ops.
        if self.error.is_none() {
            if let Err(e) = self.pair.round_trip() {
                self.error = Some(format!("unix round trip: {e}"));
            }
        }
    }

    fn failure(&self) -> Option<String> {
        self.error.clone()
    }
}

struct TcpLatGen {
    pair: lmb_ipc::TcpEchoPair,
    error: Option<String>,
}

impl LoadGen for TcpLatGen {
    fn op(&mut self) {
        if self.error.is_none() {
            if let Err(e) = self.pair.round_trip() {
                self.error = Some(format!("tcp round trip: {e}"));
            }
        }
    }

    fn failure(&self) -> Option<String> {
        self.error.clone()
    }
}

struct PipeBwGen(lmb_ipc::PipeSink);

impl LoadGen for PipeBwGen {
    fn op(&mut self) {
        self.0.write_chunk();
    }
}

struct TcpBwGen(lmb_ipc::TcpSink);

impl LoadGen for TcpBwGen {
    fn op(&mut self) {
        self.0.write_chunk();
    }
}

/// Round trips per repetition for the latency generators: enough to
/// resolve above clock noise, capped so a P-way sweep stays quick.
fn round_trip_ops(config: &SuiteConfig) -> u64 {
    (config.round_trips as u64).clamp(1, 500)
}

/// Chunks per repetition for the streaming generators.
fn stream_ops(config: &SuiteConfig, chunk: usize) -> u64 {
    ((config.stream_total / chunk) as u64).clamp(1, 256)
}

/// Every scalable benchmark: one byte mover per transport plus the
/// latency path of each IPC primitive the paper tables.
#[must_use]
pub fn scale_registry() -> Vec<LoadSpec> {
    vec![
        LoadSpec {
            name: "bw_mem",
            produces: "aggregate bcopy bandwidth under P copiers",
            unit: "MB/s",
            requires: &[],
            bytes_per_op: |c| c.copy_bytes as u64,
            ops_per_rep: |_| 8,
            make: |c| {
                Ok(Box::new(MemCopyGen(lmb_mem::bw::CopyBuffers::new(
                    c.copy_bytes,
                ))))
            },
        },
        LoadSpec {
            name: "lat_pipe",
            produces: "pipe round-trip rate under P process pairs",
            unit: "ops/s",
            requires: &[],
            bytes_per_op: |_| 0,
            ops_per_rep: round_trip_ops,
            make: |_| Ok(Box::new(PipeLatGen(lmb_ipc::PipeEchoPair::start()?))),
        },
        LoadSpec {
            name: "lat_unix",
            produces: "Unix-socket round-trip rate under P client/server pairs",
            unit: "ops/s",
            requires: &[Substrate::TempDir],
            bytes_per_op: |_| 0,
            ops_per_rep: round_trip_ops,
            make: |_| {
                let pair = lmb_ipc::UnixEchoPair::start().map_err(|e| format!("unix pair: {e}"))?;
                Ok(Box::new(UnixLatGen { pair, error: None }))
            },
        },
        LoadSpec {
            name: "lat_tcp",
            produces: "loopback TCP round-trip rate under P connections",
            unit: "ops/s",
            requires: &[Substrate::Loopback],
            bytes_per_op: |_| 0,
            ops_per_rep: round_trip_ops,
            make: |_| {
                let pair = lmb_ipc::TcpEchoPair::start().map_err(|e| format!("tcp pair: {e}"))?;
                Ok(Box::new(TcpLatGen { pair, error: None }))
            },
        },
        LoadSpec {
            name: "bw_pipe",
            produces: "aggregate pipe bandwidth under P writer/reader pairs",
            unit: "MB/s",
            requires: &[],
            bytes_per_op: |_| lmb_ipc::PIPE_CHUNK as u64,
            ops_per_rep: |c| stream_ops(c, lmb_ipc::PIPE_CHUNK),
            make: |_| {
                Ok(Box::new(PipeBwGen(lmb_ipc::PipeSink::start(
                    lmb_ipc::PIPE_CHUNK,
                )?)))
            },
        },
        LoadSpec {
            name: "bw_tcp",
            produces: "aggregate loopback TCP bandwidth under P connections",
            unit: "MB/s",
            requires: &[Substrate::Loopback],
            bytes_per_op: |_| lmb_ipc::TCP_CHUNK as u64,
            ops_per_rep: |c| stream_ops(c, lmb_ipc::TCP_CHUNK),
            make: |_| {
                let sink = lmb_ipc::TcpSink::start(lmb_ipc::TCP_CHUNK, lmb_ipc::TCP_SOCKBUF)?;
                Ok(Box::new(TcpBwGen(sink)))
            },
        },
    ]
}

/// Looks up one scalable benchmark by name.
#[must_use]
pub fn find_scale_spec(name: &str) -> Option<LoadSpec> {
    scale_registry().into_iter().find(|s| s.name == name)
}

/// Injected scaling failures, for tests and fault drills.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScaleFaultPlan {
    /// Panic the last generator of this `(bench, p)` point.
    pub panic_at: Option<(String, u32)>,
}

impl ScaleFaultPlan {
    /// Reads `LMBENCH_FAULT_SCALE_PANIC="bench@p"` so drills can target a
    /// released binary.
    #[must_use]
    pub fn from_env() -> Self {
        let panic_at = std::env::var("LMBENCH_FAULT_SCALE_PANIC")
            .ok()
            .and_then(|v| {
                let (bench, p) = v.split_once('@')?;
                Some((bench.to_string(), p.parse().ok()?))
            });
        ScaleFaultPlan { panic_at }
    }

    /// Targets one point directly.
    #[must_use]
    pub fn panic_at(bench: &str, p: u32) -> Self {
        ScaleFaultPlan {
            panic_at: Some((bench.to_string(), p)),
        }
    }

    fn hits(&self, bench: &str, p: u32) -> bool {
        self.panic_at
            .as_ref()
            .is_some_and(|(b, fp)| b == bench && *fp == p)
    }
}

/// Runs load-scaling sweeps: P concurrent generators per point, each on
/// its own thread with its own harness, started together by a barrier.
pub struct ScaleRunner {
    config: SuiteConfig,
    max_p: u32,
    faults: ScaleFaultPlan,
    clock: EngineClock,
}

impl ScaleRunner {
    /// Builds a runner; rejects invalid configurations.
    pub fn new(config: SuiteConfig) -> Result<Self, SuiteError> {
        config.validate()?;
        Ok(ScaleRunner {
            config,
            max_p: 4,
            faults: ScaleFaultPlan::default(),
            clock: EngineClock::default(),
        })
    }

    /// Replaces the runner's wall clock (virtual runs pass
    /// [`EngineClock::Sim`] so sweep wall times are deterministic).
    #[must_use]
    pub fn with_clock(mut self, clock: EngineClock) -> Self {
        self.clock = clock;
        self
    }

    /// Sets the largest generator count (default 4, minimum 1).
    #[must_use]
    pub fn with_max_p(mut self, max_p: u32) -> Self {
        self.max_p = max_p.max(1);
        self
    }

    /// Installs a fault plan (tests, drills).
    #[must_use]
    pub fn with_faults(mut self, faults: ScaleFaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// The P values a sweep visits: powers of two up to `max_p`,
    /// plus `max_p` itself when it is not a power of two.
    #[must_use]
    pub fn points(&self) -> Vec<u32> {
        let mut ps = Vec::new();
        let mut p = 1u32;
        while p <= self.max_p {
            ps.push(p);
            p = p.saturating_mul(2);
        }
        if *ps.last().expect("at least P=1") != self.max_p {
            ps.push(self.max_p);
        }
        ps
    }

    /// Sweeps one benchmark and returns its curve plus a synthesized
    /// report record (so curves ride the existing report/diff machinery).
    pub fn run(&self, spec: &LoadSpec) -> (ScalingCurve, BenchRecord) {
        let started = self.clock.now_ns();
        let span = Span::enter(format!("scale:{}", spec.name));
        let mut record = BenchRecord {
            name: format!("scale_{}", spec.name),
            produces: spec.produces.to_string(),
            status: BenchStatus::Ok,
            attempts: 1,
            wall_ms: 0.0,
            // A sweep owns the machine by design; never pooled.
            exclusive: true,
            provenance: None,
            rusage: None,
            counters: None,
            metrics: Vec::new(),
            span: span.id().as_option(),
        };
        let mut curve = ScalingCurve {
            bench: spec.name.to_string(),
            unit: spec.unit.to_string(),
            points: Vec::new(),
        };

        for substrate in spec.requires {
            let probe = substrate.probe();
            emit(|| EventKind::Probe {
                substrate: substrate.describe().to_string(),
                ok: probe.is_ok(),
                detail: probe.clone().err().unwrap_or_default(),
            });
            if let Err(reason) = probe {
                record.status = BenchStatus::Skipped(reason);
                record.wall_ms = (self.clock.now_ns() - started).max(0.0) / 1e6;
                return (curve, record);
            }
        }

        emit(|| EventKind::ScaleStart {
            bench: spec.name.to_string(),
            max_p: self.max_p,
        });

        let mut events: Vec<MeasureEvent> = Vec::new();
        for p in self.points() {
            let point = self.measure_point(spec, p, span.id(), &mut events);
            if let Some(pt) = point.as_ok() {
                emit_in(span.id(), || EventKind::ScalePoint {
                    p: pt.p,
                    throughput: pt.throughput,
                    unit: spec.unit.to_string(),
                    p50_us: pt.p50_us,
                    p99_us: pt.p99_us,
                    quality: pt.quality.clone(),
                });
            }
            curve.points.push(point);
        }
        curve.compute_efficiency();

        for pt in curve.ok_points() {
            record.metrics.push(MetricValue {
                label: format!("p{} tput", pt.p),
                value: pt.throughput,
                unit: spec.unit.to_string(),
            });
            record.metrics.push(MetricValue {
                label: format!("p{} p50", pt.p),
                value: pt.p50_us,
                unit: "us".to_string(),
            });
            record.metrics.push(MetricValue {
                label: format!("p{} p99", pt.p),
                value: pt.p99_us,
                unit: "us".to_string(),
            });
        }
        record.provenance = provenance_from(&events);
        if curve.ok_points().next().is_none() {
            record.status = BenchStatus::Failed("every scaling point failed".to_string());
        }
        record.wall_ms = (self.clock.now_ns() - started).max(0.0) / 1e6;
        emit(|| EventKind::Outcome {
            status: record.status.label().to_string(),
            attempts: 1,
            wall_ms: record.wall_ms,
        });
        (curve, record)
    }

    /// Runs one P-point: builds the generators serially (a build failure
    /// fails the point before any thread blocks on the barrier), then
    /// releases them together and measures each under its own harness.
    fn measure_point(
        &self,
        spec: &LoadSpec,
        p: u32,
        span_id: SpanId,
        events: &mut Vec<MeasureEvent>,
    ) -> ScalePoint {
        // Build everything on the coordinator: if generator k of P fails
        // to set up, no thread has parked on a P-wide barrier yet.
        let mut gens = Vec::with_capacity(p as usize);
        for index in 0..p {
            match (spec.make)(&self.config) {
                Ok(g) => gens.push(g),
                Err(e) => {
                    return failed_point(p, format!("generator {index} setup failed: {e}"));
                }
            }
        }

        let ops = (spec.ops_per_rep)(&self.config).max(1);
        let bytes_per_op = (spec.bytes_per_op)(&self.config);
        let inject = self.faults.hits(spec.name, p);
        let barrier = Arc::new(Barrier::new(p as usize));
        let options = self.config.options;

        type GenOutcome = (
            usize,
            Result<lmb_timing::Measurement, String>,
            Vec<MeasureEvent>,
            f64,
        );
        let mut outcomes: Vec<GenOutcome> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(p as usize);
            for (index, mut gen) in gens.into_iter().enumerate() {
                let barrier = Arc::clone(&barrier);
                // The last generator is the fault target: deterministic,
                // and it proves the others' results survive a neighbour's
                // death.
                let sabotage = inject && index as u32 == p - 1;
                handles.push(scope.spawn(move || {
                    let _trace_ctx = ContextGuard::enter(span_id);
                    let recorder = new_recorder();
                    // A scripted generator carries its own virtual clock;
                    // time it against that clock (pinned resolution, no
                    // hardware probe) so the whole point is deterministic.
                    let sim = gen.sim_clock();
                    let real_harness = if sim.is_none() {
                        Some(Harness::new(options).with_recorder(recorder.clone()))
                    } else {
                        None
                    };
                    let sim_harness = sim.as_ref().map(|s| {
                        Harness::with_source_and_clock(
                            options,
                            s.clone(),
                            ClockInfo {
                                resolution_ns: 1.0,
                                overhead_ns: 15.0,
                            },
                        )
                        .with_recorder(recorder.clone())
                    });
                    barrier.wait();
                    let sw = Stopwatch::start();
                    let sim_t0 = sim.as_ref().map(SimClock::true_now_ns);
                    let outcome = catch_unwind(AssertUnwindSafe(|| {
                        if sabotage {
                            panic!("injected fault: scale generator panic");
                        }
                        match &sim_harness {
                            Some(h) => h.measure_block(ops, || {
                                for _ in 0..ops {
                                    gen.op();
                                }
                            }),
                            None => {
                                let h = real_harness.as_ref().expect("real harness when no sim");
                                h.measure_block(ops, || {
                                    for _ in 0..ops {
                                        gen.op();
                                    }
                                })
                            }
                        }
                    }));
                    let elapsed_ms = match (&sim, sim_t0) {
                        (Some(s), Some(t0)) => (s.true_now_ns() - t0).max(0.0) / 1e6,
                        _ => sw.elapsed_ns() / 1e6,
                    };
                    // A generator that swallowed a transport error mid-run
                    // measured no-ops after the failure; its numbers are
                    // void and the underlying io error fails the point.
                    let outcome =
                        outcome
                            .map_err(panic_message)
                            .and_then(|m| match gen.failure() {
                                Some(e) => Err(e),
                                None => Ok(m),
                            });
                    (index, outcome, take_events(&recorder), elapsed_ms)
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("generator panics are caught inside"))
                .collect()
        });
        outcomes.sort_by_key(|(index, ..)| *index);

        // Generators ran concurrently, so the sweep's own virtual clock
        // advances by the slowest generator's span, not the sum.
        if let Some(sim) = self.clock.sim() {
            let max_ns = outcomes
                .iter()
                .map(|(_, _, _, elapsed_ms)| elapsed_ms * 1e6)
                .fold(0.0f64, f64::max);
            sim.advance(max_ns);
        }

        let mut generators = Vec::with_capacity(p as usize);
        let mut pooled: Vec<f64> = Vec::new();
        let mut total_ops = 0u64;
        let mut aggregate = 0.0f64;
        let mut failure: Option<String> = None;
        for (index, outcome, gen_events, elapsed_ms) in outcomes {
            events.extend(gen_events);
            match outcome {
                Err(msg) => {
                    failure.get_or_insert(format!("generator {index}: {msg}"));
                }
                Ok(m) => {
                    let samples = m.samples().clone();
                    let gen_ops = ops * samples.len() as u64;
                    let mean_ns = samples.mean().unwrap_or(0.0);
                    let rate = per_op_rate(mean_ns, bytes_per_op);
                    emit(|| EventKind::Generator {
                        p,
                        index: index as u32,
                        ops: gen_ops,
                        elapsed_ms,
                    });
                    generators.push(GeneratorSample {
                        index: index as u32,
                        throughput: rate,
                        cv: samples.cv(),
                        quality: Quality::from_samples(&samples).label().to_string(),
                    });
                    aggregate += rate;
                    total_ops += gen_ops;
                    pooled.extend_from_slice(samples.values());
                }
            }
        }
        if let Some(reason) = failure {
            return failed_point(p, reason);
        }

        let pool = Samples::from_values(pooled);
        // An empty pool has no percentiles. It must fail the point, never
        // emit p50/p99 = 0.0: a zero latency reads as "fastest ever" to
        // the lower-is-better differ and would mask a regression.
        let (Some(p50), Some(p99)) = (pool.p50(), pool.p99()) else {
            return failed_point(p, "no latency samples were collected".to_string());
        };
        ScalePoint {
            p,
            ops: total_ops,
            throughput: aggregate,
            p50_us: p50 / 1e3,
            p99_us: p99 / 1e3,
            cv: pool.cv(),
            quality: Quality::from_samples(&pool).label().to_string(),
            efficiency: None,
            generators,
            error: None,
        }
    }
}

/// Sustained rate implied by a mean per-op time: MB/s when the op moves
/// bytes, ops/s otherwise; 0.0 when the clock could not resolve the op.
fn per_op_rate(mean_ns: f64, bytes_per_op: u64) -> f64 {
    if mean_ns <= 0.0 {
        return 0.0;
    }
    let ops_per_s = 1e9 / mean_ns;
    if bytes_per_op > 0 {
        ops_per_s * bytes_per_op as f64 / (1 << 20) as f64
    } else {
        ops_per_s
    }
}

/// A point that produced no numbers, only a reason.
fn failed_point(p: u32, reason: String) -> ScalePoint {
    ScalePoint {
        p,
        ops: 0,
        throughput: 0.0,
        p50_us: 0.0,
        p99_us: 0.0,
        cv: 0.0,
        quality: Quality::Suspect.label().to_string(),
        efficiency: None,
        generators: Vec::new(),
        error: Some(reason),
    }
}

/// Extension used by [`ScaleRunner::run`] to peek at ok points.
trait AsOk {
    fn as_ok(&self) -> Option<&ScalePoint>;
}

impl AsOk for ScalePoint {
    fn as_ok(&self) -> Option<&ScalePoint> {
        self.is_ok().then_some(self)
    }
}

// ---------------------------------------------------------------------------
// Open-loop load generation: scheduled arrivals, rate sweeps, and the
// coordinated-omission gap.
// ---------------------------------------------------------------------------

/// Pacing discipline of a rate point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadMode {
    /// Arrivals fire on a pre-computed schedule; each operation's latency
    /// is measured from its *intended* start time, so queueing delay when
    /// the service falls behind is counted, not dropped.
    Open,
    /// The next operation is paced from the previous one's *completion*:
    /// latency is service time only, and delays never accumulate. This is
    /// the coordinated-omission bug made explicit, kept as the comparison
    /// arm so the gap between the two modes is itself a metric.
    Closed,
}

impl LoadMode {
    /// Stable label for reports and trace lines.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            LoadMode::Open => "open",
            LoadMode::Closed => "closed",
        }
    }
}

/// Offered-rate ladder, as fractions of the probed peak service rate.
/// Fractions rather than absolute rates keep metric labels stable across
/// runs (the probed peak varies run to run on real hardware), so sweep
/// metrics stay diffable. The ladder crosses 1.0 because the omission gap
/// only opens once the offered rate approaches and passes what the
/// service can sustain.
pub const LADDER_FRACTIONS: [f64; 7] = [0.3, 0.5, 0.7, 0.85, 1.0, 1.15, 1.3];

/// Builds one fresh load generator per rate point, so a point's backlog
/// (a full pipe, a wedged socket) cannot leak into the next point.
pub type MakeGen<'a> = &'a dyn Fn() -> Result<Box<dyn LoadGen>, String>;

/// A scripted open-loop service for virtual sweeps: `op()` advances a
/// shared [`SimClock`] by a seeded service-time model, so a whole rate
/// sweep — arrivals, queueing, knee — runs in virtual milliseconds and is
/// a deterministic function of the seed.
pub struct SimServerGen {
    clock: SimClock,
    body: Box<dyn FnMut() + Send>,
}

impl SimServerGen {
    /// Scripts one server whose per-op service time follows `model`.
    #[must_use]
    pub fn new(clock: &SimClock, model: CostModel) -> Self {
        SimServerGen {
            clock: clock.clone(),
            body: Box::new(clock.scripted_body(model)),
        }
    }
}

impl LoadGen for SimServerGen {
    fn op(&mut self) {
        (self.body)();
    }

    fn sim_clock(&self) -> Option<SimClock> {
        Some(self.clock.clone())
    }
}

/// Raw per-arrival measurements of one rate point.
struct PacedRun {
    /// Per-operation latency samples, ns (origin depends on the mode).
    latencies_ns: Vec<f64>,
    /// Operations completed.
    completed: u64,
    /// Arrivals whose service started after their intended time.
    late: u64,
    /// Worst start lag behind the schedule, ns.
    max_lag_ns: f64,
    /// Span from the point's epoch to the last completion, ns.
    elapsed_ns: f64,
    /// First generator failure, when the transport died mid-run.
    error: Option<String>,
}

/// Drives one generator through `ops` operations under the given pacing
/// discipline, timed against `source` (the generator's own virtual clock
/// for scripted runs, the host clock otherwise).
fn paced_run<T: TimeSource>(
    source: &T,
    gen: &mut dyn LoadGen,
    mode: LoadMode,
    process: &ArrivalProcess,
    ops: u64,
) -> PacedRun {
    let mut schedule = process.schedule();
    let closed_gap_ns = 1e9 / process.rate_per_s();
    let mut latencies_ns = Vec::with_capacity(ops as usize);
    let mut late = 0u64;
    let mut max_lag_ns = 0.0f64;
    let mut error = None;
    let t_base = source.now_ns();
    for i in 0..ops {
        let (origin_ns, done_ns) = match mode {
            LoadMode::Open => {
                let t_arr = t_base + schedule.next_arrival_ns();
                // The first arrival is scheduled at the epoch itself;
                // reading the clock again to check it would charge the
                // read's own overhead as a fake late start.
                let now = if i == 0 { t_base } else { source.now_ns() };
                if now < t_arr {
                    source.sleep(Duration::from_nanos((t_arr - now) as u64));
                } else if now > t_arr {
                    // The service is behind schedule: this arrival queues.
                    late += 1;
                    max_lag_ns = max_lag_ns.max(now - t_arr);
                }
                gen.op();
                (t_arr, source.now_ns())
            }
            LoadMode::Closed => {
                let start = source.now_ns();
                gen.op();
                let done = source.now_ns();
                // Pace from completion: the generator throttles itself to
                // the offered rate only while the service keeps up, and
                // never notices falling behind.
                let idle_ns = closed_gap_ns - (done - start);
                if idle_ns > 0.0 {
                    source.sleep(Duration::from_nanos(idle_ns as u64));
                }
                (start, done)
            }
        };
        if let Some(e) = gen.failure() {
            error = Some(e);
            break;
        }
        latencies_ns.push((done_ns - origin_ns).max(0.0));
    }
    PacedRun {
        completed: latencies_ns.len() as u64,
        elapsed_ns: (source.now_ns() - t_base).max(0.0),
        latencies_ns,
        late,
        max_lag_ns,
        error,
    }
}

/// The clock a point is timed against: the generator's own virtual clock
/// when it is scripted, the host monotonic clock otherwise.
fn point_clock(gen: &dyn LoadGen) -> EngineClock {
    match gen.sim_clock() {
        Some(sim) => EngineClock::Sim(sim),
        None => EngineClock::default(),
    }
}

/// A rate point that produced no numbers, only a reason.
fn failed_rate_point(offered_per_s: f64, reason: String) -> RatePoint {
    RatePoint {
        offered_per_s,
        achieved_per_s: 0.0,
        ops: 0,
        late: 0,
        max_lag_us: 0.0,
        p50_us: 0.0,
        p99_us: 0.0,
        cv: 0.0,
        quality: Quality::Suspect.label().to_string(),
        error: Some(reason),
    }
}

/// Runs open- and closed-loop rate sweeps: one generator offered a
/// scheduled arrival rate, swept up a ladder of fractions of its probed
/// peak rate until the knee (p99 blowup or throughput plateau).
pub struct LoadRunner {
    config: SuiteConfig,
    clock: EngineClock,
    /// Arrival-process shape and seed; the rate is replaced per point.
    process: ArrivalProcess,
    /// Scheduled arrivals per rate point.
    ops: u64,
}

impl LoadRunner {
    /// Builds a runner; rejects invalid configurations. Defaults: uniform
    /// arrivals, the config's round-trip count (at least 64 so p99 has
    /// tail samples to stand on) per point.
    pub fn new(config: SuiteConfig) -> Result<Self, SuiteError> {
        config.validate()?;
        let ops = round_trip_ops(&config).max(64);
        Ok(LoadRunner {
            config,
            clock: EngineClock::default(),
            process: ArrivalProcess::uniform(1.0),
            ops,
        })
    }

    /// Replaces the runner's wall clock (virtual runs pass
    /// [`EngineClock::Sim`] so report wall times are deterministic).
    #[must_use]
    pub fn with_clock(mut self, clock: EngineClock) -> Self {
        self.clock = clock;
        self
    }

    /// Sets the arrival-process shape (and seed, for Poisson); its rate
    /// is a placeholder the sweep replaces per point.
    #[must_use]
    pub fn with_process(mut self, process: ArrivalProcess) -> Self {
        self.process = process;
        self
    }

    /// Sets scheduled arrivals per rate point (minimum 1).
    #[must_use]
    pub fn with_ops(mut self, ops: u64) -> Self {
        self.ops = ops.max(1);
        self
    }

    /// Scheduled arrivals per rate point.
    #[must_use]
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Peak closed-loop service rate, ops/s, from one unpaced burst of a
    /// fresh generator — the denominator the sweep's rate ladder scales.
    pub fn probe_peak(&self, make: MakeGen) -> Result<f64, String> {
        let mut gen = make().map_err(|e| format!("generator setup failed: {e}"))?;
        let source = point_clock(gen.as_ref());
        let t0 = source.now_ns();
        let outcome = catch_unwind(AssertUnwindSafe(|| {
            for _ in 0..self.ops {
                gen.op();
            }
        }));
        if let Err(p) = outcome {
            return Err(panic_message(p));
        }
        if let Some(e) = gen.failure() {
            return Err(e);
        }
        let elapsed_ns = source.now_ns() - t0;
        if elapsed_ns <= 0.0 {
            return Err("service burst took no measurable time".to_string());
        }
        Ok(self.ops as f64 * 1e9 / elapsed_ns)
    }

    /// Measures one offered rate in one mode with a fresh generator.
    pub fn run_point(&self, make: MakeGen, mode: LoadMode, rate_per_s: f64) -> RatePoint {
        let mut gen = match make() {
            Ok(g) => g,
            Err(e) => return failed_rate_point(rate_per_s, format!("generator setup failed: {e}")),
        };
        let process = self.process.at_rate(rate_per_s);
        let source = point_clock(gen.as_ref());
        let run = match catch_unwind(AssertUnwindSafe(|| {
            paced_run(&source, gen.as_mut(), mode, &process, self.ops)
        })) {
            Ok(run) => run,
            Err(p) => return failed_rate_point(rate_per_s, panic_message(p)),
        };
        if let Some(e) = run.error {
            return failed_rate_point(rate_per_s, e);
        }
        let samples = Samples::from_values(run.latencies_ns);
        // Same contract as the scale runner: no percentiles, no point —
        // a fabricated 0.0 latency would read as an improvement.
        let (Some(p50), Some(p99)) = (samples.p50(), samples.p99()) else {
            return failed_rate_point(rate_per_s, "no latency samples were collected".to_string());
        };
        let point = RatePoint {
            offered_per_s: rate_per_s,
            achieved_per_s: if run.elapsed_ns > 0.0 {
                run.completed as f64 * 1e9 / run.elapsed_ns
            } else {
                0.0
            },
            ops: run.completed,
            late: run.late,
            max_lag_us: run.max_lag_ns / 1e3,
            p50_us: p50 / 1e3,
            p99_us: p99 / 1e3,
            cv: samples.cv(),
            quality: Quality::from_samples(&samples).label().to_string(),
            error: None,
        };
        emit(|| EventKind::RatePoint {
            offered_per_s: point.offered_per_s,
            achieved_per_s: point.achieved_per_s,
            mode: mode.label().to_string(),
            p50_us: point.p50_us,
            p99_us: point.p99_us,
            quality: point.quality.clone(),
        });
        if point.late > 0 {
            emit(|| EventKind::Backlog {
                offered_per_s: point.offered_per_s,
                late: point.late,
                max_lag_us: point.max_lag_us,
            });
        }
        point
    }

    /// Sweeps one mode up the given rate ladder, stopping after the first
    /// saturated point (the knee is included, then the sweep ends).
    pub fn sweep(&self, bench: &str, make: MakeGen, mode: LoadMode, rates: &[f64]) -> RateSweep {
        emit(|| EventKind::SweepStart {
            bench: bench.to_string(),
            mode: mode.label().to_string(),
            process: self.process.label().to_string(),
        });
        let mut sweep = RateSweep {
            bench: bench.to_string(),
            mode: mode.label().to_string(),
            process: self.process.label().to_string(),
            points: Vec::new(),
            knee: None,
        };
        for &rate in rates {
            let point = self.run_point(make, mode, rate);
            sweep.points.push(point);
            sweep.mark_knee();
            if sweep.knee.is_some() {
                break;
            }
        }
        sweep
    }

    /// Sweeps one registered scalable benchmark in the given modes.
    pub fn run_spec(&self, spec: &LoadSpec, modes: &[LoadMode]) -> (Vec<RateSweep>, BenchRecord) {
        self.run_target(
            spec.name,
            spec.produces,
            &|| (spec.make)(&self.config),
            modes,
        )
    }

    /// Probes the peak rate, sweeps every requested mode up the same
    /// fraction ladder, and synthesizes a report record whose metric rows
    /// (per-fraction throughput and p99, plus the omission gap when both
    /// modes ran) ride the existing report/diff machinery.
    pub fn run_target(
        &self,
        bench: &str,
        produces: &str,
        make: MakeGen,
        modes: &[LoadMode],
    ) -> (Vec<RateSweep>, BenchRecord) {
        let started = self.clock.now_ns();
        let span = Span::enter(format!("load:{bench}"));
        let mut record = BenchRecord {
            name: format!("load_{bench}"),
            produces: produces.to_string(),
            status: BenchStatus::Ok,
            attempts: 1,
            wall_ms: 0.0,
            // A sweep owns the machine by design; never pooled.
            exclusive: true,
            provenance: None,
            rusage: None,
            counters: None,
            metrics: Vec::new(),
            span: span.id().as_option(),
        };
        let _guard = ContextGuard::enter(span.id());
        let peak = match self.probe_peak(make) {
            Ok(p) => p,
            Err(e) => {
                record.status = BenchStatus::Failed(format!("peak probe: {e}"));
                record.wall_ms = (self.clock.now_ns() - started).max(0.0) / 1e6;
                return (Vec::new(), record);
            }
        };
        let rates: Vec<f64> = LADDER_FRACTIONS.iter().map(|f| peak * f).collect();
        let sweeps: Vec<RateSweep> = modes
            .iter()
            .map(|&mode| self.sweep(bench, make, mode, &rates))
            .collect();

        for sweep in &sweeps {
            for (i, pt) in sweep.points.iter().enumerate() {
                if !pt.is_ok() {
                    continue;
                }
                let f = LADDER_FRACTIONS[i];
                record.metrics.push(MetricValue {
                    label: format!("{} f{f:.2} tput", sweep.mode),
                    value: pt.achieved_per_s,
                    unit: "ops/s".to_string(),
                });
                record.metrics.push(MetricValue {
                    label: format!("{} f{f:.2} p99", sweep.mode),
                    value: pt.p99_us,
                    unit: "us".to_string(),
                });
            }
        }
        if let Some((f, gap)) = omission_gap(&sweeps) {
            record.metrics.push(MetricValue {
                label: format!("omission gap f{f:.2}"),
                value: gap,
                unit: "x".to_string(),
            });
        }
        if sweeps.iter().all(|s| s.ok_points().next().is_none()) {
            record.status = BenchStatus::Failed("every rate point failed".to_string());
        }
        record.wall_ms = (self.clock.now_ns() - started).max(0.0) / 1e6;
        emit(|| EventKind::Outcome {
            status: record.status.label().to_string(),
            attempts: 1,
            wall_ms: record.wall_ms,
        });
        (sweeps, record)
    }
}

/// The omission gap: open-loop p99 over closed-loop p99 at the highest
/// ladder fraction where both sweeps have an ok point, tagged with that
/// fraction. `None` unless both modes ran and the ratio is judgeable.
#[must_use]
pub fn omission_gap(sweeps: &[RateSweep]) -> Option<(f64, f64)> {
    let open = sweeps.iter().find(|s| s.mode == "open")?;
    let closed = sweeps.iter().find(|s| s.mode == "closed")?;
    (0..open.points.len().min(closed.points.len()))
        .rev()
        .find_map(|i| {
            let (o, c) = (&open.points[i], &closed.points[i]);
            (o.is_ok() && c.is_ok() && c.p99_us > 0.0)
                .then(|| (LADDER_FRACTIONS[i], o.p99_us / c.p99_us))
        })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config() -> SuiteConfig {
        SuiteConfig::quick()
    }

    #[test]
    fn points_are_powers_of_two_plus_the_cap() {
        let r = ScaleRunner::new(quick_config()).unwrap();
        assert_eq!(r.with_max_p(4).points(), vec![1, 2, 4]);
        let r = ScaleRunner::new(quick_config()).unwrap();
        assert_eq!(r.with_max_p(6).points(), vec![1, 2, 4, 6]);
        let r = ScaleRunner::new(quick_config()).unwrap();
        assert_eq!(r.with_max_p(1).points(), vec![1]);
        let r = ScaleRunner::new(quick_config()).unwrap();
        assert_eq!(r.with_max_p(0).points(), vec![1], "clamped to 1");
    }

    #[test]
    fn open_loop_measures_from_the_intended_arrival() {
        // Service 50 us, arrivals every 100 us: the server keeps up, no
        // arrival starts late, and latency is pure service time.
        let sim = SimClock::new(1);
        let mut gen = SimServerGen::new(&sim, CostModel::Constant { ns: 50_000.0 });
        let process = ArrivalProcess::uniform(10_000.0);
        let run = paced_run(&sim, &mut gen, LoadMode::Open, &process, 50);
        assert_eq!(run.completed, 50);
        assert_eq!(run.late, 0);
        assert_eq!(run.max_lag_ns, 0.0);
        for lat in &run.latencies_ns {
            assert!(
                (*lat - 50_000.0).abs() < 100.0,
                "underload latency is service time, got {lat}"
            );
        }

        // Service 50 us, arrivals every 25 us: arrival i queues behind
        // its predecessors and the measured latency grows linearly —
        // the queueing a closed loop would silently drop.
        let sim = SimClock::new(1);
        let mut gen = SimServerGen::new(&sim, CostModel::Constant { ns: 50_000.0 });
        let process = ArrivalProcess::uniform(40_000.0);
        let run = paced_run(&sim, &mut gen, LoadMode::Open, &process, 50);
        assert!(run.late > 40, "almost every arrival starts late");
        assert!(run.max_lag_ns > 1_000_000.0, "lag accumulates past 1 ms");
        let first = run.latencies_ns[0];
        let last = *run.latencies_ns.last().unwrap();
        assert!(
            last > first + 1_000_000.0,
            "latency grows with the backlog ({first} -> {last})"
        );
    }

    #[test]
    fn closed_loop_hides_the_queue_by_design() {
        // The same overload as above, closed-loop: every sample still
        // reads as bare service time and nothing is ever late.
        let sim = SimClock::new(1);
        let mut gen = SimServerGen::new(&sim, CostModel::Constant { ns: 50_000.0 });
        let process = ArrivalProcess::uniform(40_000.0);
        let run = paced_run(&sim, &mut gen, LoadMode::Closed, &process, 50);
        assert_eq!(run.late, 0);
        assert_eq!(run.max_lag_ns, 0.0);
        for lat in &run.latencies_ns {
            assert!(
                (*lat - 50_000.0).abs() < 100.0,
                "closed-loop latency stays service time, got {lat}"
            );
        }
    }

    #[test]
    fn probe_peak_reports_the_service_rate() {
        let sim = SimClock::new(1);
        let runner = LoadRunner::new(quick_config()).unwrap().with_ops(100);
        let sim2 = sim.clone();
        let make = move || -> Result<Box<dyn LoadGen>, String> {
            Ok(Box::new(SimServerGen::new(
                &sim2,
                CostModel::Constant { ns: 100_000.0 },
            )))
        };
        let peak = runner.probe_peak(&make).unwrap();
        assert!(
            (9_000.0..10_100.0).contains(&peak),
            "100 us service probes near 10k ops/s, got {peak:.0}"
        );
        let broken = || -> Result<Box<dyn LoadGen>, String> { Err("nope".into()) };
        assert!(runner.probe_peak(&broken).is_err());
    }

    #[test]
    fn ladder_fractions_cross_the_knee() {
        assert!(LADDER_FRACTIONS.windows(2).all(|w| w[0] < w[1]));
        assert!(*LADDER_FRACTIONS.first().unwrap() < 1.0);
        assert!(
            *LADDER_FRACTIONS.last().unwrap() > 1.0,
            "the sweep must offer more than the service can sustain"
        );
    }

    #[test]
    fn fault_plan_parses_bench_at_p() {
        assert_eq!(
            ScaleFaultPlan::panic_at("bw_mem", 2),
            ScaleFaultPlan {
                panic_at: Some(("bw_mem".into(), 2)),
            }
        );
        assert!(ScaleFaultPlan::panic_at("bw_mem", 2).hits("bw_mem", 2));
        assert!(!ScaleFaultPlan::panic_at("bw_mem", 2).hits("bw_mem", 4));
        assert!(!ScaleFaultPlan::panic_at("bw_mem", 2).hits("lat_pipe", 2));
    }

    #[test]
    fn registry_names_are_unique_and_units_known() {
        let specs = scale_registry();
        let names: std::collections::HashSet<&str> = specs.iter().map(|s| s.name).collect();
        assert_eq!(names.len(), specs.len());
        for spec in &specs {
            assert!(matches!(spec.unit, "MB/s" | "ops/s"), "{}", spec.name);
            // Byte movers report MB/s, round-trippers ops/s.
            let bytes = (spec.bytes_per_op)(&quick_config());
            assert_eq!(spec.unit == "MB/s", bytes > 0, "{}", spec.name);
            assert!((spec.ops_per_rep)(&quick_config()) >= 1, "{}", spec.name);
        }
        assert!(find_scale_spec("bw_mem").is_some());
        assert!(find_scale_spec("no_such_bench").is_none());
    }

    #[test]
    fn per_op_rate_converts_bytes_and_ops() {
        // 1 ms per 1 MB op = 1000 MB/s; 1 us per round trip = 1M ops/s.
        assert!((per_op_rate(1e6, 1 << 20) - 1000.0).abs() < 1e-9);
        assert!((per_op_rate(1e3, 0) - 1e6).abs() < 1e-6);
        assert_eq!(per_op_rate(0.0, 1 << 20), 0.0);
    }

    #[test]
    fn mem_sweep_produces_graded_points() {
        let runner = ScaleRunner::new(quick_config()).unwrap().with_max_p(2);
        let spec = find_scale_spec("bw_mem").unwrap();
        let (curve, record) = runner.run(&spec);
        assert_eq!(curve.points.len(), 2);
        for pt in curve.ok_points() {
            assert!(pt.throughput > 0.0, "P={}", pt.p);
            assert!(pt.p99_us >= pt.p50_us, "P={}", pt.p);
            assert!(Quality::from_label(&pt.quality).is_some(), "P={}", pt.p);
            assert_eq!(pt.generators.len(), pt.p as usize);
        }
        assert_eq!(record.status, BenchStatus::Ok);
        assert!(record.provenance.is_some());
        assert!(record
            .metrics
            .iter()
            .any(|m| m.label == "p1 tput" && m.unit == "MB/s"));
    }

    #[test]
    fn setup_failure_fails_the_point_without_deadlock() {
        let spec = LoadSpec {
            name: "always_fails",
            produces: "nothing",
            unit: "ops/s",
            requires: &[],
            bytes_per_op: |_| 0,
            ops_per_rep: |_| 1,
            make: |_| Err("no such device".into()),
        };
        let runner = ScaleRunner::new(quick_config()).unwrap().with_max_p(2);
        let (curve, record) = runner.run(&spec);
        assert!(curve.points.iter().all(|pt| !pt.is_ok()));
        assert!(curve.points[0]
            .error
            .as_deref()
            .unwrap()
            .contains("no such device"));
        assert!(matches!(record.status, BenchStatus::Failed(_)));
    }
}
