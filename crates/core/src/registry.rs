//! A name-addressable registry of the suite's benchmarks.
//!
//! Lets callers (CLI, examples, harnesses) run one benchmark by name —
//! the lmbench idiom of individual `bw_*`/`lat_*` binaries — and gives
//! the execution engine everything it needs to schedule them: substrate
//! requirements, interference sensitivity (`exclusive`), the [`SuiteRun`]
//! fields each entry fills, and whether the entry derives its rows from
//! other entries' measurements instead of measuring itself.

use crate::config::SuiteConfig;
use crate::engine::{RunCtx, Substrate};
use crate::error::SuiteError;
use crate::host::detect_host;
use crate::output::{BenchOutput, Unit};
use crate::suite;
use lmb_results::{RemoteBwRow, RemoteLatRow, SuiteField, SuiteRun, TablePatch};
use lmb_timing::Harness;
use std::sync::Arc;

/// A benchmark body the engine can move onto a watchdogged thread.
///
/// `Arc`'d so scripted simulation benchmarks can capture state (a shared
/// `SimClock`, a cost model) while the standard registry keeps paying only
/// a pointer per entry via [`arc_runner`].
pub type BenchRunner = Arc<dyn Fn(&RunCtx) -> BenchOutput + Send + Sync>;

/// Wraps a plain function pointer as a [`BenchRunner`]. Taking `fn` rather
/// than a generic closure keeps the 23 standard-registry literals coercing
/// without type annotations.
fn arc_runner(f: fn(&RunCtx) -> BenchOutput) -> BenchRunner {
    Arc::new(f)
}

/// The paper section a benchmark belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// §5: data movement rates.
    Bandwidth,
    /// §6: operation latencies.
    Latency,
    /// Identity data (Table 1), not a measurement.
    Identity,
}

/// One runnable benchmark.
pub struct Benchmark {
    /// CLI-style name ("lat_syscall", "bw_pipe").
    pub name: &'static str,
    /// Which table/figure it feeds.
    pub produces: &'static str,
    /// Paper section.
    pub category: Category,
    /// Interference-sensitive: the engine never runs it concurrently with
    /// anything else (memory sweeps, context switching).
    pub exclusive: bool,
    /// OS facilities probed before launch; missing ones skip the benchmark
    /// instead of crashing it.
    pub requires: &'static [Substrate],
    /// [`SuiteRun`] fields this entry's patches populate.
    pub fills: &'static [SuiteField],
    /// Derives its rows from earlier entries' results (runs in the
    /// engine's second phase with a populated snapshot, never retried).
    pub derived: bool,
    runner: BenchRunner,
}

impl Benchmark {
    /// Builds a benchmark around an arbitrary (possibly capturing) runner —
    /// the constructor the simulation registry uses for scripted bodies.
    pub fn scripted(
        name: &'static str,
        produces: &'static str,
        category: Category,
        exclusive: bool,
        runner: BenchRunner,
    ) -> Self {
        Self {
            name,
            produces,
            category,
            exclusive,
            requires: &[],
            fills: &[],
            derived: false,
            runner,
        }
    }

    /// Runs the benchmark against an execution context.
    pub fn run(&self, ctx: &RunCtx) -> BenchOutput {
        (*self.runner)(ctx)
    }

    /// The shared runner, for the engine to move onto a watchdogged thread
    /// (the `Arc` is `'static`; `&Benchmark` is not).
    pub(crate) fn runner_fn(&self) -> BenchRunner {
        self.runner.clone()
    }

    /// Compatibility wrapper for the pre-engine API: runs with an empty
    /// snapshot and returns the one-line human-readable result.
    pub fn run_line(&self, h: &Harness, config: &SuiteConfig) -> String {
        let ctx = RunCtx {
            harness: h.clone(),
            config: *config,
            host: "host".into(),
            snapshot: SuiteRun::default(),
            span: lmb_trace::SpanId::NONE,
        };
        self.run(&ctx).run_line()
    }
}

/// The full benchmark registry.
pub struct Registry {
    benchmarks: Vec<Benchmark>,
}

impl Registry {
    /// Builds the registry with every suite benchmark, in table order.
    pub fn standard() -> Self {
        let benchmarks = vec![
            Benchmark {
                name: "sys_info",
                produces: "Table 1",
                category: Category::Identity,
                exclusive: false,
                requires: &[],
                fills: &[SuiteField::System],
                derived: false,
                runner: arc_runner(|_| {
                    let info = detect_host();
                    BenchOutput::new()
                        .metric("cpu MHz", f64::from(info.mhz), Unit::Count)
                        .patch(TablePatch::System(info))
                }),
            },
            Benchmark {
                name: "bw_mem",
                produces: "Table 2",
                category: Category::Bandwidth,
                exclusive: true,
                requires: &[],
                fills: &[SuiteField::MemBw],
                derived: false,
                runner: arc_runner(|ctx| {
                    let r = suite::measure_mem_bw(&ctx.harness, &ctx.config, &ctx.host);
                    BenchOutput::new()
                        .metric("bcopy unrolled", r.bcopy_unrolled, Unit::MbPerSec)
                        .metric("bcopy libc", r.bcopy_libc, Unit::MbPerSec)
                        .metric("read", r.read, Unit::MbPerSec)
                        .metric("write", r.write, Unit::MbPerSec)
                        .patch(TablePatch::MemBw(r))
                }),
            },
            Benchmark {
                name: "bw_pipe_tcp",
                produces: "Table 3",
                category: Category::Bandwidth,
                exclusive: false,
                requires: &[Substrate::Loopback],
                fills: &[SuiteField::IpcBw],
                derived: false,
                runner: arc_runner(|ctx| {
                    let r = suite::measure_ipc_bw(&ctx.harness, &ctx.config, &ctx.host);
                    BenchOutput::new()
                        .metric("pipe", r.pipe, Unit::MbPerSec)
                        .metric("TCP", r.tcp.unwrap_or(0.0), Unit::MbPerSec)
                        .patch(TablePatch::IpcBw(r))
                }),
            },
            Benchmark {
                name: "remote_bw_model",
                produces: "Table 4",
                category: Category::Bandwidth,
                exclusive: false,
                requires: &[],
                fills: &[SuiteField::RemoteBw],
                derived: true,
                runner: arc_runner(|ctx| {
                    let Some(tcp_bw) = ctx.snapshot.ipc_bw.as_ref().and_then(|r| r.tcp) else {
                        return BenchOutput::skipped("needs a measured Table 3 TCP bandwidth");
                    };
                    let rows: Vec<RemoteBwRow> = lmb_net::remote::bandwidth_table(tcp_bw)
                        .into_iter()
                        .map(|r| RemoteBwRow {
                            system: ctx.host.clone(),
                            network: r.link.name.into(),
                            tcp: r.total_mb_s,
                        })
                        .collect();
                    BenchOutput::new()
                        .metric("links modeled", rows.len() as f64, Unit::Count)
                        .patch(TablePatch::RemoteBw(rows))
                }),
            },
            Benchmark {
                name: "bw_file",
                produces: "Table 5",
                category: Category::Bandwidth,
                exclusive: true,
                requires: &[Substrate::TempDir],
                fills: &[SuiteField::FileBw],
                derived: false,
                runner: arc_runner(|ctx| {
                    let r = suite::measure_file_bw(&ctx.harness, &ctx.config, &ctx.host);
                    BenchOutput::new()
                        .metric("file read", r.file_read, Unit::MbPerSec)
                        .metric("mmap", r.file_mmap, Unit::MbPerSec)
                        .metric("mem read", r.mem_read, Unit::MbPerSec)
                        .patch(TablePatch::FileBw(r))
                }),
            },
            Benchmark {
                name: "lat_mem_rd",
                produces: "Table 6 / Figure 1",
                category: Category::Latency,
                exclusive: true,
                requires: &[],
                fills: &[SuiteField::CacheLat],
                derived: false,
                runner: arc_runner(|ctx| {
                    let r = suite::measure_cache_lat(&ctx.harness, &ctx.config, &ctx.host);
                    BenchOutput::new()
                        .metric("L1", r.l1_ns.unwrap_or(0.0), Unit::Nanos)
                        .metric("L2", r.l2_ns.unwrap_or(0.0), Unit::Nanos)
                        .metric("memory", r.memory_ns, Unit::Nanos)
                        .patch(TablePatch::CacheLat(r))
                }),
            },
            Benchmark {
                name: "lat_syscall",
                produces: "Table 7",
                category: Category::Latency,
                exclusive: false,
                requires: &[Substrate::DevNull],
                fills: &[SuiteField::Syscall],
                derived: false,
                runner: arc_runner(|ctx| {
                    let r = suite::measure_syscall(&ctx.harness, &ctx.host);
                    BenchOutput::new()
                        .metric("", r.syscall_us, Unit::Micros)
                        .patch(TablePatch::Syscall(r))
                }),
            },
            Benchmark {
                name: "lat_sig",
                produces: "Table 8",
                category: Category::Latency,
                exclusive: false,
                requires: &[],
                fills: &[SuiteField::Signal],
                derived: false,
                runner: arc_runner(|ctx| {
                    let r = suite::measure_signal(&ctx.harness, &ctx.host);
                    BenchOutput::new()
                        .metric("install", r.sigaction_us, Unit::Micros)
                        .metric("dispatch", r.handler_us, Unit::Micros)
                        .patch(TablePatch::Signal(r))
                }),
            },
            Benchmark {
                name: "lat_proc",
                produces: "Table 9",
                category: Category::Latency,
                exclusive: false,
                requires: &[],
                fills: &[SuiteField::Proc],
                derived: false,
                runner: arc_runner(|ctx| {
                    let r = suite::measure_proc(&ctx.harness, &ctx.host);
                    BenchOutput::new()
                        .metric("fork", r.fork_ms, Unit::Millis)
                        .metric("exec", r.fork_exec_ms, Unit::Millis)
                        .metric("sh", r.fork_sh_ms, Unit::Millis)
                        .patch(TablePatch::Proc(r))
                }),
            },
            Benchmark {
                name: "lat_ctx",
                produces: "Table 10 / Figure 2",
                category: Category::Latency,
                exclusive: true,
                requires: &[],
                fills: &[SuiteField::Ctx],
                derived: false,
                runner: arc_runner(|ctx| {
                    let r = suite::measure_ctx(&ctx.harness, &ctx.config, &ctx.host);
                    BenchOutput::new()
                        .metric("2p/0K", r.p2_0k, Unit::Micros)
                        .metric("8p/32K", r.p8_32k, Unit::Micros)
                        .patch(TablePatch::Ctx(r))
                }),
            },
            Benchmark {
                name: "lat_pipe",
                produces: "Table 11",
                category: Category::Latency,
                exclusive: false,
                requires: &[],
                fills: &[SuiteField::PipeLat],
                derived: false,
                runner: arc_runner(|ctx| {
                    let r = suite::measure_pipe_lat(&ctx.harness, &ctx.config, &ctx.host);
                    BenchOutput::new()
                        .metric("", r.pipe_us, Unit::Micros)
                        .patch(TablePatch::PipeLat(r))
                }),
            },
            Benchmark {
                name: "lat_tcp_rpc",
                produces: "Table 12",
                category: Category::Latency,
                exclusive: false,
                requires: &[Substrate::Loopback],
                fills: &[SuiteField::TcpRpc],
                derived: false,
                runner: arc_runner(|ctx| {
                    let r = suite::measure_tcp_rpc(&ctx.harness, &ctx.config, &ctx.host);
                    BenchOutput::new()
                        .metric("TCP", r.tcp_us, Unit::Micros)
                        .metric("RPC/TCP", r.rpc_tcp_us, Unit::Micros)
                        .patch(TablePatch::TcpRpc(r))
                }),
            },
            Benchmark {
                name: "lat_udp_rpc",
                produces: "Table 13",
                category: Category::Latency,
                exclusive: false,
                requires: &[Substrate::Loopback],
                fills: &[SuiteField::UdpRpc],
                derived: false,
                runner: arc_runner(|ctx| {
                    let r = suite::measure_udp_rpc(&ctx.harness, &ctx.config, &ctx.host);
                    BenchOutput::new()
                        .metric("UDP", r.udp_us, Unit::Micros)
                        .metric("RPC/UDP", r.rpc_udp_us, Unit::Micros)
                        .patch(TablePatch::UdpRpc(r))
                }),
            },
            Benchmark {
                name: "remote_lat_model",
                produces: "Table 14",
                category: Category::Latency,
                exclusive: false,
                requires: &[],
                fills: &[SuiteField::RemoteLat],
                derived: true,
                runner: arc_runner(|ctx| {
                    let (Some(tcp_rpc), Some(udp_rpc)) =
                        (&ctx.snapshot.tcp_rpc, &ctx.snapshot.udp_rpc)
                    else {
                        return BenchOutput::skipped(
                            "needs measured Table 12 and 13 round-trip latencies",
                        );
                    };
                    let rows: Vec<RemoteLatRow> = lmb_net::remote::latency_table(tcp_rpc.tcp_us)
                        .into_iter()
                        .map(|r| {
                            let udp = lmb_net::remote::remote_latency(r.link, udp_rpc.udp_us);
                            RemoteLatRow {
                                system: ctx.host.clone(),
                                network: r.link.name.into(),
                                tcp_us: r.total_us,
                                udp_us: udp.total_us,
                            }
                        })
                        .collect();
                    BenchOutput::new()
                        .metric("links modeled", rows.len() as f64, Unit::Count)
                        .patch(TablePatch::RemoteLat(rows))
                }),
            },
            Benchmark {
                name: "lat_connect",
                produces: "Table 15",
                category: Category::Latency,
                exclusive: false,
                requires: &[Substrate::Loopback],
                fills: &[SuiteField::Connect],
                derived: false,
                runner: arc_runner(|ctx| {
                    let r = suite::measure_connect(&ctx.config, &ctx.host);
                    BenchOutput::new()
                        .metric("", r.connect_us, Unit::Micros)
                        .patch(TablePatch::Connect(r))
                }),
            },
            Benchmark {
                name: "lat_fs",
                produces: "Table 16",
                category: Category::Latency,
                exclusive: false,
                requires: &[Substrate::TempDir],
                fills: &[SuiteField::FsLat],
                derived: false,
                runner: arc_runner(|ctx| {
                    let r = suite::measure_fs_lat(&ctx.config, &ctx.host);
                    BenchOutput::new()
                        .metric("create", r.create_us, Unit::Micros)
                        .metric("delete", r.delete_us, Unit::Micros)
                        .patch(TablePatch::FsLat(r))
                }),
            },
            Benchmark {
                name: "lat_disk",
                produces: "Table 17",
                category: Category::Latency,
                exclusive: false,
                requires: &[],
                fills: &[SuiteField::Disk],
                derived: false,
                runner: arc_runner(|ctx| {
                    let r = suite::measure_disk(&ctx.harness, &ctx.config, &ctx.host);
                    BenchOutput::new()
                        .metric("", r.overhead_us, Unit::Micros)
                        .patch(TablePatch::Disk(r))
                }),
            },
            // Extensions: the paper's §7 future-work items and the §1
            // aliasing pathology, runnable like any other benchmark. They
            // fill no SuiteRun field (no 1995 table to regenerate).
            Benchmark {
                name: "bw_unix",
                produces: "extension (later lmbench bw_unix)",
                category: Category::Bandwidth,
                exclusive: false,
                requires: &[],
                fills: &[],
                derived: false,
                runner: arc_runner(|ctx| {
                    let bw = lmb_ipc::measure_unix_bw(
                        ctx.config.stream_total,
                        lmb_ipc::PIPE_CHUNK,
                        ctx.config.options.repetitions.min(3),
                        lmb_timing::SummaryPolicy::Last,
                    );
                    BenchOutput::new().metric("unix socket", bw.mb_per_s, Unit::MbPerSec)
                }),
            },
            Benchmark {
                name: "lat_mem_dirty",
                produces: "extension (paper \u{a7}7 dirty-read latency)",
                category: Category::Latency,
                exclusive: true,
                requires: &[],
                fills: &[],
                derived: false,
                runner: arc_runner(|ctx| {
                    let clean = lmb_mem::lat::measure_point(
                        &ctx.harness,
                        ctx.config.sweep_max,
                        64,
                        lmb_mem::ChasePattern::Random,
                    );
                    let dirty = lmb_mem::measure_dirty_point(
                        &ctx.harness,
                        ctx.config.sweep_max,
                        64,
                        lmb_mem::ChasePattern::Random,
                    );
                    BenchOutput::new()
                        .metric("clean", clean.ns_per_load, Unit::Nanos)
                        .metric("dirty", dirty.ns_per_load, Unit::Nanos)
                }),
            },
            Benchmark {
                name: "lat_mp_c2c",
                produces: "extension (paper \u{a7}7 MP cache-to-cache)",
                category: Category::Latency,
                exclusive: true,
                requires: &[],
                fills: &[],
                derived: false,
                runner: arc_runner(|_| {
                    let line = lmb_mem::measure_line_pingpong(2000, 3);
                    let bw = lmb_mem::measure_cache_to_cache_bw(256 << 10, 8);
                    BenchOutput::new()
                        .metric("line transfer", line.as_micros(), Unit::Micros)
                        .metric("c2c bandwidth", bw.mb_per_s, Unit::MbPerSec)
                }),
            },
            Benchmark {
                name: "lat_poll",
                produces: "extension (later lmbench lat_select)",
                category: Category::Latency,
                exclusive: false,
                requires: &[],
                fills: &[],
                derived: false,
                runner: arc_runner(|ctx| {
                    let few = lmb_proc::measure_poll(&ctx.harness, 8).latency;
                    let many = lmb_proc::measure_poll(&ctx.harness, 1024).latency;
                    BenchOutput::new()
                        .metric("8 fds", few.as_micros(), Unit::Micros)
                        .metric("1024 fds", many.as_micros(), Unit::Micros)
                }),
            },
            Benchmark {
                name: "lat_mlp",
                produces: "extension (\u{a7}6.1 load-in-a-vacuum vs back-to-back)",
                category: Category::Latency,
                exclusive: true,
                requires: &[],
                fills: &[],
                derived: false,
                runner: arc_runner(|ctx| {
                    let pts = lmb_mem::mlp::sweep(&ctx.harness, 4, ctx.config.sweep_max, 64);
                    BenchOutput::new()
                        .metric("1 chain", pts[0].ns_per_load, Unit::Nanos)
                        .metric("4 chains", pts[3].ns_per_load, Unit::Nanos)
                        .metric("MLP", lmb_mem::mlp::effective_mlp(&pts), Unit::Ratio)
                }),
            },
            Benchmark {
                name: "lat_alias",
                produces: "extension (paper \u{a7}1 cache-aliasing check)",
                category: Category::Latency,
                exclusive: true,
                requires: &[],
                fills: &[],
                derived: false,
                runner: arc_runner(|ctx| {
                    let r = lmb_mem::measure_alias(&ctx.harness, 512, 256 << 10);
                    BenchOutput::new()
                        .metric("packed", r.compact_ns, Unit::Nanos)
                        .metric("aliased", r.aliased_ns, Unit::Nanos)
                        .metric("slowdown", r.slowdown(), Unit::Ratio)
                }),
            },
        ];
        Self { benchmarks }
    }

    /// Builds a registry from an arbitrary benchmark list — the entry
    /// point for scripted simulation suites whose bodies are synthesized
    /// per scenario rather than drawn from the standard table set.
    pub fn custom(benchmarks: Vec<Benchmark>) -> Self {
        Self { benchmarks }
    }

    /// Restricts the registry to the named benchmarks, preserving registry
    /// order; errors on the first unknown name.
    pub fn filtered(self, names: &[&str]) -> Result<Self, SuiteError> {
        for name in names {
            if !self.benchmarks.iter().any(|b| b.name == *name) {
                return Err(SuiteError::UnknownBenchmark {
                    name: (*name).to_string(),
                });
            }
        }
        Ok(Self {
            benchmarks: self
                .benchmarks
                .into_iter()
                .filter(|b| names.contains(&b.name))
                .collect(),
        })
    }

    /// All benchmarks.
    pub fn all(&self) -> &[Benchmark] {
        &self.benchmarks
    }

    /// Finds one by name.
    pub fn find(&self, name: &str) -> Option<&Benchmark> {
        self.benchmarks.iter().find(|b| b.name == name)
    }

    /// Benchmark names, registry order.
    pub fn names(&self) -> Vec<&'static str> {
        self.benchmarks.iter().map(|b| b.name).collect()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_all_categories() {
        let r = Registry::standard();
        assert!(r.all().iter().any(|b| b.category == Category::Bandwidth));
        assert!(r.all().iter().any(|b| b.category == Category::Latency));
        assert!(r.all().iter().any(|b| b.category == Category::Identity));
        assert!(r.all().len() >= 14);
    }

    #[test]
    fn names_are_unique() {
        let names = Registry::standard().names();
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }

    #[test]
    fn find_works_and_misses_cleanly() {
        let r = Registry::standard();
        assert!(r.find("lat_syscall").is_some());
        assert!(r.find("lat_nonexistent").is_none());
    }

    #[test]
    fn every_paper_table_is_produced() {
        let r = Registry::standard();
        let produced: String = r
            .all()
            .iter()
            .map(|b| b.produces)
            .collect::<Vec<_>>()
            .join(" ");
        // With sys_info and the remote link models in the registry, every
        // table of the paper has exactly one producing entry.
        for t in 1..=17 {
            assert!(
                produced.contains(&format!("Table {t}")),
                "Table {t} unproduced"
            );
        }
    }

    #[test]
    fn every_suite_field_is_filled_by_exactly_one_entry() {
        let r = Registry::standard();
        for field in SuiteField::ALL {
            let fillers: Vec<&str> = r
                .all()
                .iter()
                .filter(|b| b.fills.contains(&field))
                .map(|b| b.name)
                .collect();
            assert_eq!(
                fillers.len(),
                1,
                "{field:?} filled by {fillers:?}, want exactly one entry"
            );
        }
    }

    #[test]
    fn derived_entries_come_after_their_inputs() {
        let r = Registry::standard();
        let pos = |name: &str| r.all().iter().position(|b| b.name == name).unwrap();
        assert!(pos("remote_bw_model") > pos("bw_pipe_tcp"));
        assert!(pos("remote_lat_model") > pos("lat_udp_rpc"));
    }

    #[test]
    fn filtered_preserves_order_and_rejects_unknown() {
        let r = Registry::standard()
            .filtered(&["lat_syscall", "bw_mem"])
            .unwrap();
        // Registry order, not argument order.
        assert_eq!(r.names(), vec!["bw_mem", "lat_syscall"]);
        let err = match Registry::standard().filtered(&["lat_warp"]) {
            Err(e) => e,
            Ok(_) => panic!("unknown name accepted"),
        };
        assert!(matches!(err, SuiteError::UnknownBenchmark { .. }));
    }

    #[test]
    fn a_cheap_benchmark_runs_end_to_end() {
        let r = Registry::standard();
        let h = Harness::new(lmb_timing::Options::quick());
        let out = r
            .find("lat_syscall")
            .unwrap()
            .run_line(&h, &SuiteConfig::quick());
        assert!(out.contains("us"), "{out}");
    }

    #[test]
    fn derived_entry_skips_on_empty_snapshot() {
        let r = Registry::standard();
        let h = Harness::new(lmb_timing::Options::quick());
        let out = r
            .find("remote_bw_model")
            .unwrap()
            .run_line(&h, &SuiteConfig::quick());
        assert!(out.starts_with("skipped:"), "{out}");
    }
}
