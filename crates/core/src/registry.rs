//! A name-addressable registry of the suite's benchmarks.
//!
//! Lets callers (CLI, examples, harnesses) run one benchmark by name —
//! the lmbench idiom of individual `bw_*`/`lat_*` binaries — without
//! linking the run-everything path.

use crate::config::SuiteConfig;
use crate::suite;
use lmb_timing::Harness;

/// The paper section a benchmark belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Category {
    /// §5: data movement rates.
    Bandwidth,
    /// §6: operation latencies.
    Latency,
}

/// One runnable benchmark.
pub struct Benchmark {
    /// CLI-style name ("lat_syscall", "bw_pipe").
    pub name: &'static str,
    /// Which table/figure it feeds.
    pub produces: &'static str,
    /// Paper section.
    pub category: Category,
    runner: fn(&Harness, &SuiteConfig) -> String,
}

impl Benchmark {
    /// Runs the benchmark, returning a one-line human-readable result.
    pub fn run(&self, h: &Harness, config: &SuiteConfig) -> String {
        (self.runner)(h, config)
    }
}

/// The full benchmark registry.
pub struct Registry {
    benchmarks: Vec<Benchmark>,
}

impl Registry {
    /// Builds the registry with every suite benchmark.
    pub fn standard() -> Self {
        let benchmarks = vec![
            Benchmark {
                name: "bw_mem",
                produces: "Table 2",
                category: Category::Bandwidth,
                runner: |h, c| {
                    let r = suite::measure_mem_bw(h, c, "host");
                    format!(
                        "bcopy unrolled {:.0} / libc {:.0} / read {:.0} / write {:.0} MB/s",
                        r.bcopy_unrolled, r.bcopy_libc, r.read, r.write
                    )
                },
            },
            Benchmark {
                name: "bw_pipe_tcp",
                produces: "Table 3",
                category: Category::Bandwidth,
                runner: |h, c| {
                    let r = suite::measure_ipc_bw(h, c, "host");
                    format!(
                        "pipe {:.0} MB/s, TCP {:.0} MB/s",
                        r.pipe,
                        r.tcp.unwrap_or(0.0)
                    )
                },
            },
            Benchmark {
                name: "bw_file",
                produces: "Table 5",
                category: Category::Bandwidth,
                runner: |h, c| {
                    let r = suite::measure_file_bw(h, c, "host");
                    format!(
                        "file read {:.0} / mmap {:.0} / mem read {:.0} MB/s",
                        r.file_read, r.file_mmap, r.mem_read
                    )
                },
            },
            Benchmark {
                name: "lat_mem_rd",
                produces: "Table 6 / Figure 1",
                category: Category::Latency,
                runner: |h, c| {
                    let r = suite::measure_cache_lat(h, c, "host");
                    format!(
                        "L1 {:.1}ns, L2 {:.1}ns, memory {:.1}ns",
                        r.l1_ns.unwrap_or(0.0),
                        r.l2_ns.unwrap_or(0.0),
                        r.memory_ns
                    )
                },
            },
            Benchmark {
                name: "lat_syscall",
                produces: "Table 7",
                category: Category::Latency,
                runner: |h, _| {
                    format!("{:.2}us", suite::measure_syscall(h, "host").syscall_us)
                },
            },
            Benchmark {
                name: "lat_sig",
                produces: "Table 8",
                category: Category::Latency,
                runner: |h, _| {
                    let r = suite::measure_signal(h, "host");
                    format!("install {:.2}us, dispatch {:.2}us", r.sigaction_us, r.handler_us)
                },
            },
            Benchmark {
                name: "lat_proc",
                produces: "Table 9",
                category: Category::Latency,
                runner: |h, _| {
                    let r = suite::measure_proc(h, "host");
                    format!(
                        "fork {:.2}ms, exec {:.2}ms, sh {:.2}ms",
                        r.fork_ms, r.fork_exec_ms, r.fork_sh_ms
                    )
                },
            },
            Benchmark {
                name: "lat_ctx",
                produces: "Table 10 / Figure 2",
                category: Category::Latency,
                runner: |h, c| {
                    let r = suite::measure_ctx(h, c, "host");
                    format!("2p/0K {:.1}us, 8p/32K {:.1}us", r.p2_0k, r.p8_32k)
                },
            },
            Benchmark {
                name: "lat_pipe",
                produces: "Table 11",
                category: Category::Latency,
                runner: |h, c| {
                    format!("{:.1}us", suite::measure_pipe_lat(h, c, "host").pipe_us)
                },
            },
            Benchmark {
                name: "lat_tcp_rpc",
                produces: "Table 12",
                category: Category::Latency,
                runner: |h, c| {
                    let r = suite::measure_tcp_rpc(h, c, "host");
                    format!("TCP {:.1}us, RPC/TCP {:.1}us", r.tcp_us, r.rpc_tcp_us)
                },
            },
            Benchmark {
                name: "lat_udp_rpc",
                produces: "Table 13",
                category: Category::Latency,
                runner: |h, c| {
                    let r = suite::measure_udp_rpc(h, c, "host");
                    format!("UDP {:.1}us, RPC/UDP {:.1}us", r.udp_us, r.rpc_udp_us)
                },
            },
            Benchmark {
                name: "lat_connect",
                produces: "Table 15",
                category: Category::Latency,
                runner: |_, c| format!("{:.1}us", suite::measure_connect(c, "host").connect_us),
            },
            Benchmark {
                name: "lat_fs",
                produces: "Table 16",
                category: Category::Latency,
                runner: |_, c| {
                    let r = suite::measure_fs_lat(c, "host");
                    format!("create {:.1}us, delete {:.1}us", r.create_us, r.delete_us)
                },
            },
            Benchmark {
                name: "lat_disk",
                produces: "Table 17",
                category: Category::Latency,
                runner: |h, c| format!("{:.1}us", suite::measure_disk(h, c, "host").overhead_us),
            },
            // Extensions: the paper's §7 future-work items and the §1
            // aliasing pathology, runnable like any other benchmark.
            Benchmark {
                name: "bw_unix",
                produces: "extension (later lmbench bw_unix)",
                category: Category::Bandwidth,
                runner: |_, c| {
                    let bw = lmb_ipc::measure_unix_bw(
                        c.stream_total,
                        lmb_ipc::PIPE_CHUNK,
                        c.options.repetitions.min(3),
                        lmb_timing::SummaryPolicy::Last,
                    );
                    format!("{bw}")
                },
            },
            Benchmark {
                name: "lat_mem_dirty",
                produces: "extension (paper \u{a7}7 dirty-read latency)",
                category: Category::Latency,
                runner: |h, c| {
                    let clean = lmb_mem::lat::measure_point(
                        h,
                        c.sweep_max,
                        64,
                        lmb_mem::ChasePattern::Random,
                    );
                    let dirty = lmb_mem::measure_dirty_point(
                        h,
                        c.sweep_max,
                        64,
                        lmb_mem::ChasePattern::Random,
                    );
                    format!(
                        "clean {:.1} ns/load, dirty {:.1} ns/load",
                        clean.ns_per_load, dirty.ns_per_load
                    )
                },
            },
            Benchmark {
                name: "lat_mp_c2c",
                produces: "extension (paper \u{a7}7 MP cache-to-cache)",
                category: Category::Latency,
                runner: |_, _| {
                    format!(
                        "line transfer {}, c2c bandwidth {}",
                        lmb_mem::measure_line_pingpong(2000, 3),
                        lmb_mem::measure_cache_to_cache_bw(256 << 10, 8)
                    )
                },
            },
            Benchmark {
                name: "lat_poll",
                produces: "extension (later lmbench lat_select)",
                category: Category::Latency,
                runner: |h, _| {
                    let few = lmb_proc::measure_poll(h, 8).latency;
                    let many = lmb_proc::measure_poll(h, 1024).latency;
                    format!("8 fds {few}, 1024 fds {many}")
                },
            },
            Benchmark {
                name: "lat_mlp",
                produces: "extension (\u{a7}6.1 load-in-a-vacuum vs back-to-back)",
                category: Category::Latency,
                runner: |h, c| {
                    let pts = lmb_mem::mlp::sweep(h, 4, c.sweep_max, 64);
                    format!(
                        "1 chain {:.1} ns, 4 chains {:.1} ns (MLP {:.1}x)",
                        pts[0].ns_per_load,
                        pts[3].ns_per_load,
                        lmb_mem::mlp::effective_mlp(&pts)
                    )
                },
            },
            Benchmark {
                name: "lat_alias",
                produces: "extension (paper \u{a7}1 cache-aliasing check)",
                category: Category::Latency,
                runner: |h, _| {
                    let r = lmb_mem::measure_alias(h, 512, 256 << 10);
                    format!(
                        "packed {:.1} ns, aliased {:.1} ns ({:.1}x)",
                        r.compact_ns,
                        r.aliased_ns,
                        r.slowdown()
                    )
                },
            },
        ];
        Self { benchmarks }
    }

    /// All benchmarks.
    pub fn all(&self) -> &[Benchmark] {
        &self.benchmarks
    }

    /// Finds one by name.
    pub fn find(&self, name: &str) -> Option<&Benchmark> {
        self.benchmarks.iter().find(|b| b.name == name)
    }

    /// Benchmark names, registry order.
    pub fn names(&self) -> Vec<&'static str> {
        self.benchmarks.iter().map(|b| b.name).collect()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_both_categories() {
        let r = Registry::standard();
        assert!(r.all().iter().any(|b| b.category == Category::Bandwidth));
        assert!(r.all().iter().any(|b| b.category == Category::Latency));
        assert!(r.all().len() >= 14);
    }

    #[test]
    fn names_are_unique() {
        let names = Registry::standard().names();
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), names.len());
    }

    #[test]
    fn find_works_and_misses_cleanly() {
        let r = Registry::standard();
        assert!(r.find("lat_syscall").is_some());
        assert!(r.find("lat_nonexistent").is_none());
    }

    #[test]
    fn every_table_except_identity_ones_is_produced() {
        let r = Registry::standard();
        let produced: String = r
            .all()
            .iter()
            .map(|b| b.produces)
            .collect::<Vec<_>>()
            .join(" ");
        // Tables 1 (identity), 4 and 14 (composed from other measurements)
        // have no standalone benchmark; everything else must appear.
        for t in [2, 3, 5, 6, 7, 8, 9, 10, 11, 12, 13, 15, 16, 17] {
            assert!(produced.contains(&format!("Table {t}")), "Table {t} unproduced");
        }
    }

    #[test]
    fn a_cheap_benchmark_runs_end_to_end() {
        let r = Registry::standard();
        let h = Harness::new(lmb_timing::Options::quick());
        let out = r
            .find("lat_syscall")
            .unwrap()
            .run(&h, &SuiteConfig::quick());
        assert!(out.contains("us"), "{out}");
    }
}
