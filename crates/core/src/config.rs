//! Suite configuration: the paper's sizing rules as tunable defaults.

use lmb_timing::Options;

/// How much of each benchmark to run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SuiteConfig {
    /// Harness options (warm-up, repetitions, summary policy).
    pub options: Options,
    /// Bytes per side of the bcopy buffers (paper: 8 MB, auto-resized).
    pub copy_bytes: usize,
    /// Scratch file size for the re-read benchmarks (paper: 8 MB).
    pub file_bytes: usize,
    /// Largest array in the memory-latency sweep (paper: 8 MB+).
    pub sweep_max: usize,
    /// Total bytes streamed by the pipe/TCP bandwidth runs (paper: 50 MB).
    pub stream_total: usize,
    /// Token laps per context-switch repetition (paper: 2000 passes).
    pub ctx_passes: usize,
    /// Files for the create/delete benchmark (paper: 1000).
    pub fs_files: usize,
    /// Round trips per latency repetition.
    pub round_trips: usize,
    /// Connect attempts (paper: best of 20).
    pub connect_attempts: u32,
    /// Simulated-disk commands for the Table 17 run.
    pub disk_ops: u64,
}

impl SuiteConfig {
    /// Paper-scale parameters — minutes of wall time.
    pub fn paper() -> Self {
        Self {
            options: Options::paper(),
            copy_bytes: 8 << 20,
            file_bytes: 8 << 20,
            sweep_max: 32 << 20,
            stream_total: 50 << 20,
            ctx_passes: 2000,
            fs_files: 1000,
            round_trips: 1000,
            connect_attempts: 20,
            disk_ops: 8192,
        }
    }

    /// Small parameters for smoke tests and CI — a few seconds.
    pub fn quick() -> Self {
        Self {
            options: Options::quick().with_repetitions(2),
            copy_bytes: 1 << 20,
            file_bytes: 1 << 20,
            sweep_max: 4 << 20,
            stream_total: 4 << 20,
            ctx_passes: 100,
            fs_files: 100,
            round_trips: 100,
            connect_attempts: 5,
            disk_ops: 1024,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical parameters (zero sizes/counts).
    pub fn validate(&self) {
        assert!(self.copy_bytes >= 4096, "copy buffer too small");
        assert!(self.file_bytes >= 4096, "file too small");
        assert!(self.sweep_max >= 64 << 10, "sweep too small");
        assert!(self.stream_total >= 1 << 20, "stream too small");
        assert!(self.ctx_passes > 0, "no ctx passes");
        assert!(self.fs_files > 0, "no files");
        assert!(self.round_trips > 0, "no round trips");
        assert!(self.connect_attempts > 0, "no connects");
        assert!(self.disk_ops > 0, "no disk ops");
    }
}

impl Default for SuiteConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_presets_validate() {
        SuiteConfig::paper().validate();
        SuiteConfig::quick().validate();
    }

    #[test]
    fn paper_matches_paper_parameters() {
        let c = SuiteConfig::paper();
        assert_eq!(c.copy_bytes, 8 << 20);
        assert_eq!(c.stream_total, 50 << 20);
        assert_eq!(c.ctx_passes, 2000);
        assert_eq!(c.fs_files, 1000);
        assert_eq!(c.connect_attempts, 20);
    }

    #[test]
    #[should_panic(expected = "copy buffer too small")]
    fn bad_config_caught() {
        let mut c = SuiteConfig::quick();
        c.copy_bytes = 16;
        c.validate();
    }
}
