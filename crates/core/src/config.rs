//! Suite configuration: the paper's sizing rules as tunable defaults.

use crate::error::SuiteError;
use lmb_timing::Options;
use std::time::Duration;

/// When the engine re-runs a noisy benchmark.
///
/// The paper compensates for run-to-run variability by repeating and
/// summarizing (§3.4); the engine adds one more layer on top: if a
/// benchmark's samples disperse beyond `cv_threshold`, it is re-run from
/// scratch, up to `max_attempts` total tries, and the quietest attempt's
/// result is kept implicitly (later attempts replace earlier ones).
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct RetryPolicy {
    /// Total tries per benchmark (1 = never retry).
    pub max_attempts: u32,
    /// Coefficient-of-variation ceiling above which a retry triggers.
    pub cv_threshold: f64,
}

impl RetryPolicy {
    /// Never retry.
    #[must_use]
    pub fn never() -> Self {
        RetryPolicy {
            max_attempts: 1,
            cv_threshold: f64::INFINITY,
        }
    }

    /// One retry when samples spread more than 25% around their mean —
    /// the paper's observation that context-switch style numbers vary "by
    /// up to 30%" motivates the ballpark.
    #[must_use]
    pub fn on_noise() -> Self {
        RetryPolicy {
            max_attempts: 2,
            cv_threshold: 0.25,
        }
    }
}

/// How much the CLI narrates to stderr.
///
/// Precedence is fixed: `--quiet` beats `--verbose` beats the default, so
/// scripts composing flag sets get deterministic output whatever order the
/// flags arrive in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Verbosity {
    /// Nothing but errors (and stdout data).
    Quiet,
    /// Suite summary and anything abnormal.
    Normal,
    /// Live scheduling, probes, calibration and per-metric narration.
    Verbose,
}

impl Verbosity {
    /// Resolves the `--quiet`/`--verbose` flag pair; quiet wins.
    #[must_use]
    pub fn from_flags(quiet: bool, verbose: bool) -> Self {
        if quiet {
            Verbosity::Quiet
        } else if verbose {
            Verbosity::Verbose
        } else {
            Verbosity::Normal
        }
    }
}

/// How much of each benchmark to run.
///
/// Construct via [`SuiteConfig::paper`] or [`SuiteConfig::quick`] and
/// refine with the `with_*` builders; the struct is `#[non_exhaustive]`
/// so engine knobs can be added without breaking downstream constructors.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct SuiteConfig {
    /// Harness options (warm-up, repetitions, summary policy).
    pub options: Options,
    /// Bytes per side of the bcopy buffers (paper: 8 MB, auto-resized).
    pub copy_bytes: usize,
    /// Scratch file size for the re-read benchmarks (paper: 8 MB).
    pub file_bytes: usize,
    /// Largest array in the memory-latency sweep (paper: 8 MB+).
    pub sweep_max: usize,
    /// Total bytes streamed by the pipe/TCP bandwidth runs (paper: 50 MB).
    pub stream_total: usize,
    /// Token laps per context-switch repetition (paper: 2000 passes).
    pub ctx_passes: usize,
    /// Files for the create/delete benchmark (paper: 1000).
    pub fs_files: usize,
    /// Round trips per latency repetition.
    pub round_trips: usize,
    /// Connect attempts (paper: best of 20).
    pub connect_attempts: u32,
    /// Simulated-disk commands for the Table 17 run.
    pub disk_ops: u64,
    /// Wall-clock budget per benchmark before the engine declares it hung.
    pub bench_timeout: Duration,
    /// When to re-run a noisy benchmark.
    pub retry: RetryPolicy,
    /// Worker threads for non-exclusive benchmarks (1 = fully serial).
    pub workers: usize,
    /// Seed for a fully virtual run: `Some(seed)` swaps the real clock and
    /// real benchmark bodies for a seeded [`lmb_timing::SimClock`] plus
    /// scripted cost models, so an entire suite executes deterministically
    /// in milliseconds. `None` (the default) runs against the hardware.
    pub sim_seed: Option<u64>,
}

impl SuiteConfig {
    /// Paper-scale parameters — minutes of wall time. Fully serial
    /// (`workers: 1`): concurrent benchmarks perturb each other's numbers,
    /// and at paper scale fidelity beats wall clock.
    pub fn paper() -> Self {
        Self {
            options: Options::paper(),
            copy_bytes: 8 << 20,
            file_bytes: 8 << 20,
            sweep_max: 32 << 20,
            stream_total: 50 << 20,
            ctx_passes: 2000,
            fs_files: 1000,
            round_trips: 1000,
            connect_attempts: 20,
            disk_ops: 8192,
            bench_timeout: Duration::from_secs(900),
            retry: RetryPolicy::on_noise(),
            workers: 1,
            sim_seed: None,
        }
    }

    /// Small parameters for smoke tests and CI — a few seconds. Runs
    /// non-exclusive benchmarks two at a time.
    pub fn quick() -> Self {
        Self {
            options: Options::quick().with_repetitions(2),
            copy_bytes: 1 << 20,
            file_bytes: 1 << 20,
            sweep_max: 4 << 20,
            stream_total: 4 << 20,
            ctx_passes: 100,
            fs_files: 100,
            round_trips: 100,
            connect_attempts: 5,
            disk_ops: 1024,
            bench_timeout: Duration::from_secs(120),
            retry: RetryPolicy::never(),
            workers: 2,
            sim_seed: None,
        }
    }

    /// Replaces the harness options.
    #[must_use]
    pub fn with_options(mut self, options: Options) -> Self {
        self.options = options;
        self
    }

    /// Replaces the harness summary policy.
    #[must_use]
    pub fn with_policy(mut self, policy: lmb_timing::SummaryPolicy) -> Self {
        self.options = self.options.with_policy(policy);
        self
    }

    /// Replaces the harness repetition count.
    #[must_use]
    pub fn with_repetitions(mut self, repetitions: u32) -> Self {
        self.options = self.options.with_repetitions(repetitions);
        self
    }

    /// Replaces the per-benchmark wall-clock budget.
    #[must_use]
    pub fn with_timeout(mut self, bench_timeout: Duration) -> Self {
        self.bench_timeout = bench_timeout;
        self
    }

    /// Replaces the retry policy.
    #[must_use]
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Replaces the worker-pool width for non-exclusive benchmarks.
    #[must_use]
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Requests a fully virtual run seeded with `seed` (see
    /// [`SuiteConfig::sim_seed`]).
    #[must_use]
    pub fn with_sim_seed(mut self, seed: u64) -> Self {
        self.sim_seed = Some(seed);
        self
    }

    /// Validates internal consistency; `Err` names the violated rule.
    pub fn validate(&self) -> Result<(), SuiteError> {
        fn rule(ok: bool, what: &'static str) -> Result<(), SuiteError> {
            if ok {
                Ok(())
            } else {
                Err(SuiteError::InvalidConfig { what })
            }
        }
        rule(self.copy_bytes >= 4096, "copy buffer too small")?;
        rule(self.file_bytes >= 4096, "file too small")?;
        rule(self.sweep_max >= 64 << 10, "sweep too small")?;
        rule(self.stream_total >= 1 << 20, "stream too small")?;
        rule(self.ctx_passes > 0, "no ctx passes")?;
        rule(self.fs_files > 0, "no files")?;
        rule(self.round_trips > 0, "no round trips")?;
        rule(self.connect_attempts > 0, "no connects")?;
        rule(self.disk_ops > 0, "no disk ops")?;
        rule(!self.bench_timeout.is_zero(), "zero benchmark timeout")?;
        rule(self.retry.max_attempts > 0, "zero retry attempts")?;
        rule(self.workers > 0, "zero workers")?;
        Ok(())
    }
}

impl Default for SuiteConfig {
    fn default() -> Self {
        Self::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_beats_verbose_whatever_the_combination() {
        assert_eq!(Verbosity::from_flags(false, false), Verbosity::Normal);
        assert_eq!(Verbosity::from_flags(false, true), Verbosity::Verbose);
        assert_eq!(Verbosity::from_flags(true, false), Verbosity::Quiet);
        assert_eq!(Verbosity::from_flags(true, true), Verbosity::Quiet);
        assert!(Verbosity::Quiet < Verbosity::Normal);
        assert!(Verbosity::Normal < Verbosity::Verbose);
    }

    #[test]
    fn both_presets_validate() {
        SuiteConfig::paper().validate().unwrap();
        SuiteConfig::quick().validate().unwrap();
    }

    #[test]
    fn paper_matches_paper_parameters() {
        let c = SuiteConfig::paper();
        assert_eq!(c.copy_bytes, 8 << 20);
        assert_eq!(c.stream_total, 50 << 20);
        assert_eq!(c.ctx_passes, 2000);
        assert_eq!(c.fs_files, 1000);
        assert_eq!(c.connect_attempts, 20);
    }

    #[test]
    fn bad_config_is_an_error_not_a_panic() {
        let mut c = SuiteConfig::quick();
        c.copy_bytes = 16;
        assert_eq!(
            c.validate(),
            Err(SuiteError::InvalidConfig {
                what: "copy buffer too small"
            })
        );
    }

    #[test]
    fn builders_chain() {
        let c = SuiteConfig::quick()
            .with_timeout(Duration::from_secs(7))
            .with_repetitions(5)
            .with_retry(RetryPolicy::on_noise())
            .with_workers(3);
        assert_eq!(c.bench_timeout, Duration::from_secs(7));
        assert_eq!(c.options.repetitions, 5);
        assert_eq!(c.retry.max_attempts, 2);
        assert_eq!(c.workers, 3);
        c.validate().unwrap();
    }

    #[test]
    fn zero_timeout_rejected() {
        let c = SuiteConfig::quick().with_timeout(Duration::ZERO);
        assert!(matches!(
            c.validate(),
            Err(SuiteError::InvalidConfig {
                what: "zero benchmark timeout"
            })
        ));
    }
}
