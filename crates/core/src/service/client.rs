//! The fleet-side client: pushes reports and runs queries against a
//! results daemon, retrying transport failures the way the engine
//! retries noisy samples — bounded attempts, growing intervals, then an
//! honest error.

use super::proto::{
    self, DiffReply, DiffRequest, HistoryReply, HistoryRequest, PushReply, PushRequest, StatsReply,
    StatsRequest, TableReply, TableRequest,
};
use bytes::Bytes;
use lmb_results::Baseline;
use lmb_rpc::{
    CallError, RpcClient, RESULTS_PROC_DIFF, RESULTS_PROC_HISTORY, RESULTS_PROC_PUSH,
    RESULTS_PROC_STATS, RESULTS_PROC_TABLE, RESULTS_PROGRAM, RESULTS_VERSION,
};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// How many times a call is attempted before its transport error is
/// surfaced. Mirrors the engine's [`crate::RetryPolicy`] discipline:
/// retries are bounded and visible, never silent and unbounded.
const MAX_ATTEMPTS: u32 = 4;

/// Backoff before attempt `n` (1-based retry): 50ms, 100ms, 200ms.
const BACKOFF_BASE_MS: u64 = 50;

/// A connection to a results daemon, lazily established and re-dialed
/// after transport errors.
pub struct ReportClient {
    addr: String,
    conn: Option<RpcClient>,
}

impl ReportClient {
    /// Creates a client for `addr` (`host:port`). No connection is made
    /// until the first call, so constructing one cannot fail.
    pub fn new(addr: impl Into<String>) -> ReportClient {
        ReportClient {
            addr: addr.into(),
            conn: None,
        }
    }

    /// The address this client dials.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Pushes one entry into its host's shard; returns the daemon's ack.
    pub fn push(&mut self, entry: Baseline) -> Result<PushReply, CallError> {
        self.call_json(RESULTS_PROC_PUSH, &PushRequest { entry })
    }

    /// Asks for the newest-vs-previous diff of a host's series.
    pub fn diff(&mut self, fingerprint: &str) -> Result<DiffReply, CallError> {
        self.call_json(
            RESULTS_PROC_DIFF,
            &DiffRequest {
                fingerprint: fingerprint.into(),
            },
        )
    }

    /// Asks for one metric's value across a host's series.
    pub fn history(
        &mut self,
        fingerprint: &str,
        bench: &str,
        metric: &str,
    ) -> Result<HistoryReply, CallError> {
        self.call_json(
            RESULTS_PROC_HISTORY,
            &HistoryRequest {
                fingerprint: fingerprint.into(),
                bench: bench.into(),
                metric: metric.into(),
            },
        )
    }

    /// Asks for the paper tables regenerated from a host's newest run.
    pub fn table(&mut self, fingerprint: &str) -> Result<TableReply, CallError> {
        self.call_json(
            RESULTS_PROC_TABLE,
            &TableRequest {
                fingerprint: fingerprint.into(),
            },
        )
    }

    /// Asks for the daemon's operational statistics: per-procedure request
    /// accounting plus the segment store's ingest-derived totals.
    pub fn stats(&mut self) -> Result<StatsReply, CallError> {
        self.call_json(RESULTS_PROC_STATS, &StatsRequest::default())
    }

    /// Encodes `request`, calls `procedure`, decodes the reply. Transport
    /// errors drop the cached connection, back off, re-dial, and retry up
    /// to [`MAX_ATTEMPTS`]; RPC faults and decode failures are final (the
    /// daemon answered — asking again would get the same answer).
    fn call_json<Req: Serialize, Reply: Deserialize>(
        &mut self,
        procedure: u32,
        request: &Req,
    ) -> Result<Reply, CallError> {
        let wire = proto::to_wire(request);
        let reply = self.call_retrying(procedure, wire)?;
        proto::from_wire(reply).map_err(|_| CallError::BadReply)
    }

    fn call_retrying(&mut self, procedure: u32, args: Bytes) -> Result<Bytes, CallError> {
        let mut last = None;
        for attempt in 0..MAX_ATTEMPTS {
            if attempt > 0 {
                std::thread::sleep(Duration::from_millis(BACKOFF_BASE_MS << (attempt - 1)));
            }
            let conn = match self.connection() {
                Ok(conn) => conn,
                Err(err) => {
                    last = Some(err);
                    continue;
                }
            };
            match conn.call(procedure, args.clone()) {
                Ok(reply) => return Ok(reply),
                Err(CallError::Io(err)) => {
                    // The connection is in an unknown state; dial fresh.
                    self.conn = None;
                    last = Some(CallError::Io(err));
                }
                Err(final_err) => return Err(final_err),
            }
        }
        Err(last.unwrap_or(CallError::BadReply))
    }

    fn connection(&mut self) -> Result<&mut RpcClient, CallError> {
        if self.conn.is_none() {
            self.conn = Some(RpcClient::connect_tcp(
                self.addr.as_str(),
                RESULTS_PROGRAM,
                RESULTS_VERSION,
            )?);
        }
        Ok(self.conn.as_mut().expect("connection just established"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmb_rpc::{read_record, write_record, RpcMessage};
    use std::io::Write;
    use std::net::TcpListener;

    #[test]
    fn unreachable_daemon_fails_after_bounded_attempts() {
        // A listener that is bound then dropped: the port refuses.
        let port = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let mut client = ReportClient::new(format!("127.0.0.1:{port}"));
        match client.diff("fp-a") {
            Err(CallError::Io(_)) => {}
            other => panic!("expected Io after retries, got {other:?}"),
        }
    }

    #[test]
    fn client_survives_a_dropped_first_connection() {
        // A daemon stand-in that accepts, drops the first connection cold,
        // then serves the second properly — the client must reconnect and
        // succeed without the caller noticing.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let port = listener.local_addr().unwrap().port();
        let server = std::thread::spawn(move || {
            let (conn, _) = listener.accept().unwrap();
            drop(conn); // First connection torn down before any reply.
            let (mut conn, _) = listener.accept().unwrap();
            let call = RpcMessage::decode(read_record(&mut conn).unwrap()).unwrap();
            let xid = call.xid;
            let args = match call.body {
                lmb_rpc::Body::Call(c) => c.args,
                _ => panic!("expected a call"),
            };
            let req: DiffRequest = proto::from_wire(args).unwrap();
            assert_eq!(req.fingerprint, "fp-a");
            let reply = RpcMessage::reply_success(xid, proto::to_wire(&proto::diff_reply(&[])));
            write_record(&mut conn, &reply.encode()).unwrap();
            conn.flush().unwrap();
        });

        let mut client = ReportClient::new(format!("127.0.0.1:{port}"));
        let reply = client.diff("fp-a").unwrap();
        assert!(!reply.found, "empty shard diff from the stand-in");
        server.join().unwrap();
    }
}
