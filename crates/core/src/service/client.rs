//! The fleet-side client: pushes reports and runs queries against a
//! results daemon, retrying transport failures the way the engine
//! retries noisy samples — bounded attempts, growing intervals, then an
//! honest error.

use super::proto::{
    self, DiffReply, DiffRequest, HistoryReply, HistoryRequest, PushReply, PushRequest, StatsReply,
    StatsRequest, TableReply, TableRequest,
};
use crate::engine::EngineClock;
use bytes::Bytes;
use lmb_results::Baseline;
use lmb_rpc::{
    CallError, RpcClient, RESULTS_PROC_DIFF, RESULTS_PROC_HISTORY, RESULTS_PROC_PUSH,
    RESULTS_PROC_STATS, RESULTS_PROC_TABLE, RESULTS_PROGRAM, RESULTS_VERSION,
};
use lmb_timing::TimeSource;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// How many times a call is attempted before its transport error is
/// surfaced. Mirrors the engine's [`crate::RetryPolicy`] discipline:
/// retries are bounded and visible, never silent and unbounded.
const MAX_ATTEMPTS: u32 = 4;

/// Backoff before attempt `n` (1-based retry): 50ms, 100ms, 200ms.
const BACKOFF_BASE_MS: u64 = 50;

/// Ceiling on any single backoff interval. The exponential schedule is
/// derived from the attempt number, so a raised [`MAX_ATTEMPTS`] must
/// widen the retry window, not the intervals without bound.
const BACKOFF_CAP_MS: u64 = 2_000;

/// Backoff before 1-based retry `attempt`: exponential from
/// [`BACKOFF_BASE_MS`], with the shift exponent clamped (an unclamped
/// `<< (attempt - 1)` overflows — a debug panic or a wrapped, effectively
/// random sleep — as soon as attempts exceed 64) and the interval capped
/// at [`BACKOFF_CAP_MS`].
fn backoff_ms(attempt: u32) -> u64 {
    let shift = (attempt - 1).min(32);
    (BACKOFF_BASE_MS << shift).min(BACKOFF_CAP_MS)
}

/// A connection to a results daemon, lazily established and re-dialed
/// after transport errors.
pub struct ReportClient {
    addr: String,
    conn: Option<RpcClient>,
    clock: EngineClock,
}

impl ReportClient {
    /// Creates a client for `addr` (`host:port`). No connection is made
    /// until the first call, so constructing one cannot fail.
    pub fn new(addr: impl Into<String>) -> ReportClient {
        ReportClient {
            addr: addr.into(),
            conn: None,
            clock: EngineClock::default(),
        }
    }

    /// Replaces the clock that paces retry backoff (virtual runs pass
    /// [`EngineClock::Sim`] so the retry schedule is testable without
    /// real sleeps).
    #[must_use]
    pub fn with_clock(mut self, clock: EngineClock) -> Self {
        self.clock = clock;
        self
    }

    /// The address this client dials.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Pushes one entry into its host's shard; returns the daemon's ack.
    pub fn push(&mut self, entry: Baseline) -> Result<PushReply, CallError> {
        self.call_json(RESULTS_PROC_PUSH, &PushRequest { entry })
    }

    /// Asks for the newest-vs-previous diff of a host's series.
    pub fn diff(&mut self, fingerprint: &str) -> Result<DiffReply, CallError> {
        self.call_json(
            RESULTS_PROC_DIFF,
            &DiffRequest {
                fingerprint: fingerprint.into(),
            },
        )
    }

    /// Asks for one metric's value across a host's series.
    pub fn history(
        &mut self,
        fingerprint: &str,
        bench: &str,
        metric: &str,
    ) -> Result<HistoryReply, CallError> {
        self.call_json(
            RESULTS_PROC_HISTORY,
            &HistoryRequest {
                fingerprint: fingerprint.into(),
                bench: bench.into(),
                metric: metric.into(),
            },
        )
    }

    /// Asks for the paper tables regenerated from a host's newest run.
    pub fn table(&mut self, fingerprint: &str) -> Result<TableReply, CallError> {
        self.call_json(
            RESULTS_PROC_TABLE,
            &TableRequest {
                fingerprint: fingerprint.into(),
            },
        )
    }

    /// Asks for the daemon's operational statistics: per-procedure request
    /// accounting plus the segment store's ingest-derived totals.
    pub fn stats(&mut self) -> Result<StatsReply, CallError> {
        self.call_json(RESULTS_PROC_STATS, &StatsRequest::default())
    }

    /// Encodes `request`, calls `procedure`, decodes the reply. Transport
    /// errors drop the cached connection, back off, re-dial, and retry up
    /// to [`MAX_ATTEMPTS`]; RPC faults and decode failures are final (the
    /// daemon answered — asking again would get the same answer).
    fn call_json<Req: Serialize, Reply: Deserialize>(
        &mut self,
        procedure: u32,
        request: &Req,
    ) -> Result<Reply, CallError> {
        let wire = proto::to_wire(request);
        let reply = self.call_retrying(procedure, wire)?;
        proto::from_wire(reply).map_err(|_| CallError::BadReply)
    }

    fn call_retrying(&mut self, procedure: u32, args: Bytes) -> Result<Bytes, CallError> {
        let mut last = None;
        for attempt in 0..MAX_ATTEMPTS {
            if attempt > 0 {
                self.clock.sleep(Duration::from_millis(backoff_ms(attempt)));
            }
            let conn = match self.connection() {
                Ok(conn) => conn,
                Err(err) => {
                    last = Some(err);
                    continue;
                }
            };
            match conn.call(procedure, args.clone()) {
                Ok(reply) => return Ok(reply),
                Err(CallError::Io(err)) => {
                    // The connection is in an unknown state; dial fresh.
                    self.conn = None;
                    last = Some(CallError::Io(err));
                }
                Err(final_err) => return Err(final_err),
            }
        }
        Err(last.unwrap_or(CallError::BadReply))
    }

    fn connection(&mut self) -> Result<&mut RpcClient, CallError> {
        if self.conn.is_none() {
            self.conn = Some(RpcClient::connect_tcp(
                self.addr.as_str(),
                RESULTS_PROGRAM,
                RESULTS_VERSION,
            )?);
        }
        Ok(self.conn.as_mut().expect("connection just established"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmb_rpc::{read_record, write_record, RpcMessage};
    use std::io::Write;
    use std::net::TcpListener;

    #[test]
    fn backoff_exponent_is_clamped_and_capped() {
        assert_eq!(backoff_ms(1), 50);
        assert_eq!(backoff_ms(2), 100);
        assert_eq!(backoff_ms(3), 200);
        assert_eq!(backoff_ms(7), BACKOFF_CAP_MS);
        // Before the clamp this shifted by 199 — an overflow panic in
        // debug builds, a wrapped sleep in release builds.
        assert_eq!(backoff_ms(200), BACKOFF_CAP_MS);
    }

    #[test]
    fn retry_schedule_is_exact_under_virtual_time() {
        // A port that refuses: every attempt fails at dial time, so the
        // only time that passes on a virtual clock is the backoff itself.
        let port = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let sim = lmb_timing::SimClock::new(7);
        let mut client = ReportClient::new(format!("127.0.0.1:{port}"))
            .with_clock(EngineClock::Sim(sim.clone()));
        assert!(client.diff("fp-a").is_err());
        // 4 attempts sleep 50 + 100 + 200 ms between them, exactly.
        assert_eq!(sim.true_now_ns(), 350.0 * 1e6);
    }

    #[test]
    fn unreachable_daemon_fails_after_bounded_attempts() {
        // A listener that is bound then dropped: the port refuses.
        let port = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().port()
        };
        let mut client = ReportClient::new(format!("127.0.0.1:{port}"));
        match client.diff("fp-a") {
            Err(CallError::Io(_)) => {}
            other => panic!("expected Io after retries, got {other:?}"),
        }
    }

    #[test]
    fn client_survives_a_dropped_first_connection() {
        // A daemon stand-in that accepts, drops the first connection cold,
        // then serves the second properly — the client must reconnect and
        // succeed without the caller noticing.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let port = listener.local_addr().unwrap().port();
        let server = std::thread::spawn(move || {
            let (conn, _) = listener.accept().unwrap();
            drop(conn); // First connection torn down before any reply.
            let (mut conn, _) = listener.accept().unwrap();
            let call = RpcMessage::decode(read_record(&mut conn).unwrap()).unwrap();
            let xid = call.xid;
            let args = match call.body {
                lmb_rpc::Body::Call(c) => c.args,
                _ => panic!("expected a call"),
            };
            let req: DiffRequest = proto::from_wire(args).unwrap();
            assert_eq!(req.fingerprint, "fp-a");
            let reply = RpcMessage::reply_success(xid, proto::to_wire(&proto::diff_reply(&[])));
            write_record(&mut conn, &reply.encode()).unwrap();
            conn.flush().unwrap();
        });

        let mut client = ReportClient::new(format!("127.0.0.1:{port}"));
        let reply = client.diff("fp-a").unwrap();
        assert!(!reply.found, "empty shard diff from the stand-in");
        server.join().unwrap();
    }
}
