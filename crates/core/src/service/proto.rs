//! The results-service wire protocol.
//!
//! Four procedures under [`lmb_rpc::RESULTS_PROGRAM`], carried over the
//! same Sun-RPC-style substrate the paper's Tables 12–13 measure: XDR
//! discipline, record marking, program/version/procedure dispatch. Each
//! request and reply body is one XDR string holding the type's JSON — the
//! envelope stays RFC 1057, the payload stays self-describing and carries
//! the `schema_version` the unified store stamps on everything, so a v3
//! daemon can keep reading v2 pushes the same way the store keeps reading
//! v1 files.

use bytes::Bytes;
use lmb_results::{Baseline, ReportDiff};
use lmb_rpc::{XdrDecoder, XdrEncoder};
use serde::{Deserialize, Serialize};

/// `RESULTS_PROC_PUSH`: ingest one run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PushRequest {
    /// The entry to append: fingerprint, host, capture time, report, and
    /// optionally the table payload. Its `schema_version` travels with it.
    pub entry: Baseline,
}

/// Reply to a push.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PushReply {
    /// The shard the entry landed in.
    pub fingerprint: String,
    /// 1-based position of the entry within its shard's time series.
    pub shard_seq: u64,
}

/// `RESULTS_PROC_DIFF`: noise-aware diff of a host's newest run against
/// the run before it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiffRequest {
    /// Which host's series to judge.
    pub fingerprint: String,
}

/// Reply to a diff query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiffReply {
    /// False when the shard holds fewer than two runs (nothing to judge).
    pub found: bool,
    /// Runs in the shard, for context.
    pub runs: u64,
    /// Number of significant regressions the differ flagged.
    pub regressions: u32,
    /// The rendered diff table (empty when `found` is false).
    pub text: String,
    /// The diff as JSON ([`ReportDiff::to_json`]), for `--json` callers.
    pub json: String,
}

/// `RESULTS_PROC_HISTORY`: one metric's value across a host's series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistoryRequest {
    /// Which host's series to walk.
    pub fingerprint: String,
    /// Benchmark name (`lat_syscall`, `bw_mem`, ...).
    pub bench: String,
    /// Metric label within the benchmark (may be empty — many benchmarks
    /// report a single unlabeled headline metric).
    pub metric: String,
}

/// One point of a metric's history.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistoryPoint {
    /// Capture time of the run, seconds since the Unix epoch.
    pub unix_seconds: u64,
    /// 1-based position of the run within the shard.
    pub shard_seq: u64,
    /// The metric's value in that run.
    pub value: f64,
    /// The metric's unit.
    pub unit: String,
}

/// Reply to a history query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistoryReply {
    /// False when the shard is empty (an unknown fingerprint).
    pub found: bool,
    /// The metric's value per run, oldest first. Runs where the
    /// benchmark did not produce the metric are skipped.
    pub points: Vec<HistoryPoint>,
}

/// `RESULTS_PROC_TABLE`: regenerate the paper tables from a stored run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableRequest {
    /// Which host's newest run to render.
    pub fingerprint: String,
}

/// Reply to a table query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableReply {
    /// False when the shard is empty.
    pub found: bool,
    /// The rendered tables: the full paper set when the stored entry
    /// carried a table payload, otherwise the run-report table.
    pub text: String,
}

/// `RESULTS_PROC_STATS`: the daemon's operational statistics. The request
/// carries no parameters; the field pins the reply schema the caller
/// expects (the daemon answers its own version regardless, like the
/// store's tolerant reads).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsRequest {
    /// Stats schema the client was built against.
    pub schema_version: u32,
}

impl Default for StatsRequest {
    fn default() -> StatsRequest {
        StatsRequest {
            schema_version: lmb_results::SCHEMA_VERSION,
        }
    }
}

/// One procedure's request accounting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcedureStats {
    /// Procedure name (`push`, `diff`, `history`, `table`, `stats`).
    pub procedure: String,
    /// Requests answered (including the reply that carries this row, for
    /// the `stats` procedure itself).
    pub calls: u64,
    /// Requests that failed (undecodable args or a store error).
    pub errors: u64,
    /// Request payload bytes received (XDR-encoded argument bodies).
    pub bytes_in: u64,
}

/// The segment store's ingest-derived totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct StoreStats {
    /// Shards (distinct host fingerprints) with at least one entry.
    pub hosts: u64,
    /// Stored runs across every shard.
    pub runs: u64,
    /// Sealed segment files currently on disk.
    pub segments: u64,
    /// Pending batches sealed into segments since this store opened.
    pub sealed_batches: u64,
    /// Shard compactions performed since this store opened.
    pub compactions: u64,
    /// Runs replayed from disk when this store opened.
    pub replayed_runs: u64,
}

/// Reply to a stats query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsReply {
    /// Schema version of this snapshot (the unified results schema).
    pub schema_version: u32,
    /// Per-procedure accounting, sorted by procedure name.
    pub procedures: Vec<ProcedureStats>,
    /// Store totals.
    pub store: StoreStats,
}

impl StatsReply {
    /// Renders the snapshot as a fixed-width table. Deterministic: every
    /// value derives from the request/ingest sequence, so two daemons fed
    /// the same operations render byte-identical text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = format!("results-service stats (schema v{})\n", self.schema_version);
        out.push_str(&format!(
            "{:<10} {:>8} {:>7} {:>10}\n",
            "procedure", "calls", "errors", "bytes_in"
        ));
        for p in &self.procedures {
            out.push_str(&format!(
                "{:<10} {:>8} {:>7} {:>10}\n",
                p.procedure, p.calls, p.errors, p.bytes_in
            ));
        }
        let s = &self.store;
        out.push_str(&format!(
            "store: {} host(s), {} run(s), {} segment(s), {} sealed batch(es), {} compaction(s), {} replayed\n",
            s.hosts, s.runs, s.segments, s.sealed_batches, s.compactions, s.replayed_runs
        ));
        out
    }

    /// Serializes to pretty-printed JSON (the `query stats --json`
    /// output). Deterministic by the same contract as [`render`].
    ///
    /// [`render`]: StatsReply::render
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("service types always serialize")
    }
}

/// Builds a [`StatsReply`] from per-procedure rows and store totals.
/// Deterministic by the same contract as [`diff_reply`]: no wall-clock
/// values, no ports, no process identity — only request/ingest-derived
/// counts, with rows sorted by name. Wall-clock operational state (uptime,
/// latency histograms, connection gauges) goes to the audit trace as
/// `metrics_snapshot` events instead, precisely because it can never be
/// byte-identical across daemons.
pub fn stats_reply(mut procedures: Vec<ProcedureStats>, store: StoreStats) -> StatsReply {
    procedures.sort_by(|a, b| a.procedure.cmp(&b.procedure));
    StatsReply {
        schema_version: lmb_results::SCHEMA_VERSION,
        procedures,
        store,
    }
}

/// Encodes a request or reply body: its JSON, as one XDR string.
pub fn to_wire<T: Serialize>(value: &T) -> Bytes {
    let json = serde_json::to_string(value).expect("service types always serialize");
    let mut e = XdrEncoder::new();
    e.put_string(&json);
    e.finish()
}

/// An undecodable wire body: torn XDR framing or mismatched JSON. One
/// opaque error on purpose — the RPC layer turns it into `GARBAGE_ARGS`
/// (server side) or `BadReply` (client side), neither of which carries
/// detail to a peer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireError;

impl From<WireError> for () {
    fn from(_: WireError) {}
}

/// Decodes a request or reply body produced by [`to_wire`].
pub fn from_wire<T: Deserialize>(bytes: Bytes) -> Result<T, WireError> {
    let mut d = XdrDecoder::new(bytes);
    let json = d.get_string().map_err(|_| WireError)?;
    serde_json::from_str(&json).map_err(|_| WireError)
}

/// Builds the diff half of [`DiffReply`] from a shard's two newest runs.
/// Shared by the daemon and by tests asserting determinism: everything in
/// the reply derives from stored entries alone — no daemon-side clock, no
/// global counters — so two daemons fed the same pushes answer
/// byte-identically.
pub fn diff_reply(history: &[Baseline]) -> DiffReply {
    let runs = history.len() as u64;
    let [.., previous, latest] = history else {
        return DiffReply {
            found: false,
            runs,
            regressions: 0,
            text: String::new(),
            json: String::new(),
        };
    };
    let diff = ReportDiff::between(&previous.report, &latest.report);
    DiffReply {
        found: true,
        runs,
        regressions: diff.regressions().count() as u32,
        text: diff.render(),
        json: diff.to_json(),
    }
}

/// Builds a [`HistoryReply`] from a shard's full series.
pub fn history_reply(history: &[Baseline], bench: &str, metric: &str) -> HistoryReply {
    let points = history
        .iter()
        .enumerate()
        .filter_map(|(idx, entry)| {
            let record = entry.report.find(bench)?;
            let m = record.metrics.iter().find(|m| m.label == metric)?;
            Some(HistoryPoint {
                unix_seconds: entry.unix_seconds,
                shard_seq: idx as u64 + 1,
                value: m.value,
                unit: m.unit.clone(),
            })
        })
        .collect();
    HistoryReply {
        found: !history.is_empty(),
        points,
    }
}

/// Builds a [`TableReply`] from a shard's newest run.
pub fn table_reply(latest: Option<&Baseline>) -> TableReply {
    match latest {
        None => TableReply {
            found: false,
            text: String::new(),
        },
        Some(entry) => TableReply {
            found: true,
            text: match &entry.run {
                Some(run) => crate::report::full_report(Some(run)),
                None => entry.report.render(),
            },
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmb_results::runreport::{BenchRecord, BenchStatus, MetricValue, RunReport};

    fn entry(seconds: u64, bench: &str, value: f64) -> Baseline {
        let mut b = Baseline::now(
            "host-0000000000000001",
            "host",
            RunReport {
                records: vec![BenchRecord {
                    name: bench.into(),
                    produces: "Table 7".into(),
                    status: BenchStatus::Ok,
                    attempts: 1,
                    wall_ms: 1.0,
                    exclusive: false,
                    provenance: None,
                    rusage: None,
                    counters: None,
                    metrics: vec![MetricValue {
                        label: String::new(),
                        value,
                        unit: "us".into(),
                    }],
                    span: None,
                }],
                ..Default::default()
            },
        );
        b.unix_seconds = seconds;
        b
    }

    #[test]
    fn wire_round_trips_every_message() {
        let push = PushRequest {
            entry: entry(100, "lat_syscall", 4.0),
        };
        let back: PushRequest = from_wire(to_wire(&push)).unwrap();
        assert_eq!(back, push);

        let req = HistoryRequest {
            fingerprint: "host-1".into(),
            bench: "lat_syscall".into(),
            metric: String::new(),
        };
        let back: HistoryRequest = from_wire(to_wire(&req)).unwrap();
        assert_eq!(back, req);
    }

    #[test]
    fn garbage_wire_bytes_are_an_error_not_a_panic() {
        assert!(from_wire::<PushRequest>(Bytes::from_static(b"\x00\x00\x00\x04oops")).is_err());
        assert!(from_wire::<PushRequest>(Bytes::from_static(b"xx")).is_err());
    }

    #[test]
    fn diff_reply_needs_two_runs() {
        assert!(!diff_reply(&[]).found);
        assert!(!diff_reply(&[entry(1, "lat_syscall", 4.0)]).found);
        let reply = diff_reply(&[entry(1, "lat_syscall", 4.0), entry(2, "lat_syscall", 4.1)]);
        assert!(reply.found);
        assert_eq!(reply.runs, 2);
        assert!(reply.text.contains("lat_syscall"));
    }

    #[test]
    fn diff_reply_flags_a_tenfold_regression() {
        let reply = diff_reply(&[entry(1, "lat_syscall", 4.0), entry(2, "lat_syscall", 40.0)]);
        assert!(reply.found);
        assert!(reply.regressions > 0, "{}", reply.text);
    }

    #[test]
    fn history_reply_walks_the_series_oldest_first() {
        let series = [
            entry(10, "lat_syscall", 4.0),
            entry(20, "other_bench", 9.0),
            entry(30, "lat_syscall", 5.0),
        ];
        let reply = history_reply(&series, "lat_syscall", "");
        assert!(reply.found);
        assert_eq!(reply.points.len(), 2, "runs without the metric skipped");
        assert_eq!(reply.points[0].value, 4.0);
        assert_eq!(reply.points[0].shard_seq, 1);
        assert_eq!(reply.points[1].value, 5.0);
        assert_eq!(reply.points[1].shard_seq, 3);
        assert!(!history_reply(&[], "lat_syscall", "").found);
    }

    #[test]
    fn table_reply_prefers_the_table_payload() {
        let plain = entry(10, "lat_syscall", 4.0);
        let reply = table_reply(Some(&plain));
        assert!(reply.found);
        assert!(reply.text.contains("lat_syscall"), "report fallback");

        let with_run = plain.clone().with_run(lmb_results::SuiteRun {
            syscall: Some(lmb_results::SyscallRow {
                system: "host".into(),
                syscall_us: 4.0,
            }),
            ..Default::default()
        });
        let reply = table_reply(Some(&with_run));
        assert!(reply.found);
        assert!(
            reply.text.contains("Table 7"),
            "paper tables regenerated: {}",
            &reply.text[..reply.text.len().min(400)]
        );
        assert!(!table_reply(None).found);
    }
}
