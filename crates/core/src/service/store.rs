//! Batched, compacting segment store behind the results daemon.
//!
//! Entries shard by host fingerprint. Each shard is an append-only time
//! series: pushes accumulate in a small in-memory batch, and once the
//! batch fills it is sealed into a segment file
//! (`{fingerprint}.{n:06}.seg.jsonl`, one compact JSON entry per line).
//! When a shard accumulates more sealed segments than the compaction
//! threshold, they merge into one — so a shard's on-disk footprint stays
//! at a bounded file count no matter how many runs it absorbs, and a
//! restart replays the directory back into exactly the series it held.

use super::proto::StoreStats;
use lmb_results::{Baseline, ReportStore};
use lmb_trace::EventKind;
use std::collections::BTreeMap;
use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Registry-backed instruments for every store in the process, under
/// `service.*` names; they feed the daemon's periodic `metrics_snapshot`
/// trace events. The deterministic per-store totals for `query stats`
/// come from [`SegmentStore::stats`] instead, so parallel stores in one
/// process never mix their versioned replies.
struct StoreInstruments {
    batch_runs: &'static lmb_metrics::Histogram,
    seal_latency_us: &'static lmb_metrics::Histogram,
    compactions: &'static lmb_metrics::Counter,
    replay_ms: &'static lmb_metrics::Histogram,
}

fn instruments() -> &'static StoreInstruments {
    static I: std::sync::OnceLock<StoreInstruments> = std::sync::OnceLock::new();
    I.get_or_init(|| StoreInstruments {
        batch_runs: lmb_metrics::histogram("service.batch_runs"),
        seal_latency_us: lmb_metrics::histogram("service.seal_latency_us"),
        compactions: lmb_metrics::counter("service.compactions"),
        replay_ms: lmb_metrics::histogram("service.replay_ms"),
    })
}

/// Suffix shared by every segment file.
const SEGMENT_SUFFIX: &str = ".seg.jsonl";

/// One host's series: every entry (flushed or not), the not-yet-sealed
/// tail, and the sealed segment files holding the rest.
#[derive(Debug, Default)]
struct Shard {
    /// The full series, ordered by `(unix_seconds, arrival)`. Queries
    /// read this; disk is only for durability and restarts.
    entries: Vec<Baseline>,
    /// Entries not yet sealed into a segment, in arrival order.
    pending: Vec<Baseline>,
    /// Sealed segment files, oldest first.
    sealed: Vec<PathBuf>,
    /// Next segment number; strictly increasing so filename order is
    /// arrival order even across compactions.
    next_segment: u64,
}

/// The daemon's store. Not internally synchronized — the daemon wraps it
/// in a mutex; the type itself stays single-threaded and testable.
#[derive(Debug)]
pub struct SegmentStore {
    dir: PathBuf,
    batch_size: usize,
    compact_threshold: usize,
    shards: BTreeMap<String, Shard>,
    /// Pending batches sealed into segment files since open.
    sealed_batches: u64,
    /// Shard compactions performed since open.
    compactions: u64,
    /// Entries replayed from disk at open.
    replayed_runs: u64,
}

impl SegmentStore {
    /// Opens (or creates) a store rooted at `dir`, replaying any segment
    /// files already there. Files or lines that fail to parse are skipped
    /// with a [`EventKind::StoreWarning`] and a stderr note — a corrupt
    /// segment must read as missing runs, never as a wedged daemon.
    pub fn open(
        dir: impl Into<PathBuf>,
        batch_size: usize,
        compact_threshold: usize,
    ) -> io::Result<SegmentStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut store = SegmentStore {
            dir,
            batch_size: batch_size.max(1),
            compact_threshold: compact_threshold.max(1),
            shards: BTreeMap::new(),
            sealed_batches: 0,
            compactions: 0,
            replayed_runs: 0,
        };
        let started = Instant::now();
        store.replay()?;
        store.replayed_runs = store.len() as u64;
        instruments()
            .replay_ms
            .record(started.elapsed().as_millis() as u64);
        Ok(store)
    }

    /// The directory the store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Total entries across every shard.
    pub fn len(&self) -> usize {
        self.shards.values().map(|s| s.entries.len()).sum()
    }

    /// True when no shard holds any entry.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The fingerprints with at least one entry, in sorted order.
    pub fn fingerprints(&self) -> Vec<String> {
        self.shards.keys().cloned().collect()
    }

    /// Sealed segment files currently backing `fingerprint`'s shard.
    /// Compaction keeps this bounded by the threshold (+1 for the merge
    /// in flight); tests assert on it.
    pub fn segment_count(&self, fingerprint: &str) -> usize {
        self.shards.get(fingerprint).map_or(0, |s| s.sealed.len())
    }

    /// Ingest-derived totals for the versioned `query stats` reply. All
    /// six values are deterministic functions of the sequence of appends
    /// (plus the directory state at open), never of the clock.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            hosts: self.shards.len() as u64,
            runs: self.len() as u64,
            segments: self.shards.values().map(|s| s.sealed.len() as u64).sum(),
            sealed_batches: self.sealed_batches,
            compactions: self.compactions,
            replayed_runs: self.replayed_runs,
        }
    }

    /// Seals every shard's pending batch to disk. Called on shutdown and
    /// whenever the daemon wants durability ahead of the batch filling.
    pub fn flush_all(&mut self) -> io::Result<()> {
        let fingerprints: Vec<String> = self.shards.keys().cloned().collect();
        for fp in fingerprints {
            self.flush_shard(&fp)?;
        }
        Ok(())
    }

    // -- internals ---------------------------------------------------------

    /// Rebuilds the in-memory index from the segment files on disk.
    fn replay(&mut self) -> io::Result<()> {
        // Segment files sort by (fingerprint, number) lexically because the
        // number is zero-padded; walking them in name order replays each
        // shard's arrival order.
        let mut names: Vec<PathBuf> = Vec::new();
        for dirent in fs::read_dir(&self.dir)? {
            let path = dirent?.path();
            if path
                .file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.ends_with(SEGMENT_SUFFIX))
            {
                names.push(path);
            }
        }
        names.sort();
        for path in names {
            let Some((fingerprint, number)) = parse_segment_name(&path) else {
                warn_skipped(&path, "segment filename does not parse");
                continue;
            };
            let text = match fs::read_to_string(&path) {
                Ok(text) => text,
                Err(err) => {
                    warn_skipped(&path, &err.to_string());
                    continue;
                }
            };
            let shard = self.shards.entry(fingerprint).or_default();
            shard.next_segment = shard.next_segment.max(number + 1);
            shard.sealed.push(path.clone());
            for (lineno, line) in text.lines().enumerate() {
                if line.trim().is_empty() {
                    continue;
                }
                match Baseline::from_json(line) {
                    Ok(entry) => shard.entries.push(entry),
                    Err(err) => {
                        warn_skipped(&path, &format!("line {}: {err}", lineno + 1));
                    }
                }
            }
        }
        for shard in self.shards.values_mut() {
            sort_series(&mut shard.entries);
        }
        self.shards
            .retain(|_, s| !s.entries.is_empty() || !s.sealed.is_empty());
        Ok(())
    }

    /// Seals `fingerprint`'s pending batch into a new segment file, then
    /// compacts the shard if it now exceeds the segment budget.
    fn flush_shard(&mut self, fingerprint: &str) -> io::Result<()> {
        let dir = self.dir.clone();
        let threshold = self.compact_threshold;
        let Some(shard) = self.shards.get_mut(fingerprint) else {
            return Ok(());
        };
        if !shard.pending.is_empty() {
            let timer = lmb_metrics::enabled().then(Instant::now);
            let path = segment_path(&dir, fingerprint, shard.next_segment);
            write_segment(&path, &shard.pending)?;
            shard.next_segment += 1;
            shard.sealed.push(path);
            instruments().batch_runs.record(shard.pending.len() as u64);
            if let Some(t) = timer {
                instruments()
                    .seal_latency_us
                    .record(t.elapsed().as_micros() as u64);
            }
            shard.pending.clear();
            self.sealed_batches += 1;
            // A seal is a durability point: push buffered audit-trace
            // lines out with it so the JSONL never lags the store.
            lmb_trace::flush_all();
        }
        if shard.sealed.len() > threshold {
            compact_shard(&dir, fingerprint, shard)?;
            self.compactions += 1;
            instruments().compactions.add_always(1);
        }
        Ok(())
    }
}

impl ReportStore for SegmentStore {
    fn append(&mut self, entry: Baseline) -> io::Result<u64> {
        let fingerprint = entry.fingerprint.clone();
        let batch_size = self.batch_size;
        let shard = self.shards.entry(fingerprint.clone()).or_default();
        shard.pending.push(entry.clone());
        shard.entries.push(entry);
        sort_series(&mut shard.entries);
        let seq = shard.entries.len() as u64;
        if shard.pending.len() >= batch_size {
            self.flush_shard(&fingerprint)?;
        }
        Ok(seq)
    }

    fn latest(&self, fingerprint: &str) -> io::Result<Option<Baseline>> {
        Ok(self
            .shards
            .get(fingerprint)
            .and_then(|s| s.entries.last().cloned()))
    }

    fn history(&self, fingerprint: &str) -> io::Result<Vec<Baseline>> {
        Ok(self
            .shards
            .get(fingerprint)
            .map_or_else(Vec::new, |s| s.entries.clone()))
    }

    fn iter(&self) -> io::Result<Vec<Baseline>> {
        Ok(self
            .shards
            .values()
            .flat_map(|s| s.entries.iter().cloned())
            .collect())
    }
}

/// Orders a shard's series by capture time; the sort is stable, so
/// same-second entries keep arrival order.
fn sort_series(entries: &mut [Baseline]) {
    entries.sort_by_key(|e| e.unix_seconds);
}

fn segment_path(dir: &Path, fingerprint: &str, number: u64) -> PathBuf {
    dir.join(format!("{fingerprint}.{number:06}{SEGMENT_SUFFIX}"))
}

/// Recovers `(fingerprint, number)` from a segment filename. Parsed from
/// the right so fingerprints containing dots stay intact.
fn parse_segment_name(path: &Path) -> Option<(String, u64)> {
    let name = path.file_name()?.to_str()?.strip_suffix(SEGMENT_SUFFIX)?;
    let (fingerprint, number) = name.rsplit_once('.')?;
    if fingerprint.is_empty() {
        return None;
    }
    Some((fingerprint.to_string(), number.parse().ok()?))
}

/// Writes one segment: compact JSON, one entry per line, durably renamed
/// into place so a crash mid-write never leaves a torn segment visible.
fn write_segment(path: &Path, entries: &[Baseline]) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        for entry in entries {
            writeln!(f, "{}", entry.to_json_compact())?;
        }
        f.sync_all()?;
    }
    fs::rename(&tmp, path)
}

/// Merges a shard's sealed segments into one, bounding its file count.
fn compact_shard(dir: &Path, fingerprint: &str, shard: &mut Shard) -> io::Result<()> {
    let before = shard.sealed.len();
    // The merged segment takes the next number, so it still sorts after
    // nothing and before future segments; the shard's series (already
    // time-ordered) is its content.
    let path = segment_path(dir, fingerprint, shard.next_segment);
    write_segment(&path, &shard.entries)?;
    shard.next_segment += 1;
    for old in shard.sealed.drain(..) {
        // Best-effort: a leftover old segment is re-read (and re-merged)
        // on restart, which duplicates nothing because it is deleted
        // before the store reports success... so treat failure as real.
        fs::remove_file(&old)?;
    }
    shard.sealed.push(path);
    let fp = fingerprint.to_string();
    let runs = shard.entries.len() as u64;
    lmb_trace::emit(|| EventKind::Compaction {
        fingerprint: fp.clone(),
        segments_before: before as u32,
        segments_after: 1,
        runs,
    });
    Ok(())
}

/// Flags an unreadable store file on stderr and in the trace stream.
fn warn_skipped(path: &Path, detail: &str) {
    eprintln!(
        "lmbench: warning: skipping unreadable results file {}: {detail}",
        path.display()
    );
    let p = path.display().to_string();
    let d = detail.to_string();
    lmb_trace::emit(|| EventKind::StoreWarning {
        path: p.clone(),
        detail: d.clone(),
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmb_results::RunReport;
    use lmb_trace::MemorySink;
    use std::sync::atomic::{AtomicU64, Ordering};

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn scratch_dir(tag: &str) -> PathBuf {
        let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("lmb-segstore-{tag}-{}-{n}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn entry(fingerprint: &str, seconds: u64) -> Baseline {
        let mut b = Baseline::now(fingerprint, "host", RunReport::default());
        b.unix_seconds = seconds;
        b
    }

    #[test]
    fn batches_then_seals_segments() {
        let dir = scratch_dir("seal");
        let mut store = SegmentStore::open(&dir, 2, 100).unwrap();
        store.append(entry("fp-a", 10)).unwrap();
        assert_eq!(store.segment_count("fp-a"), 0, "batch not full yet");
        store.append(entry("fp-a", 20)).unwrap();
        assert_eq!(store.segment_count("fp-a"), 1, "batch of 2 sealed");
        store.append(entry("fp-a", 30)).unwrap();
        assert_eq!(store.len(), 3, "pending entries are still queryable");
        assert_eq!(store.latest("fp-a").unwrap().unwrap().unix_seconds, 30);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn restart_replays_the_series_including_flush() {
        let dir = scratch_dir("replay");
        {
            let mut store = SegmentStore::open(&dir, 2, 100).unwrap();
            for s in [10, 20, 30, 40, 50] {
                store.append(entry("fp-a", s)).unwrap();
            }
            store.append(entry("fp-b", 99)).unwrap();
            store.flush_all().unwrap();
        }
        let store = SegmentStore::open(&dir, 2, 100).unwrap();
        assert_eq!(store.len(), 6);
        assert_eq!(store.fingerprints(), vec!["fp-a", "fp-b"]);
        let times: Vec<u64> = store
            .history("fp-a")
            .unwrap()
            .iter()
            .map(|e| e.unix_seconds)
            .collect();
        assert_eq!(times, vec![10, 20, 30, 40, 50]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_bounds_the_segment_count() {
        let dir = scratch_dir("compact");
        let sink = MemorySink::shared();
        let handle = lmb_trace::install(Box::new(sink.clone()));
        let mut store = SegmentStore::open(&dir, 1, 3).unwrap();
        for s in 0..20 {
            store.append(entry("fp-a", s)).unwrap();
            assert!(
                store.segment_count("fp-a") <= 4,
                "segments unbounded at {s}: {}",
                store.segment_count("fp-a")
            );
        }
        lmb_trace::uninstall(handle);
        let compactions = sink
            .events()
            .iter()
            .filter(|e| matches!(e.kind, EventKind::Compaction { .. }))
            .count();
        assert!(compactions > 0, "20 single-entry batches must compact");
        // The merged store still replays to the full series.
        let reopened = SegmentStore::open(&dir, 1, 3).unwrap();
        assert_eq!(reopened.len(), 20);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_segment_lines_warn_and_skip() {
        let dir = scratch_dir("corrupt");
        {
            let mut store = SegmentStore::open(&dir, 1, 100).unwrap();
            store.append(entry("fp-a", 10)).unwrap();
            store.append(entry("fp-a", 20)).unwrap();
        }
        // Corrupt the first segment and drop junk that isn't a segment.
        let seg = segment_path(&dir, "fp-a", 0);
        fs::write(&seg, "{ this is not json\n").unwrap();
        fs::write(dir.join("notes.txt"), "ignored").unwrap();

        let sink = MemorySink::shared();
        let handle = lmb_trace::install(Box::new(sink.clone()));
        let store = SegmentStore::open(&dir, 1, 100).unwrap();
        lmb_trace::uninstall(handle);

        assert_eq!(store.len(), 1, "good entry survives, bad line skipped");
        let warnings: Vec<String> = sink
            .events()
            .iter()
            .filter_map(|e| match &e.kind {
                EventKind::StoreWarning { path, .. } => Some(path.clone()),
                _ => None,
            })
            .collect();
        assert_eq!(warnings.len(), 1, "exactly the corrupt file warned");
        assert!(warnings[0].contains("fp-a.000000"), "{warnings:?}");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn same_second_entries_keep_arrival_order() {
        let dir = scratch_dir("stable");
        let mut store = SegmentStore::open(&dir, 10, 100).unwrap();
        for (host, s) in [("first", 5), ("second", 5), ("third", 5)] {
            let mut e = entry("fp-a", s);
            e.host = host.into();
            store.append(e).unwrap();
        }
        let hosts: Vec<String> = store
            .history("fp-a")
            .unwrap()
            .iter()
            .map(|e| e.host.clone())
            .collect();
        assert_eq!(hosts, vec!["first", "second", "third"]);
        fs::remove_dir_all(&dir).unwrap();
    }
}
