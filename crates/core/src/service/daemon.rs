//! The results daemon: lmb-rpc dispatch wired to the segment store.

use super::proto::{self, DiffRequest, HistoryRequest, PushReply, PushRequest, TableRequest};
use super::store::SegmentStore;
use bytes::Bytes;
use lmb_results::ReportStore;
use lmb_rpc::{
    Registry, RpcServer, ServerOptions, RESULTS_PROC_DIFF, RESULTS_PROC_HISTORY, RESULTS_PROC_PUSH,
    RESULTS_PROC_TABLE, RESULTS_PROGRAM, RESULTS_VERSION,
};
use lmb_sys::signal::{install_handler, Signal};
use lmb_trace::EventKind;
use parking_lot::Mutex;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Tunables for [`ResultsService::start`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Where segment files live.
    pub data_dir: PathBuf,
    /// Pushes buffered per shard before sealing a segment.
    pub batch_size: usize,
    /// Sealed segments per shard before they merge into one.
    pub compact_threshold: usize,
    /// Largest RPC record accepted from a peer; larger ones drop the
    /// connection before buffering.
    pub max_record_bytes: usize,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            data_dir: PathBuf::from(".lmbench/service"),
            batch_size: 8,
            compact_threshold: 4,
            max_record_bytes: 4 << 20,
        }
    }
}

/// A running ingest/query daemon. Dropping it stops the RPC server;
/// [`ResultsService::shutdown`] additionally seals pending batches first.
pub struct ResultsService {
    server: RpcServer,
    store: Arc<Mutex<SegmentStore>>,
}

impl ResultsService {
    /// Opens the store, binds an ephemeral TCP port, and registers the
    /// four results procedures on a concurrent [`RpcServer`].
    pub fn start(config: ServiceConfig) -> io::Result<ResultsService> {
        let store = Arc::new(Mutex::new(SegmentStore::open(
            &config.data_dir,
            config.batch_size,
            config.compact_threshold,
        )?));
        let server = RpcServer::start_with(
            Registry::new(),
            ServerOptions {
                concurrent: true,
                max_record_bytes: Some(config.max_record_bytes),
            },
        )?;

        let s = store.clone();
        register(&server, RESULTS_PROC_PUSH, move |args: Bytes| {
            let bytes = args.len() as u64;
            let req: PushRequest = proto::from_wire(args)?;
            let fingerprint = req.entry.fingerprint.clone();
            let shard_seq = s.lock().append(req.entry).map_err(|_| ())?;
            let fp = fingerprint.clone();
            lmb_trace::emit(|| EventKind::Ingest {
                fingerprint: fp.clone(),
                shard_seq,
                bytes,
            });
            Ok(proto::to_wire(&PushReply {
                fingerprint,
                shard_seq,
            }))
        });

        let s = store.clone();
        register(&server, RESULTS_PROC_DIFF, move |args: Bytes| {
            let req: DiffRequest = proto::from_wire(args)?;
            let history = s.lock().history(&req.fingerprint).map_err(|_| ())?;
            let reply = proto::diff_reply(&history);
            note_query("diff", &req.fingerprint, u64::from(reply.regressions));
            Ok(proto::to_wire(&reply))
        });

        let s = store.clone();
        register(&server, RESULTS_PROC_HISTORY, move |args: Bytes| {
            let req: HistoryRequest = proto::from_wire(args)?;
            let history = s.lock().history(&req.fingerprint).map_err(|_| ())?;
            let reply = proto::history_reply(&history, &req.bench, &req.metric);
            note_query("history", &req.fingerprint, reply.points.len() as u64);
            Ok(proto::to_wire(&reply))
        });

        let s = store.clone();
        register(&server, RESULTS_PROC_TABLE, move |args: Bytes| {
            let req: TableRequest = proto::from_wire(args)?;
            let latest = s.lock().latest(&req.fingerprint).map_err(|_| ())?;
            let reply = proto::table_reply(latest.as_ref());
            note_query("table", &req.fingerprint, reply.text.lines().count() as u64);
            Ok(proto::to_wire(&reply))
        });

        Ok(ResultsService { server, store })
    }

    /// The TCP port the daemon listens on.
    pub fn tcp_port(&self) -> u16 {
        self.server.tcp_port()
    }

    /// Seals every shard's pending batch to disk.
    pub fn flush(&self) -> io::Result<()> {
        self.store.lock().flush_all()
    }

    /// Flushes, then stops the server (joining its connection threads).
    pub fn shutdown(self) -> io::Result<()> {
        self.flush()
        // `self.server` drops here, stopping accept/connection threads.
    }
}

fn register(
    server: &RpcServer,
    procedure: u32,
    handler: impl Fn(Bytes) -> Result<Bytes, ()> + Send + Sync + 'static,
) {
    server.register(
        RESULTS_PROGRAM,
        RESULTS_VERSION,
        procedure,
        Box::new(handler),
    );
}

fn note_query(procedure: &str, fingerprint: &str, rows: u64) {
    let p = procedure.to_string();
    let fp = fingerprint.to_string();
    lmb_trace::emit(|| EventKind::Query {
        procedure: p.clone(),
        fingerprint: fp.clone(),
        rows,
    });
}

/// Set by [`request_shutdown`] when SIGINT or SIGTERM arrives.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn request_shutdown(_sig: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Installs SIGINT/SIGTERM handlers that flip a flag instead of killing
/// the process, so `lmbench serve` can seal pending segments on the way
/// out. Returns the flag to poll.
pub fn install_shutdown_handler() -> io::Result<&'static AtomicBool> {
    for sig in [Signal::Int, Signal::Term] {
        install_handler(sig, request_shutdown)
            .map_err(|e| io::Error::other(format!("installing {sig:?} handler: {e}")))?;
    }
    Ok(&SHUTDOWN)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmb_results::{Baseline, RunReport};
    use lmb_rpc::{CallError, RpcClient, RpcFault};
    use std::sync::atomic::AtomicU64;

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn scratch_config() -> ServiceConfig {
        let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        ServiceConfig {
            data_dir: std::env::temp_dir().join(format!("lmb-daemon-{}-{n}", std::process::id())),
            batch_size: 2,
            compact_threshold: 3,
            max_record_bytes: 4 << 20,
        }
    }

    fn entry(fingerprint: &str, seconds: u64) -> Baseline {
        let mut b = Baseline::now(fingerprint, "host", RunReport::default());
        b.unix_seconds = seconds;
        b
    }

    #[test]
    fn push_then_query_round_trip() {
        let config = scratch_config();
        let dir = config.data_dir.clone();
        let service = ResultsService::start(config).unwrap();
        let mut client = RpcClient::connect_tcp(
            ("127.0.0.1", service.tcp_port()),
            RESULTS_PROGRAM,
            RESULTS_VERSION,
        )
        .unwrap();

        for s in [10, 20] {
            let reply = client
                .call(
                    RESULTS_PROC_PUSH,
                    proto::to_wire(&PushRequest {
                        entry: entry("fp-a", s),
                    }),
                )
                .unwrap();
            let reply: PushReply = proto::from_wire(reply).unwrap();
            assert_eq!(reply.fingerprint, "fp-a");
            assert_eq!(reply.shard_seq, s / 10);
        }

        let reply = client
            .call(
                RESULTS_PROC_DIFF,
                proto::to_wire(&DiffRequest {
                    fingerprint: "fp-a".into(),
                }),
            )
            .unwrap();
        let diff: super::super::proto::DiffReply = proto::from_wire(reply).unwrap();
        assert!(diff.found);
        assert_eq!(diff.runs, 2);

        let reply = client
            .call(
                RESULTS_PROC_TABLE,
                proto::to_wire(&TableRequest {
                    fingerprint: "missing".into(),
                }),
            )
            .unwrap();
        let table: super::super::proto::TableReply = proto::from_wire(reply).unwrap();
        assert!(!table.found);

        drop(client);
        service.shutdown().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbage_args_fault_instead_of_crashing() {
        let config = scratch_config();
        let dir = config.data_dir.clone();
        let service = ResultsService::start(config).unwrap();
        let mut client = RpcClient::connect_tcp(
            ("127.0.0.1", service.tcp_port()),
            RESULTS_PROGRAM,
            RESULTS_VERSION,
        )
        .unwrap();
        // Aligned (the transport checks that) but meaningless as a body.
        match client.call(RESULTS_PROC_PUSH, Bytes::from_static(b"garbage!")) {
            Err(CallError::Fault(RpcFault::GarbageArguments)) => {}
            other => panic!("expected GARBAGE_ARGS, got {other:?}"),
        }
        drop(client);
        service.shutdown().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
