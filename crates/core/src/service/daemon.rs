//! The results daemon: lmb-rpc dispatch wired to the segment store.

use super::proto::{
    self, DiffRequest, HistoryRequest, ProcedureStats, PushReply, PushRequest, StatsRequest,
    TableRequest,
};
use super::store::SegmentStore;
use bytes::Bytes;
use lmb_metrics::Counter;
use lmb_results::ReportStore;
use lmb_rpc::{
    Registry, RpcServer, ServerOptions, RESULTS_PROC_DIFF, RESULTS_PROC_HISTORY, RESULTS_PROC_PUSH,
    RESULTS_PROC_STATS, RESULTS_PROC_TABLE, RESULTS_PROGRAM, RESULTS_VERSION,
};
use lmb_sys::signal::{install_handler, Signal};
use lmb_trace::EventKind;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// One procedure's request accounting. Updates use the ungated metrics
/// path: the versioned `query stats` reply is built from these, so they
/// must be correct whether or not anyone turned the process-wide metrics
/// switch on — and the daemon's request path is not a measured benchmark.
#[derive(Default)]
struct ProcCounters {
    calls: Counter,
    errors: Counter,
    bytes_in: Counter,
}

impl ProcCounters {
    fn hit(&self, bytes: u64) {
        self.calls.add_always(1);
        self.bytes_in.add_always(bytes);
    }

    fn row(&self, procedure: &str) -> ProcedureStats {
        ProcedureStats {
            procedure: procedure.to_string(),
            calls: self.calls.get(),
            errors: self.errors.get(),
            bytes_in: self.bytes_in.get(),
        }
    }
}

/// Per-service operational counters. Owned by the service (not the
/// process-global registry) so two daemons in one test process never mix
/// their deterministic stats replies.
#[derive(Default)]
struct ServiceMetrics {
    push: ProcCounters,
    diff: ProcCounters,
    history: ProcCounters,
    table: ProcCounters,
    stats: ProcCounters,
}

impl ServiceMetrics {
    fn procedure_rows(&self) -> Vec<ProcedureStats> {
        vec![
            self.push.row("push"),
            self.diff.row("diff"),
            self.history.row("history"),
            self.table.row("table"),
            self.stats.row("stats"),
        ]
    }
}

/// Tunables for [`ResultsService::start`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Where segment files live.
    pub data_dir: PathBuf,
    /// Pushes buffered per shard before sealing a segment.
    pub batch_size: usize,
    /// Sealed segments per shard before they merge into one.
    pub compact_threshold: usize,
    /// Largest RPC record accepted from a peer; larger ones drop the
    /// connection before buffering.
    pub max_record_bytes: usize,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            data_dir: PathBuf::from(".lmbench/service"),
            batch_size: 8,
            compact_threshold: 4,
            max_record_bytes: 4 << 20,
        }
    }
}

/// A running ingest/query daemon. Dropping it stops the RPC server;
/// [`ResultsService::shutdown`] additionally seals pending batches first.
pub struct ResultsService {
    server: RpcServer,
    store: Arc<Mutex<SegmentStore>>,
    metrics: Arc<ServiceMetrics>,
    started: Instant,
}

impl ResultsService {
    /// Opens the store, binds an ephemeral TCP port, and registers the
    /// four results procedures on a concurrent [`RpcServer`].
    pub fn start(config: ServiceConfig) -> io::Result<ResultsService> {
        let store = Arc::new(Mutex::new(SegmentStore::open(
            &config.data_dir,
            config.batch_size,
            config.compact_threshold,
        )?));
        let server = RpcServer::start_with(
            Registry::new(),
            ServerOptions {
                concurrent: true,
                max_record_bytes: Some(config.max_record_bytes),
            },
        )?;

        let metrics = Arc::new(ServiceMetrics::default());

        let s = store.clone();
        let m = metrics.clone();
        register(&server, RESULTS_PROC_PUSH, move |args: Bytes| {
            let bytes = args.len() as u64;
            m.push.hit(bytes);
            let handled = (|| {
                let req: PushRequest = proto::from_wire(args)?;
                let fingerprint = req.entry.fingerprint.clone();
                let shard_seq = s.lock().append(req.entry).map_err(|_| ())?;
                let fp = fingerprint.clone();
                lmb_trace::emit(|| EventKind::Ingest {
                    fingerprint: fp.clone(),
                    shard_seq,
                    bytes,
                });
                Ok(proto::to_wire(&PushReply {
                    fingerprint,
                    shard_seq,
                }))
            })();
            if handled.is_err() {
                m.push.errors.add_always(1);
            }
            handled
        });

        let s = store.clone();
        let m = metrics.clone();
        register(&server, RESULTS_PROC_DIFF, move |args: Bytes| {
            m.diff.hit(args.len() as u64);
            let handled = (|| {
                let req: DiffRequest = proto::from_wire(args)?;
                let history = s.lock().history(&req.fingerprint).map_err(|_| ())?;
                let reply = proto::diff_reply(&history);
                note_query("diff", &req.fingerprint, u64::from(reply.regressions));
                Ok(proto::to_wire(&reply))
            })();
            if handled.is_err() {
                m.diff.errors.add_always(1);
            }
            handled
        });

        let s = store.clone();
        let m = metrics.clone();
        register(&server, RESULTS_PROC_HISTORY, move |args: Bytes| {
            m.history.hit(args.len() as u64);
            let handled = (|| {
                let req: HistoryRequest = proto::from_wire(args)?;
                let history = s.lock().history(&req.fingerprint).map_err(|_| ())?;
                let reply = proto::history_reply(&history, &req.bench, &req.metric);
                note_query("history", &req.fingerprint, reply.points.len() as u64);
                Ok(proto::to_wire(&reply))
            })();
            if handled.is_err() {
                m.history.errors.add_always(1);
            }
            handled
        });

        let s = store.clone();
        let m = metrics.clone();
        register(&server, RESULTS_PROC_TABLE, move |args: Bytes| {
            m.table.hit(args.len() as u64);
            let handled = (|| {
                let req: TableRequest = proto::from_wire(args)?;
                let latest = s.lock().latest(&req.fingerprint).map_err(|_| ())?;
                let reply = proto::table_reply(latest.as_ref());
                note_query("table", &req.fingerprint, reply.text.lines().count() as u64);
                Ok(proto::to_wire(&reply))
            })();
            if handled.is_err() {
                m.table.errors.add_always(1);
            }
            handled
        });

        let s = store.clone();
        let m = metrics.clone();
        register(&server, RESULTS_PROC_STATS, move |args: Bytes| {
            // Count this call before snapshotting so the reply reflects it:
            // a client that asks twice in a row sees calls go 1 -> 2.
            m.stats.hit(args.len() as u64);
            let handled = (|| {
                let _req: StatsRequest = proto::from_wire(args)?;
                let store_stats = s.lock().stats();
                let reply = proto::stats_reply(m.procedure_rows(), store_stats);
                note_query("stats", "", reply.procedures.len() as u64);
                Ok(proto::to_wire(&reply))
            })();
            if handled.is_err() {
                m.stats.errors.add_always(1);
            }
            handled
        });

        Ok(ResultsService {
            server,
            store,
            metrics,
            started: Instant::now(),
        })
    }

    /// The TCP port the daemon listens on.
    pub fn tcp_port(&self) -> u16 {
        self.server.tcp_port()
    }

    /// Seals every shard's pending batch to disk.
    pub fn flush(&self) -> io::Result<()> {
        self.store.lock().flush_all()
    }

    /// Emits a `metrics_snapshot` trace event: the flattened process-wide
    /// registry (rpc.*, trace.*, service.*) plus this service's own
    /// per-procedure counters and wall-clock values. Wall-clock rows live
    /// here — in the audit log — and never in the versioned `query stats`
    /// reply, which stays deterministic.
    pub fn emit_metrics_snapshot(&self) {
        if !lmb_trace::enabled() {
            return;
        }
        let mut counters: BTreeMap<String, u64> =
            lmb_metrics::snapshot().flatten().into_iter().collect();
        counters.insert(
            "service.uptime_ms".into(),
            self.started.elapsed().as_millis() as u64,
        );
        for row in self.metrics.procedure_rows() {
            counters.insert(format!("service.{}.calls", row.procedure), row.calls);
            counters.insert(format!("service.{}.errors", row.procedure), row.errors);
            counters.insert(format!("service.{}.bytes_in", row.procedure), row.bytes_in);
        }
        lmb_trace::emit(|| EventKind::MetricsSnapshot {
            counters: counters.clone(),
        });
    }

    /// Flushes, then stops the server (joining its connection threads).
    pub fn shutdown(self) -> io::Result<()> {
        self.emit_metrics_snapshot();
        self.flush()
        // `self.server` drops here, stopping accept/connection threads.
    }
}

fn register(
    server: &RpcServer,
    procedure: u32,
    handler: impl Fn(Bytes) -> Result<Bytes, ()> + Send + Sync + 'static,
) {
    server.register(
        RESULTS_PROGRAM,
        RESULTS_VERSION,
        procedure,
        Box::new(handler),
    );
}

fn note_query(procedure: &str, fingerprint: &str, rows: u64) {
    let p = procedure.to_string();
    let fp = fingerprint.to_string();
    lmb_trace::emit(|| EventKind::Query {
        procedure: p.clone(),
        fingerprint: fp.clone(),
        rows,
    });
}

/// Set by [`request_shutdown`] when SIGINT or SIGTERM arrives.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn request_shutdown(_sig: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Installs SIGINT/SIGTERM handlers that flip a flag instead of killing
/// the process, so `lmbench serve` can seal pending segments on the way
/// out. Returns the flag to poll.
pub fn install_shutdown_handler() -> io::Result<&'static AtomicBool> {
    for sig in [Signal::Int, Signal::Term] {
        install_handler(sig, request_shutdown)
            .map_err(|e| io::Error::other(format!("installing {sig:?} handler: {e}")))?;
    }
    Ok(&SHUTDOWN)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmb_results::{Baseline, RunReport};
    use lmb_rpc::{CallError, RpcClient, RpcFault};
    use std::sync::atomic::AtomicU64;

    static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

    fn scratch_config() -> ServiceConfig {
        let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        ServiceConfig {
            data_dir: std::env::temp_dir().join(format!("lmb-daemon-{}-{n}", std::process::id())),
            batch_size: 2,
            compact_threshold: 3,
            max_record_bytes: 4 << 20,
        }
    }

    fn entry(fingerprint: &str, seconds: u64) -> Baseline {
        let mut b = Baseline::now(fingerprint, "host", RunReport::default());
        b.unix_seconds = seconds;
        b
    }

    #[test]
    fn push_then_query_round_trip() {
        let config = scratch_config();
        let dir = config.data_dir.clone();
        let service = ResultsService::start(config).unwrap();
        let mut client = RpcClient::connect_tcp(
            ("127.0.0.1", service.tcp_port()),
            RESULTS_PROGRAM,
            RESULTS_VERSION,
        )
        .unwrap();

        for s in [10, 20] {
            let reply = client
                .call(
                    RESULTS_PROC_PUSH,
                    proto::to_wire(&PushRequest {
                        entry: entry("fp-a", s),
                    }),
                )
                .unwrap();
            let reply: PushReply = proto::from_wire(reply).unwrap();
            assert_eq!(reply.fingerprint, "fp-a");
            assert_eq!(reply.shard_seq, s / 10);
        }

        let reply = client
            .call(
                RESULTS_PROC_DIFF,
                proto::to_wire(&DiffRequest {
                    fingerprint: "fp-a".into(),
                }),
            )
            .unwrap();
        let diff: super::super::proto::DiffReply = proto::from_wire(reply).unwrap();
        assert!(diff.found);
        assert_eq!(diff.runs, 2);

        let reply = client
            .call(
                RESULTS_PROC_TABLE,
                proto::to_wire(&TableRequest {
                    fingerprint: "missing".into(),
                }),
            )
            .unwrap();
        let table: super::super::proto::TableReply = proto::from_wire(reply).unwrap();
        assert!(!table.found);

        drop(client);
        service.shutdown().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stats_reports_per_procedure_and_store_totals() {
        let config = scratch_config();
        let dir = config.data_dir.clone();
        let service = ResultsService::start(config).unwrap();
        let mut client = RpcClient::connect_tcp(
            ("127.0.0.1", service.tcp_port()),
            RESULTS_PROGRAM,
            RESULTS_VERSION,
        )
        .unwrap();

        let mut push_bytes = 0u64;
        for s in [10, 20, 30] {
            let wire = proto::to_wire(&PushRequest {
                entry: entry("fp-s", s),
            });
            push_bytes += wire.len() as u64;
            client.call(RESULTS_PROC_PUSH, wire).unwrap();
        }
        client
            .call(
                RESULTS_PROC_DIFF,
                proto::to_wire(&DiffRequest {
                    fingerprint: "fp-s".into(),
                }),
            )
            .unwrap();

        let ask = || proto::to_wire(&StatsRequest::default());
        let reply = client.call(RESULTS_PROC_STATS, ask()).unwrap();
        let stats: super::super::proto::StatsReply = proto::from_wire(reply).unwrap();
        assert_eq!(stats.schema_version, lmb_results::SCHEMA_VERSION);

        let row = |name: &str| {
            stats
                .procedures
                .iter()
                .find(|p| p.procedure == name)
                .unwrap_or_else(|| panic!("no {name} row"))
                .clone()
        };
        assert_eq!(row("push").calls, 3);
        assert_eq!(row("push").errors, 0);
        assert_eq!(row("push").bytes_in, push_bytes);
        assert_eq!(row("diff").calls, 1);
        // The stats handler counts itself before replying.
        assert_eq!(row("stats").calls, 1);
        assert_eq!(stats.store.hosts, 1);
        assert_eq!(stats.store.runs, 3);
        // batch_size = 2: one sealed batch, one run still pending.
        assert_eq!(stats.store.sealed_batches, 1);

        // A second identical ask advances only the stats row, and the
        // rendered table is deterministic text.
        let reply = client.call(RESULTS_PROC_STATS, ask()).unwrap();
        let again: super::super::proto::StatsReply = proto::from_wire(reply).unwrap();
        assert_eq!(
            again
                .procedures
                .iter()
                .find(|p| p.procedure == "stats")
                .unwrap()
                .calls,
            2
        );
        assert!(again.render().contains("results-service stats"));

        // Malformed stats args count as an error on the stats row.
        match client.call(RESULTS_PROC_STATS, Bytes::from_static(b"garbage!")) {
            Err(CallError::Fault(RpcFault::GarbageArguments)) => {}
            other => panic!("expected GARBAGE_ARGS, got {other:?}"),
        }
        let reply = client.call(RESULTS_PROC_STATS, ask()).unwrap();
        let last: super::super::proto::StatsReply = proto::from_wire(reply).unwrap();
        let stats_row = last
            .procedures
            .iter()
            .find(|p| p.procedure == "stats")
            .unwrap();
        assert_eq!(stats_row.calls, 4);
        assert_eq!(stats_row.errors, 1);

        drop(client);
        service.shutdown().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbage_args_fault_instead_of_crashing() {
        let config = scratch_config();
        let dir = config.data_dir.clone();
        let service = ResultsService::start(config).unwrap();
        let mut client = RpcClient::connect_tcp(
            ("127.0.0.1", service.tcp_port()),
            RESULTS_PROGRAM,
            RESULTS_VERSION,
        )
        .unwrap();
        // Aligned (the transport checks that) but meaningless as a body.
        match client.call(RESULTS_PROC_PUSH, Bytes::from_static(b"garbage!")) {
            Err(CallError::Fault(RpcFault::GarbageArguments)) => {}
            other => panic!("expected GARBAGE_ARGS, got {other:?}"),
        }
        drop(client);
        service.shutdown().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }
}
