//! The fleet-scale results service.
//!
//! lmbench's paper measures one machine at a time; a fleet runs the suite
//! on hundreds and needs the results in one place. This module dogfoods
//! the repo's own substrates into that service: the wire protocol is
//! lmb-rpc (the XDR/record-marking/dispatch stack Tables 12–13 measure),
//! the query engine is lmb-results' noise-aware differ, and the audit log
//! is lmb-trace JSONL.
//!
//! - [`proto`] — the five procedures (push / diff / history / table /
//!   stats) and their request/reply bodies, JSON carried in one XDR
//!   string.
//! - [`SegmentStore`] — fingerprint-sharded, append-only time series with
//!   batched segment files and compaction.
//! - [`ResultsService`] — the daemon: a concurrent [`lmb_rpc::RpcServer`]
//!   with the store behind it.
//! - [`ReportClient`] — the fleet side: push and query with bounded
//!   retry/backoff.

pub mod client;
pub mod daemon;
pub mod proto;
pub mod store;

pub use client::ReportClient;
pub use daemon::{install_shutdown_handler, ResultsService, ServiceConfig};
pub use store::SegmentStore;
