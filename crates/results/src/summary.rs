//! Per-host text summaries — the lmbench `make summary` idiom.
//!
//! The original distribution printed one dense block per host covering
//! every measurement, which is what people actually mailed to the results
//! list. [`host_summary`] renders that block from a [`SuiteRun`];
//! [`db_summary`] lines several hosts up side by side for the
//! quick-comparison use case ("These tools can be, and currently are, used
//! to compare different system implementations from different vendors",
//! §1).

use crate::schema::SuiteRun;
use crate::ResultsDb;
use std::fmt::Write as _;

fn line(out: &mut String, label: &str, value: Option<String>) {
    let _ = writeln!(out, "{label:<34} {}", value.unwrap_or_else(|| "-".into()));
}

fn us(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0} us")
    } else {
        format!("{v:.2} us")
    }
}

fn mb(v: f64) -> String {
    format!("{v:.0} MB/s")
}

/// Renders the full one-host summary block.
pub fn host_summary(name: &str, run: &SuiteRun) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "SUMMARY for {name}");
    if let Some(s) = &run.system {
        let _ = writeln!(
            out,
            "  {} / {} / {} MHz / {}",
            s.vendor_model,
            s.cpu,
            s.mhz,
            if s.multiprocessor { "MP" } else { "UP" }
        );
    }
    let _ = writeln!(out, "Processor, Processes - times in microseconds");
    line(
        &mut out,
        "  null syscall (write /dev/null)",
        run.syscall.as_ref().map(|r| us(r.syscall_us)),
    );
    line(
        &mut out,
        "  signal install / handler",
        run.signal
            .as_ref()
            .map(|r| format!("{} / {}", us(r.sigaction_us), us(r.handler_us))),
    );
    line(
        &mut out,
        "  fork / fork+exec / sh -c (ms)",
        run.proc.as_ref().map(|r| {
            format!(
                "{:.2} / {:.2} / {:.2}",
                r.fork_ms, r.fork_exec_ms, r.fork_sh_ms
            )
        }),
    );
    line(
        &mut out,
        "  ctx switch 2p/0K .. 8p/32K",
        run.ctx
            .as_ref()
            .map(|r| format!("{} .. {}", us(r.p2_0k), us(r.p8_32k))),
    );
    let _ = writeln!(out, "Communication latencies in microseconds");
    line(
        &mut out,
        "  pipe",
        run.pipe_lat.as_ref().map(|r| us(r.pipe_us)),
    );
    line(
        &mut out,
        "  TCP / RPC-TCP",
        run.tcp_rpc
            .as_ref()
            .map(|r| format!("{} / {}", us(r.tcp_us), us(r.rpc_tcp_us))),
    );
    line(
        &mut out,
        "  UDP / RPC-UDP",
        run.udp_rpc
            .as_ref()
            .map(|r| format!("{} / {}", us(r.udp_us), us(r.rpc_udp_us))),
    );
    line(
        &mut out,
        "  TCP connect",
        run.connect.as_ref().map(|r| us(r.connect_us)),
    );
    let _ = writeln!(out, "File & VM latencies in microseconds");
    line(
        &mut out,
        "  file create / delete",
        run.fs_lat
            .as_ref()
            .map(|r| format!("{} / {} ({})", us(r.create_us), us(r.delete_us), r.fs)),
    );
    line(
        &mut out,
        "  disk command overhead",
        run.disk.as_ref().map(|r| us(r.overhead_us)),
    );
    let _ = writeln!(out, "Bandwidths in MB/s");
    line(
        &mut out,
        "  bcopy libc / unrolled",
        run.mem_bw
            .as_ref()
            .map(|r| format!("{} / {}", mb(r.bcopy_libc), mb(r.bcopy_unrolled))),
    );
    line(
        &mut out,
        "  memory read / write",
        run.mem_bw
            .as_ref()
            .map(|r| format!("{} / {}", mb(r.read), mb(r.write))),
    );
    line(
        &mut out,
        "  pipe / TCP",
        run.ipc_bw.as_ref().map(|r| {
            format!(
                "{} / {}",
                mb(r.pipe),
                r.tcp.map(mb).unwrap_or_else(|| "-".into())
            )
        }),
    );
    line(
        &mut out,
        "  file reread / mmap reread",
        run.file_bw
            .as_ref()
            .map(|r| format!("{} / {}", mb(r.file_read), mb(r.file_mmap))),
    );
    let _ = writeln!(out, "Memory latencies in nanoseconds");
    line(
        &mut out,
        "  L1 / L2 / main memory",
        run.cache_lat.as_ref().map(|r| {
            format!(
                "{:.1} / {:.1} / {:.1} ns",
                r.l1_ns.unwrap_or(0.0),
                r.l2_ns.unwrap_or(0.0),
                r.memory_ns
            )
        }),
    );
    out
}

/// Renders summaries for every host in a database, name order.
pub fn db_summary(db: &ResultsDb) -> String {
    let mut out = String::new();
    for (name, run) in db.iter() {
        out.push_str(&host_summary(name, run));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{MemBwRow, SyscallRow};

    fn partial_run() -> SuiteRun {
        SuiteRun {
            syscall: Some(SyscallRow {
                system: "h".into(),
                syscall_us: 0.5,
            }),
            mem_bw: Some(MemBwRow {
                system: "h".into(),
                bcopy_unrolled: 1000.0,
                bcopy_libc: 1200.0,
                read: 3000.0,
                write: 2000.0,
            }),
            ..Default::default()
        }
    }

    #[test]
    fn summary_prints_present_metrics() {
        let s = host_summary("testhost", &partial_run());
        assert!(s.contains("SUMMARY for testhost"));
        assert!(s.contains("0.50 us"));
        assert!(s.contains("1200 MB/s"));
    }

    #[test]
    fn missing_metrics_render_as_dashes_not_panics() {
        let s = host_summary("empty", &SuiteRun::default());
        assert!(s.contains("SUMMARY for empty"));
        assert!(s.contains('-'));
        assert!(!s.contains("0.00 us"), "phantom value in {s}");
    }

    #[test]
    fn db_summary_covers_every_host() {
        let mut db = ResultsDb::new();
        db.insert("beta", partial_run());
        db.insert("alpha", SuiteRun::default());
        let s = db_summary(&db);
        let alpha = s.find("SUMMARY for alpha").unwrap();
        let beta = s.find("SUMMARY for beta").unwrap();
        assert!(alpha < beta, "hosts out of order");
    }

    #[test]
    fn unit_formatting_switches_precision() {
        assert_eq!(us(250.0), "250 us");
        assert_eq!(us(2.5), "2.50 us");
    }
}
