//! Paper-vs-measured comparison.
//!
//! EXPERIMENTS.md records, for every table, what the paper saw and what
//! this host measured. [`compare_rows`] computes that pairing: given the
//! paper's values and the measured value for one metric, it reports where
//! the host would land in the 1995 ranking and the speedup over the paper's
//! best and worst — the "shape" checks (who wins, by what factor) that a
//! reproduction can meaningfully assert.

/// Direction of merit for a metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Better {
    /// Bandwidths.
    Higher,
    /// Latencies.
    Lower,
}

/// The outcome of comparing one measured value against the paper's column.
#[derive(Debug, Clone, PartialEq)]
pub struct Comparison {
    /// Metric name ("pipe latency (us)").
    pub metric: String,
    /// The measured value.
    pub measured: f64,
    /// Paper's best value.
    pub paper_best: f64,
    /// Paper's worst value.
    pub paper_worst: f64,
    /// Paper's median value.
    pub paper_median: f64,
    /// Rank the host would take among the paper's systems (1 = best).
    pub rank: usize,
    /// Total entrants including the host.
    pub out_of: usize,
    /// measured / paper_best as a merit ratio: > 1 means the host beats
    /// the 1995 best (for either direction of merit).
    pub vs_best: f64,
}

/// Compares `measured` against the paper's `values` for one metric.
///
/// # Panics
///
/// Panics if `values` is empty or contains non-finite entries.
pub fn compare_rows(metric: &str, measured: f64, values: &[f64], better: Better) -> Comparison {
    assert!(!values.is_empty(), "no paper values for {metric}");
    assert!(
        values.iter().all(|v| v.is_finite()),
        "non-finite paper value in {metric}"
    );
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    let (best, worst) = match better {
        Better::Higher => (*sorted.last().unwrap(), sorted[0]),
        Better::Lower => (sorted[0], *sorted.last().unwrap()),
    };
    let median = sorted[sorted.len() / 2];
    let beats = |a: f64, b: f64| match better {
        Better::Higher => a > b,
        Better::Lower => a < b,
    };
    let rank = 1 + values.iter().filter(|&&v| beats(v, measured)).count();
    let vs_best = match better {
        Better::Higher => measured / best,
        Better::Lower => best / measured,
    };
    Comparison {
        metric: metric.into(),
        measured,
        paper_best: best,
        paper_worst: worst,
        paper_median: median,
        rank,
        out_of: values.len() + 1,
        vs_best,
    }
}

impl Comparison {
    /// One formatted EXPERIMENTS.md line.
    pub fn summary(&self) -> String {
        format!(
            "{}: measured {:.2} vs paper best {:.2} / median {:.2} / worst {:.2} -> rank {}/{} ({:.1}x the 1995 best)",
            self.metric,
            self.measured,
            self.paper_best,
            self.paper_median,
            self.paper_worst,
            self.rank,
            self.out_of,
            self.vs_best
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lower_is_better_ranking() {
        // Paper latencies 10, 20, 30; host measures 15 -> rank 2 of 4.
        let c = compare_rows("lat", 15.0, &[10.0, 20.0, 30.0], Better::Lower);
        assert_eq!(c.rank, 2);
        assert_eq!(c.out_of, 4);
        assert_eq!(c.paper_best, 10.0);
        assert_eq!(c.paper_worst, 30.0);
        assert_eq!(c.paper_median, 20.0);
        assert!((c.vs_best - 10.0 / 15.0).abs() < 1e-12);
    }

    #[test]
    fn higher_is_better_ranking() {
        let c = compare_rows("bw", 500.0, &[100.0, 200.0], Better::Higher);
        assert_eq!(c.rank, 1, "host should beat all 1995 bandwidths");
        assert_eq!(c.paper_best, 200.0);
        assert!((c.vs_best - 2.5).abs() < 1e-12);
    }

    #[test]
    fn host_worse_than_everything_ranks_last() {
        let c = compare_rows("lat", 99.0, &[1.0, 2.0, 3.0], Better::Lower);
        assert_eq!(c.rank, 4);
        assert!(c.vs_best < 1.0);
    }

    #[test]
    fn summary_mentions_rank_and_ratio() {
        let c = compare_rows("pipe latency (us)", 5.0, &[26.0, 278.0], Better::Lower);
        let s = c.summary();
        assert!(s.contains("rank 1/3"), "{s}");
        assert!(s.contains("pipe latency"), "{s}");
    }

    #[test]
    #[should_panic(expected = "no paper values")]
    fn empty_paper_column_rejected() {
        compare_rows("x", 1.0, &[], Better::Lower);
    }

    #[test]
    fn ranking_is_stable_under_ties() {
        // The host ties a paper system: equal values do not "beat" the
        // host, so the tie resolves toward the better rank — and the
        // answer must not depend on the order the paper column arrives in.
        let columns: [&[f64]; 3] = [
            &[10.0, 20.0, 30.0],
            &[30.0, 20.0, 10.0],
            &[20.0, 30.0, 10.0],
        ];
        for values in columns {
            let c = compare_rows("lat", 20.0, values, Better::Lower);
            assert_eq!(c.rank, 2, "order {values:?}");
            assert_eq!(c.out_of, 4);
            assert_eq!(c.paper_median, 20.0);
        }
        for values in columns {
            let c = compare_rows("bw", 20.0, values, Better::Higher);
            assert_eq!(c.rank, 2, "order {values:?}");
        }
        // An exact tie with the best ranks first, both directions.
        assert_eq!(
            compare_rows("lat", 10.0, &[10.0, 20.0], Better::Lower).rank,
            1
        );
        assert_eq!(
            compare_rows("bw", 20.0, &[10.0, 20.0], Better::Higher).rank,
            1
        );
        // All-equal column: every entrant ties, rank stays 1.
        let c = compare_rows("lat", 5.0, &[5.0, 5.0, 5.0], Better::Lower);
        assert_eq!((c.rank, c.out_of), (1, 4));
        assert_eq!(c.paper_best, c.paper_worst);
    }
}
