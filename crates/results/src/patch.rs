//! Typed updates to a [`SuiteRun`], and the field map they write to.
//!
//! The execution engine runs benchmarks in isolation; each one hands back
//! [`TablePatch`]es instead of mutating shared state, and the engine
//! applies them in registry order. [`SuiteField`] names every slot of
//! [`SuiteRun`] so a completeness check can assert that each field is
//! produced by exactly one registry entry — the drift between a hard-coded
//! suite path and the registry that this design replaces.

use crate::schema::*;

/// One slot of a [`SuiteRun`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SuiteField {
    System,
    MemBw,
    IpcBw,
    RemoteBw,
    FileBw,
    CacheLat,
    Syscall,
    Signal,
    Proc,
    Ctx,
    PipeLat,
    TcpRpc,
    UdpRpc,
    RemoteLat,
    Connect,
    FsLat,
    Disk,
}

impl SuiteField {
    /// Every field of [`SuiteRun`], declaration order.
    pub const ALL: [SuiteField; 17] = [
        SuiteField::System,
        SuiteField::MemBw,
        SuiteField::IpcBw,
        SuiteField::RemoteBw,
        SuiteField::FileBw,
        SuiteField::CacheLat,
        SuiteField::Syscall,
        SuiteField::Signal,
        SuiteField::Proc,
        SuiteField::Ctx,
        SuiteField::PipeLat,
        SuiteField::TcpRpc,
        SuiteField::UdpRpc,
        SuiteField::RemoteLat,
        SuiteField::Connect,
        SuiteField::FsLat,
        SuiteField::Disk,
    ];

    /// Is this field populated on `run`?
    #[must_use]
    pub fn is_present_in(self, run: &SuiteRun) -> bool {
        match self {
            SuiteField::System => run.system.is_some(),
            SuiteField::MemBw => run.mem_bw.is_some(),
            SuiteField::IpcBw => run.ipc_bw.is_some(),
            SuiteField::RemoteBw => !run.remote_bw.is_empty(),
            SuiteField::FileBw => run.file_bw.is_some(),
            SuiteField::CacheLat => run.cache_lat.is_some(),
            SuiteField::Syscall => run.syscall.is_some(),
            SuiteField::Signal => run.signal.is_some(),
            SuiteField::Proc => run.proc.is_some(),
            SuiteField::Ctx => run.ctx.is_some(),
            SuiteField::PipeLat => run.pipe_lat.is_some(),
            SuiteField::TcpRpc => run.tcp_rpc.is_some(),
            SuiteField::UdpRpc => run.udp_rpc.is_some(),
            SuiteField::RemoteLat => !run.remote_lat.is_empty(),
            SuiteField::Connect => run.connect.is_some(),
            SuiteField::FsLat => run.fs_lat.is_some(),
            SuiteField::Disk => run.disk.is_some(),
        }
    }
}

/// One typed write to a [`SuiteRun`].
#[derive(Debug, Clone, PartialEq)]
pub enum TablePatch {
    System(SystemInfo),
    MemBw(MemBwRow),
    IpcBw(IpcBwRow),
    RemoteBw(Vec<RemoteBwRow>),
    FileBw(FileBwRow),
    CacheLat(CacheLatRow),
    Syscall(SyscallRow),
    Signal(SignalRow),
    Proc(ProcRow),
    Ctx(CtxRow),
    PipeLat(PipeLatRow),
    TcpRpc(TcpRpcRow),
    UdpRpc(UdpRpcRow),
    RemoteLat(Vec<RemoteLatRow>),
    Connect(ConnectRow),
    FsLat(FsLatRow),
    Disk(DiskRow),
}

impl TablePatch {
    /// The field this patch writes.
    #[must_use]
    pub fn field(&self) -> SuiteField {
        match self {
            TablePatch::System(_) => SuiteField::System,
            TablePatch::MemBw(_) => SuiteField::MemBw,
            TablePatch::IpcBw(_) => SuiteField::IpcBw,
            TablePatch::RemoteBw(_) => SuiteField::RemoteBw,
            TablePatch::FileBw(_) => SuiteField::FileBw,
            TablePatch::CacheLat(_) => SuiteField::CacheLat,
            TablePatch::Syscall(_) => SuiteField::Syscall,
            TablePatch::Signal(_) => SuiteField::Signal,
            TablePatch::Proc(_) => SuiteField::Proc,
            TablePatch::Ctx(_) => SuiteField::Ctx,
            TablePatch::PipeLat(_) => SuiteField::PipeLat,
            TablePatch::TcpRpc(_) => SuiteField::TcpRpc,
            TablePatch::UdpRpc(_) => SuiteField::UdpRpc,
            TablePatch::RemoteLat(_) => SuiteField::RemoteLat,
            TablePatch::Connect(_) => SuiteField::Connect,
            TablePatch::FsLat(_) => SuiteField::FsLat,
            TablePatch::Disk(_) => SuiteField::Disk,
        }
    }

    /// Write this patch into `run`, replacing any previous value.
    pub fn apply(self, run: &mut SuiteRun) {
        match self {
            TablePatch::System(v) => run.system = Some(v),
            TablePatch::MemBw(v) => run.mem_bw = Some(v),
            TablePatch::IpcBw(v) => run.ipc_bw = Some(v),
            TablePatch::RemoteBw(v) => run.remote_bw = v,
            TablePatch::FileBw(v) => run.file_bw = Some(v),
            TablePatch::CacheLat(v) => run.cache_lat = Some(v),
            TablePatch::Syscall(v) => run.syscall = Some(v),
            TablePatch::Signal(v) => run.signal = Some(v),
            TablePatch::Proc(v) => run.proc = Some(v),
            TablePatch::Ctx(v) => run.ctx = Some(v),
            TablePatch::PipeLat(v) => run.pipe_lat = Some(v),
            TablePatch::TcpRpc(v) => run.tcp_rpc = Some(v),
            TablePatch::UdpRpc(v) => run.udp_rpc = Some(v),
            TablePatch::RemoteLat(v) => run.remote_lat = v,
            TablePatch::Connect(v) => run.connect = Some(v),
            TablePatch::FsLat(v) => run.fs_lat = Some(v),
            TablePatch::Disk(v) => run.disk = Some(v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apply_populates_exactly_the_named_field() {
        let mut run = SuiteRun::default();
        let patch = TablePatch::Syscall(SyscallRow {
            system: "t".into(),
            syscall_us: 4.7,
        });
        let field = patch.field();
        assert_eq!(field, SuiteField::Syscall);
        assert!(!field.is_present_in(&run));
        patch.apply(&mut run);
        assert!(field.is_present_in(&run));
        // Every other field is still absent.
        let others = SuiteField::ALL.iter().filter(|f| **f != field);
        for f in others {
            assert!(!f.is_present_in(&run), "{f:?} unexpectedly present");
        }
    }

    #[test]
    fn vector_fields_count_presence_by_non_empty() {
        let mut run = SuiteRun::default();
        assert!(!SuiteField::RemoteBw.is_present_in(&run));
        TablePatch::RemoteBw(vec![RemoteBwRow {
            system: "t".into(),
            network: "fddi".into(),
            tcp: 9.5,
        }])
        .apply(&mut run);
        assert!(SuiteField::RemoteBw.is_present_in(&run));
    }
}
