//! Throughput–latency curves from open-loop rate sweeps.
//!
//! A [`crate::ScalingCurve`] answers "what happens with P generators",
//! each generator closed-loop. These types answer the other axis: one
//! generator offered a *scheduled arrival rate*, swept upward until the
//! service saturates. In open-loop mode every arrival's latency is
//! measured from its intended start time — queueing included — so the
//! curve shows what a request actually experiences at each offered rate,
//! not what a self-throttling client admits to. One [`RateSweep`] holds
//! one benchmark's sweep in one mode (`open` or `closed`); comparing the
//! two at the same offered rates makes the coordinated-omission gap a
//! number the differ can gate on.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// Achieved rate below this fraction of offered is a throughput plateau.
const KNEE_ACHIEVED_FRACTION: f64 = 0.9;

/// p99 beyond this multiple of the first point's p99 is a latency blowup.
const KNEE_P99_BLOWUP: f64 = 5.0;

/// One offered-rate point of a sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RatePoint {
    /// Scheduled arrival rate, operations per second.
    pub offered_per_s: f64,
    /// Completed-operation rate over the point's span, operations per
    /// second.
    pub achieved_per_s: f64,
    /// Operations completed.
    pub ops: u64,
    /// Arrivals whose service started after their intended time (the
    /// backlog the closed loop never sees; always 0 in closed mode).
    pub late: u64,
    /// Worst start lag behind the schedule, µs.
    pub max_lag_us: f64,
    /// Median latency, µs — from the intended arrival time in open mode,
    /// from service start in closed mode.
    pub p50_us: f64,
    /// 99th-percentile latency, µs (same origin as `p50_us`).
    pub p99_us: f64,
    /// Coefficient of variation of the per-arrival latencies.
    pub cv: f64,
    /// Quality grade of the latency samples ("good", "noisy", "suspect").
    pub quality: String,
    /// Why the point failed (generator error or panic); `None` for
    /// measured points. A failed point carries zeros elsewhere.
    pub error: Option<String>,
}

impl RatePoint {
    /// Did this point produce usable numbers?
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }

    /// Is this point past the knee relative to `first` (the lowest-rate
    /// ok point): achieved throughput fell off the offered rate, or p99
    /// blew up?
    #[must_use]
    pub fn saturated(&self, first: &RatePoint) -> bool {
        self.achieved_per_s < self.offered_per_s * KNEE_ACHIEVED_FRACTION
            || (first.p99_us > 0.0 && self.p99_us > first.p99_us * KNEE_P99_BLOWUP)
    }
}

/// One benchmark's throughput–latency sweep in one pacing mode.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RateSweep {
    /// Scalable-benchmark name (`lat_pipe`, `bw_tcp`, ...).
    pub bench: String,
    /// Pacing mode: `open` (latency from intended arrival) or `closed`
    /// (latency from service start — the omission bug, kept explicit for
    /// comparison).
    pub mode: String,
    /// Arrival process (`uniform` or `poisson`).
    pub process: String,
    /// Points in ascending offered-rate order (failed points included).
    pub points: Vec<RatePoint>,
    /// Index of the first saturated point, when the sweep found one.
    pub knee: Option<u32>,
}

impl RateSweep {
    /// Points that produced usable numbers.
    pub fn ok_points(&self) -> impl Iterator<Item = &RatePoint> {
        self.points.iter().filter(|pt| pt.is_ok())
    }

    /// First saturated ok point relative to the lowest-rate ok point
    /// (throughput plateau or p99 blowup), as an index into `points`.
    #[must_use]
    pub fn find_knee(&self) -> Option<usize> {
        let first = self.ok_points().next()?;
        self.points
            .iter()
            .position(|pt| pt.is_ok() && pt.saturated(first))
    }

    /// Recomputes and stores [`RateSweep::find_knee`].
    pub fn mark_knee(&mut self) {
        self.knee = self.find_knee().map(|i| i as u32);
    }

    /// Renders the sweep as a paper-style fixed-width table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "=== {} {}-loop sweep ({} arrivals, ops/s) ===\n",
            self.bench, self.mode, self.process
        ));
        out.push_str(&format!(
            "{:>12} {:>12} {:>10} {:>10} {:>8} {:>12} {:>8}  {}\n",
            "offered", "achieved", "p50(us)", "p99(us)", "late", "max_lag(us)", "quality", "detail"
        ));
        for (i, pt) in self.points.iter().enumerate() {
            let marker = if self.knee == Some(i as u32) {
                " <- knee"
            } else {
                ""
            };
            match &pt.error {
                Some(reason) => out.push_str(&format!(
                    "{:>12.0} {:>12} {:>10} {:>10} {:>8} {:>12} {:>8}  {}\n",
                    pt.offered_per_s, "-", "-", "-", "-", "-", "failed", reason
                )),
                None => out.push_str(&format!(
                    "{:>12.0} {:>12.0} {:>10.2} {:>10.2} {:>8} {:>12.2} {:>8}  {}\n",
                    pt.offered_per_s,
                    pt.achieved_per_s,
                    pt.p50_us,
                    pt.p99_us,
                    pt.late,
                    pt.max_lag_us,
                    pt.quality,
                    marker.trim_start()
                )),
            }
        }
        out
    }
}

impl fmt::Display for RateSweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Renders an open and a closed sweep of the same benchmark side by side,
/// pairing points by position (sweeps share their offered-rate ladder):
/// the omission gap — open p99 over closed p99 — as a column.
#[must_use]
pub fn render_side_by_side(open: &RateSweep, closed: &RateSweep) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "=== {} open vs closed ({} arrivals, ops/s) ===\n",
        open.bench, open.process
    ));
    out.push_str(&format!(
        "{:>12} {:>13} {:>13} {:>13} {:>13} {:>9}\n",
        "offered", "closed tput", "closed p99", "open tput", "open p99", "gap"
    ));
    for (i, o) in open.points.iter().enumerate() {
        let c = closed.points.get(i);
        let fmt_tput = |pt: Option<&RatePoint>| match pt {
            Some(p) if p.is_ok() => format!("{:.0}", p.achieved_per_s),
            _ => "-".to_string(),
        };
        let fmt_p99 = |pt: Option<&RatePoint>| match pt {
            Some(p) if p.is_ok() => format!("{:.2}", p.p99_us),
            _ => "-".to_string(),
        };
        let gap = match (o.is_ok().then_some(o), c.filter(|p| p.is_ok())) {
            (Some(o), Some(c)) if c.p99_us > 0.0 => format!("{:.1}x", o.p99_us / c.p99_us),
            _ => "-".to_string(),
        };
        let marker = if open.knee == Some(i as u32) {
            "  <- knee"
        } else {
            ""
        };
        out.push_str(&format!(
            "{:>12.0} {:>13} {:>13} {:>13} {:>13} {:>9}{}\n",
            o.offered_per_s,
            fmt_tput(c),
            fmt_p99(c),
            fmt_tput(Some(o)),
            fmt_p99(Some(o)),
            gap,
            marker
        ));
    }
    out
}

/// Deserializes a report's `rate_sweeps` field: absent (artifacts that
/// predate open-loop sweeps) means no sweeps, so older reports keep
/// loading.
pub(crate) fn rate_sweeps_from_value(value: &Value) -> Result<Vec<RateSweep>, DeError> {
    Ok(Option::<Vec<RateSweep>>::from_value(value)
        .map_err(|e| e.in_field("rate_sweeps"))?
        .unwrap_or_default())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(offered: f64, achieved: f64, p99_us: f64) -> RatePoint {
        RatePoint {
            offered_per_s: offered,
            achieved_per_s: achieved,
            ops: 256,
            late: 0,
            max_lag_us: 0.0,
            p50_us: p99_us * 0.6,
            p99_us,
            cv: 0.08,
            quality: "good".into(),
            error: None,
        }
    }

    fn sweep() -> RateSweep {
        let mut s = RateSweep {
            bench: "lat_pipe".into(),
            mode: "open".into(),
            process: "uniform".into(),
            points: vec![
                point(1000.0, 1000.0, 20.0),
                point(2000.0, 1990.0, 24.0),
                point(4000.0, 3100.0, 400.0),
            ],
            knee: None,
        };
        s.mark_knee();
        s
    }

    #[test]
    fn knee_detects_throughput_plateau_and_p99_blowup() {
        let s = sweep();
        // Third point: achieved 3100 < 0.9 * 4000 AND p99 20x the first.
        assert_eq!(s.knee, Some(2));

        // p99 blowup alone trips it too, even at full achieved rate.
        let mut t = sweep();
        t.points[2] = point(4000.0, 4000.0, 150.0);
        t.mark_knee();
        assert_eq!(t.knee, Some(2), "5x p99 is a knee");

        // A healthy sweep has none.
        let mut u = sweep();
        u.points[2] = point(4000.0, 3990.0, 30.0);
        u.mark_knee();
        assert_eq!(u.knee, None);
    }

    #[test]
    fn knee_skips_failed_points_and_needs_an_ok_reference() {
        let mut s = sweep();
        s.points[0].error = Some("setup failed".into());
        s.mark_knee();
        // Reference becomes the second point; third still saturates.
        assert_eq!(s.knee, Some(2));
        for pt in &mut s.points {
            pt.error = Some("boom".into());
        }
        s.mark_knee();
        assert_eq!(s.knee, None, "all-failed sweep has no knee");
    }

    #[test]
    fn sweep_roundtrips_through_value() {
        let s = sweep();
        let back = RateSweep::from_value(&s.to_value()).expect("roundtrip");
        assert_eq!(back, s);
    }

    #[test]
    fn render_marks_knee_and_failed_points() {
        let mut s = sweep();
        s.points[1].error = Some("generator 0: pipe closed".into());
        let text = s.render();
        assert!(text.contains("lat_pipe open-loop sweep"), "{text}");
        assert!(text.contains("failed"), "{text}");
        assert!(text.contains("pipe closed"), "{text}");
        assert!(text.contains("knee"), "{text}");
    }

    #[test]
    fn side_by_side_shows_the_omission_gap() {
        let open = sweep();
        let mut closed = sweep();
        closed.mode = "closed".into();
        for pt in &mut closed.points {
            pt.p99_us = 20.0;
        }
        let text = render_side_by_side(&open, &closed);
        assert!(text.contains("open vs closed"), "{text}");
        // 400 / 20 = 20x at the knee point.
        assert!(text.contains("20.0x"), "{text}");
        assert!(text.contains("<- knee"), "{text}");
    }

    #[test]
    fn missing_rate_sweeps_field_reads_as_empty() {
        assert_eq!(
            rate_sweeps_from_value(&Value::Null).expect("tolerant"),
            vec![]
        );
    }
}
