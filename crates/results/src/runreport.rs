//! Per-benchmark execution outcomes and measurement provenance.
//!
//! A suite run no longer succeeds or dies as a unit: the engine records one
//! [`BenchRecord`] per registry entry, whatever happened, and the resulting
//! [`RunReport`] travels next to the partial `SuiteRun` it annotates. This
//! is the machine-readable answer to "which numbers can I trust, and what
//! did the harness actually do to produce them?" (paper §3.4 discusses the
//! methodology; here we archive it per row).

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// What happened to one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub enum BenchStatus {
    /// Ran to completion; its patches were applied to the `SuiteRun`.
    Ok,
    /// Panicked or reported an error; reason attached.
    Failed(String),
    /// Did not finish inside the engine's per-benchmark budget.
    TimedOut {
        /// The budget that was exceeded, milliseconds.
        limit_ms: u64,
    },
    /// Pre-flight probe found the substrate missing (no loopback, no
    /// writable temp dir, ...); reason attached.
    Skipped(String),
}

impl BenchStatus {
    /// Did the benchmark produce usable results?
    #[must_use]
    pub fn is_ok(&self) -> bool {
        matches!(self, BenchStatus::Ok)
    }

    /// Short fixed-width tag for tables.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            BenchStatus::Ok => "ok",
            BenchStatus::Failed(_) => "failed",
            BenchStatus::TimedOut { .. } => "timeout",
            BenchStatus::Skipped(_) => "skipped",
        }
    }

    /// Human-readable detail (empty for `Ok`).
    #[must_use]
    pub fn detail(&self) -> String {
        match self {
            BenchStatus::Ok => String::new(),
            BenchStatus::Failed(reason) | BenchStatus::Skipped(reason) => reason.clone(),
            BenchStatus::TimedOut { limit_ms } => format!("exceeded {limit_ms} ms budget"),
        }
    }
}

// The derive shim only handles structs; enums lower by hand to a tagged
// object so archived reports stay self-describing.
impl Serialize for BenchStatus {
    fn to_value(&self) -> Value {
        let mut obj = Value::object();
        obj.set("status", Value::Str(self.label().to_owned()));
        match self {
            BenchStatus::Ok => {}
            BenchStatus::Failed(reason) | BenchStatus::Skipped(reason) => {
                obj.set("reason", Value::Str(reason.clone()));
            }
            BenchStatus::TimedOut { limit_ms } => {
                obj.set("limit_ms", Value::Int(i128::from(*limit_ms)));
            }
        }
        obj
    }
}

impl Deserialize for BenchStatus {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let obj = value.expect_object("BenchStatus")?;
        let tag = String::from_value(obj.field("status")).map_err(|e| e.in_field("status"))?;
        match tag.as_str() {
            "ok" => Ok(BenchStatus::Ok),
            "failed" => Ok(BenchStatus::Failed(
                String::from_value(obj.field("reason")).map_err(|e| e.in_field("reason"))?,
            )),
            "skipped" => Ok(BenchStatus::Skipped(
                String::from_value(obj.field("reason")).map_err(|e| e.in_field("reason"))?,
            )),
            "timeout" => Ok(BenchStatus::TimedOut {
                limit_ms: u64::from_value(obj.field("limit_ms"))
                    .map_err(|e| e.in_field("limit_ms"))?,
            }),
            other => Err(DeError::new(format!("unknown BenchStatus tag `{other}`"))),
        }
    }
}

/// How a benchmark's headline numbers were obtained: the calibration
/// decisions and sample dispersion of its *noisiest* harness measurement,
/// plus how many measurements it made in total.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Provenance {
    /// Timed repetitions per measurement.
    pub repetitions: u32,
    /// Untimed warm-up runs before sampling.
    pub warmup_runs: u32,
    /// Calibrated loop iterations per timed interval.
    pub calibrated_iterations: u64,
    /// Probed clock resolution, ns.
    pub clock_resolution_ns: f64,
    /// Fastest repetition, ns per operation.
    pub sample_min_ns: f64,
    /// Median (p50) repetition, ns per operation.
    pub sample_median_ns: f64,
    /// 90th-percentile repetition, ns per operation.
    pub sample_p90_ns: f64,
    /// 99th-percentile repetition, ns per operation.
    pub sample_p99_ns: f64,
    /// Slowest repetition, ns per operation.
    pub sample_max_ns: f64,
    /// Median absolute deviation of the repetitions, ns.
    pub mad_ns: f64,
    /// `(median - min) / min` dispersion; near zero on a quiet machine.
    pub min_median_gap: f64,
    /// Coefficient of variation (stddev / mean) across repetitions. This
    /// is the noise band the regression differ judges deltas against.
    pub cv: f64,
    /// Repetitions outside the Tukey fences (`1.5·IQR` beyond the
    /// quartiles).
    pub iqr_outliers: u32,
    /// Quality grade derived from CV, outlier fraction and overhead
    /// clamping: `"good"`, `"noisy"` or `"suspect"` (see
    /// `lmb_timing::Quality`).
    pub quality: String,
    /// Harness measurements the benchmark performed in total.
    pub measure_calls: u32,
    /// Repetitions of the recorded measurement whose interval fell below
    /// the clock-read overhead and were clamped at 0.0 instead of going
    /// negative. Nonzero forces `quality` to `"suspect"`: the samples are
    /// floors, not measurements.
    pub clamped_samples: u32,
}

// Hand-written so the field added after PR 4 (`clamped_samples`) defaults
// to 0 when absent: archived baselines from older binaries keep loading.
impl Deserialize for Provenance {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let obj = value.expect_object("Provenance")?;
        fn field<T: Deserialize>(obj: &Value, name: &str) -> Result<T, DeError> {
            T::from_value(obj.field(name)).map_err(|e| e.in_field(name))
        }
        Ok(Provenance {
            repetitions: field(obj, "repetitions")?,
            warmup_runs: field(obj, "warmup_runs")?,
            calibrated_iterations: field(obj, "calibrated_iterations")?,
            clock_resolution_ns: field(obj, "clock_resolution_ns")?,
            sample_min_ns: field(obj, "sample_min_ns")?,
            sample_median_ns: field(obj, "sample_median_ns")?,
            sample_p90_ns: field(obj, "sample_p90_ns")?,
            sample_p99_ns: field(obj, "sample_p99_ns")?,
            sample_max_ns: field(obj, "sample_max_ns")?,
            mad_ns: field(obj, "mad_ns")?,
            min_median_gap: field(obj, "min_median_gap")?,
            cv: field(obj, "cv")?,
            iqr_outliers: field(obj, "iqr_outliers")?,
            quality: field(obj, "quality")?,
            measure_calls: field(obj, "measure_calls")?,
            clamped_samples: field::<Option<u32>>(obj, "clamped_samples")?.unwrap_or(0),
        })
    }
}

/// Kernel resource accounting across a benchmark's final attempt
/// (`getrusage`, thread scope).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct ResourceUsage {
    /// User CPU time spent, microseconds.
    pub utime_us: u64,
    /// System CPU time spent, microseconds.
    pub stime_us: u64,
    /// Peak resident set size, kilobytes.
    pub maxrss_kb: u64,
    /// Minor page faults taken.
    pub minor_faults: u64,
    /// Major page faults taken.
    pub major_faults: u64,
    /// Voluntary context switches.
    pub vol_ctx_switches: u64,
    /// Involuntary context switches — scheduler preemptions during the
    /// measurement, the disturbance §3.4 could only infer.
    pub invol_ctx_switches: u64,
    /// True when other worker threads were running benchmarks while this
    /// attempt executed: the counts are this thread's own
    /// (`RUSAGE_THREAD`), but preemptions and faults reflect a contended
    /// machine, so consumers (the differ included) must not treat the
    /// delta as an isolated-run measurement.
    pub contended: bool,
}

// Hand-written so the field added after PR 3 (`contended`) defaults to
// false when absent: archived baselines from older binaries keep loading.
impl Deserialize for ResourceUsage {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let obj = value.expect_object("ResourceUsage")?;
        fn field<T: Deserialize>(obj: &Value, name: &str) -> Result<T, DeError> {
            T::from_value(obj.field(name)).map_err(|e| e.in_field(name))
        }
        Ok(ResourceUsage {
            utime_us: field(obj, "utime_us")?,
            stime_us: field(obj, "stime_us")?,
            maxrss_kb: field(obj, "maxrss_kb")?,
            minor_faults: field(obj, "minor_faults")?,
            major_faults: field(obj, "major_faults")?,
            vol_ctx_switches: field(obj, "vol_ctx_switches")?,
            invol_ctx_switches: field(obj, "invol_ctx_switches")?,
            contended: Option::<bool>::from_value(obj.field("contended"))
                .map_err(|e| e.in_field("contended"))?
                .unwrap_or(false),
        })
    }
}

/// Hardware-counter deltas across a benchmark's final attempt
/// (`perf_event_open` group, thread scope, overhead-compensated the way
/// §3.4 compensates clock reads).
///
/// Raw counts are archived; the derived figures of merit (IPC and
/// misses per kilo-instruction) are computed on demand so the archive
/// never disagrees with its own ratios.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterDelta {
    /// Core clock cycles.
    pub cycles: u64,
    /// Retired instructions.
    pub instructions: u64,
    /// Mispredicted branches.
    pub branch_misses: u64,
    /// Last-level cache misses.
    pub cache_misses: u64,
    /// Data-TLB read misses.
    pub dtlb_misses: u64,
    /// Wall time the counter group was enabled, nanoseconds.
    pub enabled_ns: u64,
    /// Time the group actually counted on the PMU, nanoseconds.
    pub running_ns: u64,
}

impl CounterDelta {
    /// Instructions per cycle — the headline "what did the loop do"
    /// figure; `None` when no cycles were counted.
    #[must_use]
    pub fn ipc(&self) -> Option<f64> {
        if self.cycles == 0 {
            None
        } else {
            Some(self.instructions as f64 / self.cycles as f64)
        }
    }

    /// Branch misses per kilo-instruction; `None` without instructions.
    #[must_use]
    pub fn branch_miss_pki(&self) -> Option<f64> {
        self.per_kilo_instruction(self.branch_misses)
    }

    /// Cache misses per kilo-instruction; `None` without instructions.
    #[must_use]
    pub fn cache_miss_pki(&self) -> Option<f64> {
        self.per_kilo_instruction(self.cache_misses)
    }

    /// dTLB read misses per kilo-instruction; `None` without
    /// instructions.
    #[must_use]
    pub fn dtlb_miss_pki(&self) -> Option<f64> {
        self.per_kilo_instruction(self.dtlb_misses)
    }

    /// True when the kernel time-sliced the group (`running < enabled`):
    /// the counts are scaled samples, not exact totals, and consumers
    /// should distrust small differences.
    #[must_use]
    pub fn multiplexed(&self) -> bool {
        self.running_ns < self.enabled_ns
    }

    fn per_kilo_instruction(&self, count: u64) -> Option<f64> {
        if self.instructions == 0 {
            None
        } else {
            Some(count as f64 * 1000.0 / self.instructions as f64)
        }
    }
}

/// What the *harness itself* cost to produce a run: total suite wall time
/// with a per-phase breakdown, plus the trace sink's emission accounting.
/// This is the suite's self-budget — `lmbench diff` compares it run over
/// run (lower is better) so a measurement-infrastructure regression is as
/// visible as a kernel one.
///
/// Phases overlap (probe/warmup/calibrate/attempt all nest inside the
/// suite, and pool workers run concurrently), so the per-phase columns sum
/// to *CPU-ish* time that may exceed `suite_ms` on multi-worker runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct HarnessMetrics {
    /// Whole-suite wall time, `Engine::execute` entry to exit, ms.
    pub suite_ms: f64,
    /// Substrate probing across all benchmarks, ms.
    pub probe_ms: f64,
    /// Untimed warm-up loops across all measurements, ms.
    pub warmup_ms: f64,
    /// Iteration-count calibration across all measurements, ms.
    pub calibrate_ms: f64,
    /// First attempts: benchmark-thread lifetime across benchmarks, ms.
    pub attempt_ms: f64,
    /// Noise-retry attempts beyond the first, ms.
    pub retry_ms: f64,
    /// Trace events delivered to the installed sink (0 when untraced).
    pub trace_events: u64,
    /// Bytes the JSONL trace sink wrote.
    pub trace_bytes: u64,
    /// Batched writes the JSONL trace sink performed.
    pub trace_writes: u64,
    /// Trace events lost to serialization or write errors.
    pub trace_dropped: u64,
}

/// How a virtual (simulated) run was seeded: enough to re-run the exact
/// same suite — same scripted costs, same clock behaviour — from the
/// report alone. Absent on real-hardware runs, which is the common case,
/// so the field is omitted from the wire entirely when `None`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct SimProvenance {
    /// The seed every scripted cost model and clock derived from.
    pub seed: u64,
    /// Virtual clock tick granularity, ns.
    pub resolution_ns: f64,
    /// Virtual cost charged per clock read, ns.
    pub read_overhead_ns: f64,
    /// Virtual jitter spread added per clock read, ns.
    pub read_jitter_ns: f64,
}

/// One headline number a benchmark produced, archived so run-over-run
/// diffs need only the report JSON.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricValue {
    /// What was measured (`pipe`, `fork`, ...; may be empty).
    pub label: String,
    /// The value, in `unit`s.
    pub value: f64,
    /// Unit name (`MB/s`, `us`, `ns`, ...).
    pub unit: String,
}

/// One registry entry's outcome within a suite run.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Registry name (`lat_syscall`, `bw_mem`, ...).
    pub name: String,
    /// What the benchmark produces ("Table 7", ...).
    pub produces: String,
    /// Outcome.
    pub status: BenchStatus,
    /// Attempts made (> 1 when the noise-retry policy re-ran it).
    pub attempts: u32,
    /// Wall-clock time spent across all attempts, milliseconds.
    pub wall_ms: f64,
    /// Whether the engine serialized this benchmark (interference-sensitive).
    pub exclusive: bool,
    /// Measurement provenance, when the benchmark ran far enough to record
    /// any (absent for skips and derived/model entries).
    pub provenance: Option<Provenance>,
    /// Kernel resource accounting across the final attempt (absent for
    /// skips and timeouts — an abandoned thread cannot be measured).
    pub rusage: Option<ResourceUsage>,
    /// Hardware-counter deltas across the final attempt (absent when the
    /// host denies `perf_event_open` — containers, strict
    /// `perf_event_paranoid` — and for skips and timeouts).
    pub counters: Option<CounterDelta>,
    /// Headline metrics the benchmark reported, in display order. These
    /// are the values the regression differ compares run over run.
    pub metrics: Vec<MetricValue>,
    /// The benchmark's span id in the run's trace (when `--trace` was
    /// active), linking this row to its `span_start`/`span_end` events.
    pub span: Option<u64>,
}

// Hand-written so the field added in PR 7 (`counters`) is *omitted* when
// absent rather than serialized as null: a run on a counter-denied host
// must produce byte-identical report JSON to a pre-counter binary, and
// old reports (no `counters` key) must read back as `None`.
impl Serialize for BenchRecord {
    fn to_value(&self) -> Value {
        let mut obj = Value::object();
        obj.set("name", self.name.to_value());
        obj.set("produces", self.produces.to_value());
        obj.set("status", self.status.to_value());
        obj.set("attempts", self.attempts.to_value());
        obj.set("wall_ms", self.wall_ms.to_value());
        obj.set("exclusive", self.exclusive.to_value());
        obj.set("provenance", self.provenance.to_value());
        obj.set("rusage", self.rusage.to_value());
        if self.counters.is_some() {
            obj.set("counters", self.counters.to_value());
        }
        obj.set("metrics", self.metrics.to_value());
        obj.set("span", self.span.to_value());
        obj
    }
}

impl Deserialize for BenchRecord {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let obj = value.expect_object("BenchRecord")?;
        fn field<T: Deserialize>(obj: &Value, name: &str) -> Result<T, DeError> {
            T::from_value(obj.field(name)).map_err(|e| e.in_field(name))
        }
        Ok(BenchRecord {
            name: field(obj, "name")?,
            produces: field(obj, "produces")?,
            status: field(obj, "status")?,
            attempts: field(obj, "attempts")?,
            wall_ms: field(obj, "wall_ms")?,
            exclusive: field(obj, "exclusive")?,
            provenance: field(obj, "provenance")?,
            rusage: field(obj, "rusage")?,
            counters: field(obj, "counters")?,
            metrics: field(obj, "metrics")?,
            span: field(obj, "span")?,
        })
    }
}

/// Everything the engine can say about a suite run, beyond the results.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Schema version this report was written with (see
    /// [`crate::store::SCHEMA_VERSION`]); reports that predate the field
    /// read as version 1.
    pub schema_version: u32,
    /// One record per registry entry, in registry order.
    pub records: Vec<BenchRecord>,
    /// Load-scaling curves measured by `lmbench scale` (empty for plain
    /// suite runs and for reports archived before the scale subsystem).
    pub scaling: Vec<crate::scaling::ScalingCurve>,
    /// Open-/closed-loop throughput–latency sweeps measured by
    /// `lmbench load` (empty for other runs and for reports archived
    /// before open-loop load generation).
    pub rate_sweeps: Vec<crate::ratesweep::RateSweep>,
    /// The harness's own execution budget (absent in reports archived
    /// before self-budget tracking, and in hand-built reports).
    pub harness: Option<HarnessMetrics>,
    /// Virtual-run provenance: present only when the suite executed under
    /// a seeded virtual clock (`lmb-timing`'s `SimClock`) rather than
    /// hardware.
    pub sim: Option<SimProvenance>,
}

impl Default for RunReport {
    fn default() -> RunReport {
        RunReport {
            schema_version: crate::store::SCHEMA_VERSION,
            records: Vec::new(),
            scaling: Vec::new(),
            rate_sweeps: Vec::new(),
            harness: None,
            sim: None,
        }
    }
}

// Hand-written so `scaling` and `schema_version` stay optional on the
// wire: reports archived before the scale subsystem carry only `records`,
// and reports archived before the versioning policy read as version 1.
// `harness` follows the `counters` discipline: omitted when absent, so
// a budget-less report stays byte-identical to a pre-budget binary's;
// `rate_sweeps` likewise: omitted when empty, so a sweep-less report
// stays byte-identical to a pre-open-loop binary's.
impl Serialize for RunReport {
    fn to_value(&self) -> Value {
        let mut obj = Value::object();
        obj.set(
            "schema_version",
            Value::Int(i128::from(self.schema_version)),
        );
        obj.set("records", self.records.to_value());
        obj.set("scaling", self.scaling.to_value());
        if !self.rate_sweeps.is_empty() {
            obj.set("rate_sweeps", self.rate_sweeps.to_value());
        }
        if self.harness.is_some() {
            obj.set("harness", self.harness.to_value());
        }
        if self.sim.is_some() {
            obj.set("sim", self.sim.to_value());
        }
        obj
    }
}

impl Deserialize for RunReport {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let obj = value.expect_object("RunReport")?;
        Ok(RunReport {
            schema_version: Option::<u32>::from_value(obj.field("schema_version"))
                .map_err(|e| e.in_field("schema_version"))?
                .unwrap_or(1),
            records: Vec::from_value(obj.field("records")).map_err(|e| e.in_field("records"))?,
            scaling: crate::scaling::scaling_from_value(obj.field("scaling"))?,
            rate_sweeps: crate::ratesweep::rate_sweeps_from_value(obj.field("rate_sweeps"))?,
            harness: Option::<HarnessMetrics>::from_value(obj.field("harness"))
                .map_err(|e| e.in_field("harness"))?,
            sim: Option::<SimProvenance>::from_value(obj.field("sim"))
                .map_err(|e| e.in_field("sim"))?,
        })
    }
}

impl RunReport {
    /// Look up a record by benchmark name.
    #[must_use]
    pub fn find(&self, name: &str) -> Option<&BenchRecord> {
        self.records.iter().find(|r| r.name == name)
    }

    /// Count of records with the given status label.
    #[must_use]
    pub fn count(&self, label: &str) -> usize {
        self.records
            .iter()
            .filter(|r| r.status.label() == label)
            .count()
    }

    /// Were all benchmarks that actually ran successful?
    #[must_use]
    pub fn all_ok(&self) -> bool {
        self.records
            .iter()
            .all(|r| matches!(r.status, BenchStatus::Ok | BenchStatus::Skipped(_)))
    }

    /// Serializes to pretty-printed JSON (the `--report-json` artifact).
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report types always serialize")
    }

    /// Parses a report back from [`RunReport::to_json`] output.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Render the report as a fixed-width text table with a trailing
    /// status summary line.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<16} {:<22} {:<8} {:>3} {:>9}  {}\n",
            "benchmark", "produces", "status", "try", "wall(ms)", "detail"
        ));
        for r in &self.records {
            let detail = r.status.detail();
            out.push_str(&format!(
                "{:<16} {:<22} {:<8} {:>3} {:>9.1}  {}\n",
                r.name,
                r.produces,
                r.status.label(),
                r.attempts,
                r.wall_ms,
                detail
            ));
        }
        out.push_str(&format!(
            "{} ok, {} failed, {} timeout, {} skipped of {} benchmarks\n",
            self.count("ok"),
            self.count("failed"),
            self.count("timeout"),
            self.count("skipped"),
            self.records.len()
        ));
        out
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(name: &str, status: BenchStatus) -> BenchRecord {
        BenchRecord {
            name: name.into(),
            produces: "Table 7".into(),
            status,
            attempts: 1,
            wall_ms: 12.5,
            exclusive: false,
            provenance: None,
            rusage: None,
            counters: None,
            metrics: Vec::new(),
            span: None,
        }
    }

    #[test]
    fn status_labels_and_details() {
        assert!(BenchStatus::Ok.is_ok());
        assert_eq!(BenchStatus::Ok.detail(), "");
        let failed = BenchStatus::Failed("index out of bounds".into());
        assert!(!failed.is_ok());
        assert_eq!(failed.label(), "failed");
        assert_eq!(
            BenchStatus::TimedOut { limit_ms: 500 }.detail(),
            "exceeded 500 ms budget"
        );
    }

    #[test]
    fn every_status_roundtrips_through_value() {
        let statuses = [
            BenchStatus::Ok,
            BenchStatus::Failed("boom".into()),
            BenchStatus::TimedOut { limit_ms: 1234 },
            BenchStatus::Skipped("no loopback".into()),
        ];
        for s in &statuses {
            let back = BenchStatus::from_value(&s.to_value()).expect("roundtrip");
            assert_eq!(&back, s);
        }
    }

    #[test]
    fn report_counts_and_render() {
        let report = RunReport {
            records: vec![
                record("lat_syscall", BenchStatus::Ok),
                record("bw_mem", BenchStatus::Failed("forced panic".into())),
                record("lat_ctx", BenchStatus::TimedOut { limit_ms: 100 }),
                record("lat_disk", BenchStatus::Skipped("no raw device".into())),
            ],
            ..Default::default()
        };
        assert_eq!(report.count("ok"), 1);
        assert_eq!(report.count("failed"), 1);
        assert!(!report.all_ok());
        assert!(report.find("bw_mem").is_some());
        let text = report.render();
        assert!(text.contains("forced panic"));
        assert!(text.contains("1 ok, 1 failed, 1 timeout, 1 skipped of 4"));
    }

    #[test]
    fn display_matches_render() {
        let report = RunReport {
            records: vec![
                record("lat_syscall", BenchStatus::Ok),
                record("lat_ctx", BenchStatus::Skipped("no loopback".into())),
            ],
            ..Default::default()
        };
        let shown = format!("{report}");
        assert_eq!(shown, report.render());
        assert!(shown.starts_with("benchmark"), "header row first: {shown}");
        assert!(shown.contains("no loopback"));
        assert!(shown.ends_with("of 2 benchmarks\n"));
    }

    #[test]
    fn report_json_roundtrips() {
        let report = RunReport {
            records: vec![
                record("lat_syscall", BenchStatus::Ok),
                record("bw_mem", BenchStatus::TimedOut { limit_ms: 77 }),
            ],
            ..Default::default()
        };
        let back = RunReport::from_json(&report.to_json()).expect("parse own JSON");
        assert_eq!(back, report);
    }

    #[test]
    fn span_link_roundtrips() {
        let mut rec = record("lat_syscall", BenchStatus::Ok);
        rec.span = Some(41);
        let report = RunReport {
            records: vec![rec.clone(), record("bw_mem", BenchStatus::Ok)],
            ..Default::default()
        };
        let back = RunReport::from_value(&report.to_value()).expect("roundtrip");
        assert_eq!(back.records[0].span, Some(41));
        assert_eq!(back.records[1].span, None);
        assert_eq!(back, report);
    }

    #[test]
    fn record_with_provenance_roundtrips() {
        let mut rec = record("lat_syscall", BenchStatus::Ok);
        rec.provenance = Some(Provenance {
            repetitions: 11,
            warmup_runs: 2,
            calibrated_iterations: 4096,
            clock_resolution_ns: 30.0,
            sample_min_ns: 100.0,
            sample_median_ns: 104.0,
            sample_p90_ns: 120.0,
            sample_p99_ns: 130.0,
            sample_max_ns: 131.0,
            mad_ns: 3.0,
            min_median_gap: 0.04,
            cv: 0.09,
            iqr_outliers: 1,
            quality: "good".into(),
            measure_calls: 3,
            clamped_samples: 2,
        });
        let report = RunReport {
            records: vec![rec.clone()],
            ..Default::default()
        };
        let back = RunReport::from_value(&report.to_value()).expect("roundtrip");
        assert_eq!(back.records[0], rec);
    }

    #[test]
    fn provenance_without_clamped_field_reads_as_unclamped() {
        // Reports archived before overhead-clamp accounting existed must
        // keep loading, with zero clamps assumed.
        let mut p = Provenance {
            repetitions: 5,
            warmup_runs: 1,
            calibrated_iterations: 256,
            clock_resolution_ns: 30.0,
            sample_min_ns: 10.0,
            sample_median_ns: 11.0,
            sample_p90_ns: 12.0,
            sample_p99_ns: 12.5,
            sample_max_ns: 13.0,
            mad_ns: 0.5,
            min_median_gap: 0.1,
            cv: 0.05,
            iqr_outliers: 0,
            quality: "good".into(),
            measure_calls: 1,
            clamped_samples: 7,
        };
        let mut value = p.to_value();
        value.set("clamped_samples", Value::Null);
        p.clamped_samples = 0;
        assert_eq!(Provenance::from_value(&value).expect("tolerant"), p);
    }

    #[test]
    fn rusage_without_contended_field_reads_as_uncontended() {
        // Reports archived before the flag existed must keep loading.
        let mut usage = ResourceUsage {
            utime_us: 10,
            stime_us: 5,
            maxrss_kb: 100,
            minor_faults: 1,
            major_faults: 0,
            vol_ctx_switches: 2,
            invol_ctx_switches: 1,
            contended: true,
        };
        let mut value = usage.to_value();
        value.set("contended", Value::Null);
        usage.contended = false;
        assert_eq!(ResourceUsage::from_value(&value).expect("tolerant"), usage);
    }

    #[test]
    fn counter_delta_derives_ipc_and_pki_figures() {
        let d = CounterDelta {
            cycles: 2_000,
            instructions: 4_000,
            branch_misses: 8,
            cache_misses: 2,
            dtlb_misses: 1,
            enabled_ns: 1_000,
            running_ns: 1_000,
        };
        assert_eq!(d.ipc(), Some(2.0));
        assert_eq!(d.branch_miss_pki(), Some(2.0));
        assert_eq!(d.cache_miss_pki(), Some(0.5));
        assert_eq!(d.dtlb_miss_pki(), Some(0.25));
        assert!(!d.multiplexed());
        // Degenerate deltas derive nothing rather than dividing by zero.
        let empty = CounterDelta::default();
        assert_eq!(empty.ipc(), None);
        assert_eq!(empty.branch_miss_pki(), None);
        assert_eq!(empty.cache_miss_pki(), None);
        assert_eq!(empty.dtlb_miss_pki(), None);
        let sliced = CounterDelta {
            enabled_ns: 100,
            running_ns: 40,
            ..CounterDelta::default()
        };
        assert!(sliced.multiplexed());
    }

    #[test]
    fn record_without_counters_field_reads_as_none() {
        // Reports archived before counters existed must keep loading.
        let rec = record("lat_syscall", BenchStatus::Ok);
        let value = rec.to_value();
        let rendered = serde_json::to_string(&value).unwrap();
        assert!(
            !rendered.contains("counters"),
            "absent counters must be omitted, not null: {rendered}"
        );
        let back = BenchRecord::from_value(&value).expect("tolerant");
        assert_eq!(back.counters, None);
        assert_eq!(back, rec);
    }

    #[test]
    fn counter_absence_survives_a_round_trip() {
        // A counter-denied host must write byte-identical record JSON to
        // a pre-counter binary: parse → re-serialize must not invent the
        // key.
        let report = RunReport {
            records: vec![record("lat_syscall", BenchStatus::Ok)],
            ..Default::default()
        };
        let json = report.to_json();
        let back = RunReport::from_json(&json).expect("roundtrip");
        assert_eq!(back.to_json(), json);
        assert!(!json.contains("counters"));
    }

    #[test]
    fn harness_absence_survives_a_round_trip() {
        // Reports without a self-budget (older binaries, hand-built
        // fixtures) must not grow the key on re-serialization.
        let report = RunReport {
            records: vec![record("lat_syscall", BenchStatus::Ok)],
            ..Default::default()
        };
        let json = report.to_json();
        assert!(!json.contains("harness"), "{json}");
        let back = RunReport::from_json(&json).expect("roundtrip");
        assert_eq!(back.harness, None);
        assert_eq!(back.to_json(), json);
    }

    #[test]
    fn harness_budget_roundtrips() {
        let report = RunReport {
            records: vec![record("lat_syscall", BenchStatus::Ok)],
            harness: Some(HarnessMetrics {
                suite_ms: 1234.5,
                probe_ms: 1.25,
                warmup_ms: 40.0,
                calibrate_ms: 210.0,
                attempt_ms: 950.0,
                retry_ms: 120.0,
                trace_events: 4096,
                trace_bytes: 1_048_576,
                trace_writes: 16,
                trace_dropped: 1,
            }),
            ..Default::default()
        };
        let json = report.to_json();
        assert!(json.contains("\"harness\""), "{json}");
        assert!(json.contains("calibrate_ms"), "{json}");
        let back = RunReport::from_json(&json).expect("roundtrip");
        assert_eq!(back, report);
    }

    #[test]
    fn record_with_counters_roundtrips() {
        let mut rec = record("bw_mem", BenchStatus::Ok);
        rec.counters = Some(CounterDelta {
            cycles: 1_200_000,
            instructions: 2_400_000,
            branch_misses: 310,
            cache_misses: 42,
            dtlb_misses: 5,
            enabled_ns: 500_000,
            running_ns: 400_000,
        });
        let report = RunReport {
            records: vec![rec.clone()],
            ..Default::default()
        };
        let json = report.to_json();
        assert!(json.contains("\"counters\""), "{json}");
        assert!(json.contains("dtlb_misses"), "{json}");
        let back = RunReport::from_json(&json).expect("roundtrip");
        assert_eq!(back.records[0], rec);
        assert!(back.records[0].counters.unwrap().multiplexed());
    }

    #[test]
    fn record_with_rusage_and_metrics_roundtrips() {
        let mut rec = record("bw_pipe_tcp", BenchStatus::Ok);
        rec.rusage = Some(ResourceUsage {
            utime_us: 1500,
            stime_us: 900,
            maxrss_kb: 4096,
            minor_faults: 240,
            major_faults: 1,
            vol_ctx_switches: 12,
            invol_ctx_switches: 3,
            contended: true,
        });
        rec.metrics = vec![
            MetricValue {
                label: "pipe".into(),
                value: 330.4,
                unit: "MB/s".into(),
            },
            MetricValue {
                label: "TCP".into(),
                value: 280.0,
                unit: "MB/s".into(),
            },
        ];
        let report = RunReport {
            records: vec![rec.clone()],
            ..Default::default()
        };
        let json = report.to_json();
        assert!(json.contains("invol_ctx_switches"), "{json}");
        assert!(json.contains("MB/s"), "{json}");
        let back = RunReport::from_json(&json).expect("roundtrip");
        assert_eq!(back.records[0], rec);
    }
}
