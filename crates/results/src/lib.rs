//! Results database, the embedded paper dataset, table rendering and ASCII
//! plots.
//!
//! "lmbench includes a database of results that is useful for comparison
//! purposes. ... All of the tables in this paper were produced from the
//! database included in lmbench" (§3.5). This crate plays that role for
//! lmbench-rs:
//!
//! * [`schema`] — typed rows for every table in the paper, serializable so
//!   suite runs can be stored and merged.
//! * [`dataset`] — the paper's own numbers (Tables 1–17), transcribed, so
//!   every table can be regenerated and a freshly measured host can be
//!   appended as one more row.
//! * [`table`] — the paper's table conventions: "All of the tables are
//!   sorted, from best to worst. ... The sorted column's heading will be in
//!   bold" (§4.1).
//! * [`plot`] — terminal line plots for Figures 1 and 2.
//! * [`db`] — JSON persistence and merging of result sets.
//! * [`baseline`] / [`diff`] — archived reference runs keyed by host
//!   fingerprint, and the noise-aware differ that judges run-over-run
//!   deltas against each measurement's own recorded CV band (§3.4).
//!
//! Transcription note: the available source scan interleaves some table
//! cells (notably Tables 2, 3, 5, 6, 7, 10 and 16). Row membership and
//! value magnitudes are faithful; a few intra-row column assignments are
//! best-effort reconstructions and are marked in `dataset.rs`.

pub mod baseline;
pub mod compare;
pub mod dataset;
pub mod db;
pub mod diff;
pub mod patch;
pub mod plot;
pub mod ratesweep;
pub mod runreport;
pub mod scaling;
pub mod schema;
pub mod store;
pub mod summary;
pub mod table;

pub use baseline::{fingerprint, Baseline, BaselineStore};
pub use compare::{compare_rows, Better, Comparison};
pub use db::ResultsDb;
pub use diff::{DiffClass, DiffRow, ReportDiff, SignificanceRule};
pub use patch::{SuiteField, TablePatch};
pub use plot::{AsciiPlot, Series};
pub use ratesweep::{render_side_by_side, RatePoint, RateSweep};
pub use runreport::{
    BenchRecord, BenchStatus, CounterDelta, HarnessMetrics, MetricValue, Provenance, ResourceUsage,
    RunReport, SimProvenance,
};
pub use scaling::{GeneratorSample, ScalePoint, ScalingCurve};
pub use schema::*;
pub use store::{load_entry, DirStore, MemoryStore, ReportStore, SCHEMA_VERSION};
pub use summary::{db_summary, host_summary};
pub use table::{Align, SortOrder, Table};
