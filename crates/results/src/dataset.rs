//! The paper's own results, transcribed (Tables 1–17).
//!
//! "lmbench includes a database of results that is useful for comparison
//! purposes" — this module is that database for the 1996 paper itself, so
//! report tooling can regenerate every table and append freshly measured
//! rows next to the 1995 machines.
//!
//! Transcription fidelity: Tables 4, 8, 9, 11, 12, 13, 14, 15 and 17 read
//! cleanly from the source. In Tables 2, 3, 5, 6, 7, 10 and 16 the source
//! scan interleaves neighbouring cells; row membership and magnitudes are
//! faithful, but a few intra-row column assignments are best-effort
//! reconstructions (anchored on the paper's prose where it pins a cell,
//! e.g. the 400 ns DEC 8400 load or the Pentium Pro's read ≫ write).

use crate::schema::*;

#[allow(clippy::too_many_arguments)] // mirrors Table 1's nine columns
fn sys(
    name: &str,
    vendor_model: &str,
    multiprocessor: bool,
    os: &str,
    cpu: &str,
    mhz: u32,
    year: u32,
    specint92: Option<f64>,
    price: Option<f64>,
) -> SystemInfo {
    SystemInfo {
        name: name.into(),
        vendor_model: vendor_model.into(),
        multiprocessor,
        os: os.into(),
        cpu: cpu.into(),
        mhz,
        year,
        specint92,
        list_price_kusd: price,
    }
}

/// Table 1: the paper's system descriptions.
pub fn systems() -> Vec<SystemInfo> {
    vec![
        sys(
            "IBM PowerPC",
            "IBM 43P",
            false,
            "AIX 3.?",
            "MPC604",
            133,
            1995,
            Some(176.0),
            Some(15.0),
        ),
        sys(
            "IBM Power2",
            "IBM 990",
            false,
            "AIX 4.?",
            "Power2",
            71,
            1993,
            Some(126.0),
            Some(110.0),
        ),
        sys(
            "FreeBSD/i586",
            "ASUS P55TP4XE",
            false,
            "FreeBSD 2.1",
            "Pentium",
            133,
            1995,
            Some(190.0),
            Some(3.0),
        ),
        sys(
            "HP K210",
            "HP 9000/859",
            true,
            "HP-UX B.10.01",
            "PA 7200",
            120,
            1995,
            Some(167.0),
            Some(35.0),
        ),
        sys(
            "SGI Challenge",
            "SGI Challenge",
            true,
            "IRIX 6.2-alpha",
            "R4400",
            200,
            1994,
            Some(140.0),
            Some(80.0),
        ),
        sys(
            "SGI Indigo2",
            "SGI Indigo2",
            false,
            "IRIX 5.3",
            "R4400",
            200,
            1994,
            Some(135.0),
            Some(15.0),
        ),
        sys(
            "Linux/Alpha",
            "DEC Cabriolet",
            false,
            "Linux 1.3.38",
            "Alpha 21064A",
            275,
            1994,
            Some(189.0),
            Some(9.0),
        ),
        sys(
            "Linux/i586",
            "Triton/EDO RAM",
            false,
            "Linux 1.3.28",
            "Pentium",
            120,
            1995,
            Some(155.0),
            Some(5.0),
        ),
        sys(
            "Linux/i686",
            "Intel Alder",
            false,
            "Linux 1.3.37",
            "Pentium Pro",
            200,
            1995,
            Some(320.0),
            Some(7.0),
        ),
        sys(
            "DEC Alpha@150",
            "DEC 3000/500",
            false,
            "OSF1 3.0",
            "Alpha 21064",
            150,
            1993,
            Some(84.0),
            Some(35.0),
        ),
        sys(
            "DEC Alpha@300",
            "DEC 8400 5/300",
            true,
            "OSF1 3.2",
            "Alpha 21164",
            300,
            1995,
            Some(341.0),
            Some(250.0),
        ),
        sys(
            "Sun Ultra1",
            "Sun Ultra1",
            false,
            "SunOS 5.5",
            "UltraSPARC",
            167,
            1995,
            Some(250.0),
            Some(21.0),
        ),
        sys(
            "Sun SC1000",
            "Sun SC1000",
            true,
            "SunOS 5.5-beta",
            "SuperSPARC",
            50,
            1992,
            Some(65.0),
            Some(35.0),
        ),
        sys(
            "Solaris/i686",
            "Intel Alder",
            false,
            "SunOS 5.5.1",
            "Pentium Pro",
            133,
            1995,
            Some(215.0),
            Some(5.0),
        ),
        sys(
            "Unixware/i686",
            "Intel Aurora",
            false,
            "Unixware 5.4.2",
            "Pentium Pro",
            200,
            1995,
            Some(320.0),
            Some(7.0),
        ),
    ]
}

/// Table 2: memory bandwidth (MB/s), sorted on the unrolled-bcopy column.
pub fn mem_bw() -> Vec<MemBwRow> {
    let rows: &[(&str, f64, f64, f64, f64)] = &[
        // (system, unrolled, libc, read, write)
        ("IBM Power2", 242.0, 171.0, 205.0, 364.0),
        ("Sun Ultra1", 152.0, 167.0, 129.0, 85.0),
        ("DEC Alpha@300", 120.0, 123.0, 80.0, 85.0),
        ("HP K210", 117.0, 57.0, 126.0, 78.0),
        ("Unixware/i686", 65.0, 58.0, 235.0, 88.0),
        ("Solaris/i686", 52.0, 48.0, 159.0, 71.0),
        ("DEC Alpha@150", 46.0, 45.0, 79.0, 91.0),
        ("Linux/i686", 42.0, 56.0, 208.0, 56.0),
        ("FreeBSD/i586", 39.0, 42.0, 83.0, 73.0),
        ("Linux/Alpha", 39.0, 39.0, 73.0, 71.0),
        ("Linux/i586", 38.0, 42.0, 74.0, 75.0),
        ("SGI Challenge", 35.0, 36.0, 67.0, 65.0),
        ("SGI Indigo2", 31.0, 32.0, 69.0, 66.0),
        ("IBM PowerPC", 21.0, 21.0, 63.0, 26.0),
        ("Sun SC1000", 15.0, 17.0, 38.0, 31.0),
    ];
    rows.iter()
        .map(|&(s, u, l, r, w)| MemBwRow {
            system: s.into(),
            bcopy_unrolled: u,
            bcopy_libc: l,
            read: r,
            write: w,
        })
        .collect()
}

/// Table 3: pipe and local TCP bandwidth (MB/s), sorted on pipe.
pub fn ipc_bw() -> Vec<IpcBwRow> {
    let rows: &[(&str, f64, f64, Option<f64>)] = &[
        // (system, libc bcopy, pipe, tcp)
        ("HP K210", 57.0, 93.0, Some(34.0)),
        ("Linux/i686", 56.0, 89.0, Some(18.0)),
        ("IBM Power2", 171.0, 84.0, Some(10.0)),
        ("Linux/Alpha", 39.0, 73.0, Some(9.0)),
        ("Unixware/i686", 58.0, 68.0, None),
        ("Sun Ultra1", 167.0, 61.0, Some(51.0)),
        ("DEC Alpha@300", 80.0, 46.0, Some(11.0)),
        ("Solaris/i686", 48.0, 38.0, Some(20.0)),
        ("DEC Alpha@150", 45.0, 35.0, Some(9.0)),
        ("SGI Indigo2", 32.0, 34.0, Some(22.0)),
        ("Linux/i586", 42.0, 34.0, Some(7.0)),
        ("IBM PowerPC", 21.0, 30.0, Some(17.0)),
        ("FreeBSD/i586", 42.0, 23.0, Some(13.0)),
        ("SGI Challenge", 36.0, 31.0, Some(17.0)),
        ("Sun SC1000", 15.0, 11.0, Some(9.0)),
    ];
    rows.iter()
        .map(|&(s, l, p, t)| IpcBwRow {
            system: s.into(),
            bcopy_libc: l,
            pipe: p,
            tcp: t,
        })
        .collect()
}

/// Table 4: remote TCP bandwidth (MB/s).
pub fn remote_bw() -> Vec<RemoteBwRow> {
    [
        ("SGI PowerChallenge", "hippi", 79.3),
        ("Sun Ultra1", "100baseT", 9.5),
        ("HP 9000/735", "fddi", 8.8),
        ("FreeBSD/i586", "100baseT", 7.9),
        ("SGI Indigo2", "10baseT", 0.9),
        ("HP 9000/735", "10baseT", 0.9),
        ("Linux/i586@90", "10baseT", 0.7),
    ]
    .map(|(s, n, t)| RemoteBwRow {
        system: s.into(),
        network: n.into(),
        tcp: t,
    })
    .to_vec()
}

/// Table 5: file vs memory bandwidth (MB/s).
pub fn file_bw() -> Vec<FileBwRow> {
    let rows: &[(&str, f64, f64, f64, f64)] = &[
        // (system, libc bcopy, file read, file mmap, mem read)
        ("IBM Power2", 171.0, 187.0, 106.0, 205.0),
        ("HP K210", 57.0, 88.0, 52.0, 117.0),
        ("Sun Ultra1", 167.0, 101.0, 85.0, 129.0),
        ("DEC Alpha@300", 78.0, 67.0, 62.0, 80.0),
        ("Unixware/i686", 58.0, 200.0, 235.0, 62.0),
        ("Solaris/i686", 48.0, 52.0, 94.0, 159.0),
        ("DEC Alpha@150", 45.0, 50.0, 40.0, 79.0),
        ("Linux/i686", 56.0, 40.0, 36.0, 208.0),
        ("IBM PowerPC", 21.0, 40.0, 51.0, 63.0),
        ("SGI Challenge", 36.0, 36.0, 56.0, 65.0),
        ("SGI Indigo2", 32.0, 32.0, 44.0, 69.0),
        ("FreeBSD/i586", 42.0, 30.0, 53.0, 73.0),
        ("Linux/Alpha", 39.0, 24.0, 18.0, 73.0),
        ("Linux/i586", 42.0, 23.0, 9.0, 74.0),
        ("Sun SC1000", 15.0, 20.0, 28.0, 38.0),
    ];
    rows.iter()
        .map(|&(s, b, fr, fm, mr)| FileBwRow {
            system: s.into(),
            bcopy_libc: b,
            file_read: fr,
            file_mmap: fm,
            mem_read: mr,
        })
        .collect()
}

/// Table 6: cache and memory latency (ns), sorted on level-2 latency.
///
/// Prose anchors: the 300 MHz DEC 8400's 400 ns load and 22-clock (66 ns)
/// level-2 cache; the HP/IBM single-level one-clock caches; the Pentium
/// Pro / Ultra 5–6-clock level-2 caches; SGI/DEC "large second level
/// caches to hide their long latency from main memory".
#[allow(clippy::type_complexity)] // one tuple per Table 6 column set
pub fn cache_lat() -> Vec<CacheLatRow> {
    let k = |n: u64| n << 10;
    let m = |n: u64| n << 20;
    let rows: &[(
        &str,
        f64,
        Option<f64>,
        Option<u64>,
        Option<f64>,
        Option<u64>,
        f64,
    )] = &[
        // (system, clk, l1 ns, l1 size, l2 ns, l2 size, memory ns)
        (
            "HP K210",
            8.0,
            Some(8.0),
            Some(k(256)),
            Some(8.0),
            Some(k(256)),
            349.0,
        ),
        (
            "IBM Power2",
            14.0,
            Some(13.0),
            Some(k(256)),
            Some(13.0),
            Some(k(256)),
            260.0,
        ),
        (
            "Unixware/i686",
            5.0,
            Some(5.0),
            Some(k(8)),
            Some(25.0),
            Some(k(256)),
            175.0,
        ),
        (
            "Linux/i686",
            5.0,
            Some(10.0),
            Some(k(8)),
            Some(30.0),
            Some(k(256)),
            179.0,
        ),
        (
            "Sun Ultra1",
            6.0,
            Some(6.0),
            Some(k(16)),
            Some(42.0),
            Some(k(512)),
            270.0,
        ),
        (
            "Linux/Alpha",
            3.6,
            Some(6.0),
            Some(k(8)),
            Some(46.0),
            Some(k(96)),
            357.0,
        ),
        (
            "Solaris/i686",
            7.0,
            Some(14.0),
            Some(k(8)),
            Some(48.0),
            Some(k(256)),
            281.0,
        ),
        (
            "FreeBSD/i586",
            7.5,
            Some(5.0),
            Some(k(8)),
            Some(64.0),
            Some(k(256)),
            1170.0,
        ),
        (
            "SGI Indigo2",
            5.0,
            Some(8.0),
            Some(k(16)),
            Some(64.0),
            Some(m(2)),
            1189.0,
        ),
        (
            "DEC Alpha@300",
            3.3,
            Some(5.0),
            Some(k(8)),
            Some(66.0),
            Some(m(4)),
            400.0,
        ),
        (
            "SGI Challenge",
            5.0,
            Some(8.0),
            Some(k(16)),
            Some(64.0),
            Some(m(4)),
            1189.0,
        ),
        (
            "DEC Alpha@150",
            6.7,
            Some(12.0),
            Some(k(8)),
            Some(67.0),
            Some(k(512)),
            291.0,
        ),
        (
            "Linux/i586",
            8.3,
            Some(8.0),
            Some(k(8)),
            Some(107.0),
            Some(k(256)),
            182.0,
        ),
        (
            "Sun SC1000",
            20.0,
            Some(20.0),
            Some(k(8)),
            Some(140.0),
            Some(m(1)),
            1236.0,
        ),
        (
            "IBM PowerPC",
            7.5,
            Some(7.0),
            Some(k(16)),
            Some(164.0),
            Some(k(512)),
            394.0,
        ),
    ];
    rows.iter()
        .map(|&(s, c, l1, l1s, l2, l2s, mem)| CacheLatRow {
            system: s.into(),
            clock_ns: c,
            l1_ns: l1,
            l1_size: l1s,
            l2_ns: l2,
            l2_size: l2s,
            memory_ns: mem,
        })
        .collect()
}

/// Table 7: simple system-call time (µs).
pub fn syscall() -> Vec<SyscallRow> {
    [
        ("Linux/Alpha", 2.0),
        ("Linux/i586", 2.0),
        ("Linux/i686", 3.0),
        ("Unixware/i686", 4.0),
        ("Sun Ultra1", 5.0),
        ("FreeBSD/i586", 6.0),
        ("Solaris/i686", 7.0),
        ("DEC Alpha@300", 8.0),
        ("Sun SC1000", 9.0),
        ("HP K210", 10.0),
        ("SGI Indigo2", 11.0),
        ("DEC Alpha@150", 11.0),
        ("IBM PowerPC", 12.0),
        ("IBM Power2", 16.0),
        ("SGI Challenge", 24.0),
    ]
    .map(|(s, v)| SyscallRow {
        system: s.into(),
        syscall_us: v,
    })
    .to_vec()
}

/// Table 8: signal costs (µs).
pub fn signal() -> Vec<SignalRow> {
    [
        ("SGI Indigo2", 4.0, 7.0),
        ("SGI Challenge", 4.0, 9.0),
        ("HP K210", 4.0, 13.0),
        ("FreeBSD/i586", 4.0, 21.0),
        ("Linux/i686", 4.0, 22.0),
        ("Unixware/i686", 6.0, 25.0),
        ("IBM Power2", 10.0, 27.0),
        ("Solaris/i686", 9.0, 45.0),
        ("IBM PowerPC", 10.0, 52.0),
        ("Linux/i586", 7.0, 52.0),
        ("DEC Alpha@150", 6.0, 59.0),
        ("Linux/Alpha", 13.0, 138.0),
    ]
    .map(|(s, a, h)| SignalRow {
        system: s.into(),
        sigaction_us: a,
        handler_us: h,
    })
    .to_vec()
}

/// Table 9: process creation (ms).
pub fn proc() -> Vec<ProcRow> {
    [
        ("Linux/i686", 0.4, 5.0, 14.0),
        ("Linux/Alpha", 0.7, 3.0, 12.0),
        ("Linux/i586", 0.9, 5.0, 16.0),
        ("Unixware/i686", 0.9, 5.0, 10.0),
        ("IBM Power2", 1.2, 8.0, 16.0),
        ("DEC Alpha@300", 2.0, 6.0, 16.0),
        ("FreeBSD/i586", 2.0, 11.0, 19.0),
        ("IBM PowerPC", 2.9, 8.0, 50.0),
        ("SGI Indigo2", 3.1, 8.0, 19.0),
        ("HP K210", 3.1, 11.0, 20.0),
        ("Sun Ultra1", 3.7, 20.0, 37.0),
        ("SGI Challenge", 4.0, 14.0, 24.0),
        ("Solaris/i686", 4.5, 22.0, 46.0),
        ("DEC Alpha@150", 4.6, 13.0, 39.0),
        ("Sun SC1000", 14.0, 69.0, 281.0),
    ]
    .map(|(s, f, e, sh)| ProcRow {
        system: s.into(),
        fork_ms: f,
        fork_exec_ms: e,
        fork_sh_ms: sh,
    })
    .to_vec()
}

/// Table 10: context switch times (µs).
pub fn ctx() -> Vec<CtxRow> {
    [
        // (system, 2p/0K, 2p/32K, 8p/0K, 8p/32K)
        ("Linux/i686", 6.0, 18.0, 7.0, 101.0),
        ("Linux/i586", 10.0, 78.0, 13.0, 163.0),
        ("Linux/Alpha", 11.0, 70.0, 13.0, 215.0),
        ("IBM Power2", 13.0, 16.0, 18.0, 43.0),
        ("Sun Ultra1", 14.0, 31.0, 20.0, 102.0),
        ("DEC Alpha@300", 14.0, 17.0, 22.0, 41.0),
        ("IBM PowerPC", 16.0, 26.0, 87.0, 144.0),
        ("HP K210", 17.0, 17.0, 18.0, 99.0),
        ("Unixware/i686", 17.0, 17.0, 18.0, 72.0),
        ("FreeBSD/i586", 27.0, 34.0, 33.0, 102.0),
        ("Solaris/i686", 36.0, 54.0, 43.0, 118.0),
        ("SGI Indigo2", 40.0, 47.0, 38.0, 104.0),
        ("DEC Alpha@150", 53.0, 68.0, 59.0, 134.0),
        ("SGI Challenge", 63.0, 93.0, 69.0, 80.0),
        ("Sun SC1000", 104.0, 142.0, 107.0, 197.0),
    ]
    .map(|(s, a, b, c, d)| CtxRow {
        system: s.into(),
        p2_0k: a,
        p2_32k: b,
        p8_0k: c,
        p8_32k: d,
    })
    .to_vec()
}

/// Table 11: pipe latency (µs).
pub fn pipe_lat() -> Vec<PipeLatRow> {
    [
        ("Linux/i686", 26.0),
        ("Linux/i586", 33.0),
        ("Linux/Alpha", 34.0),
        ("Sun Ultra1", 62.0),
        ("IBM PowerPC", 65.0),
        ("Unixware/i686", 70.0),
        ("DEC Alpha@300", 71.0),
        ("HP K210", 78.0),
        ("IBM Power2", 91.0),
        ("Solaris/i686", 101.0),
        ("FreeBSD/i586", 104.0),
        ("SGI Indigo2", 131.0),
        ("DEC Alpha@150", 179.0),
        ("SGI Challenge", 251.0),
        ("Sun SC1000", 278.0),
    ]
    .map(|(s, v)| PipeLatRow {
        system: s.into(),
        pipe_us: v,
    })
    .to_vec()
}

/// Table 12: TCP and RPC/TCP latency (µs).
pub fn tcp_rpc() -> Vec<TcpRpcRow> {
    [
        ("Linux/i686", 216.0, 346.0),
        ("Sun Ultra1", 162.0, 346.0),
        ("DEC Alpha@300", 267.0, 371.0),
        ("FreeBSD/i586", 256.0, 440.0),
        ("Solaris/i686", 305.0, 528.0),
        ("Linux/Alpha", 429.0, 602.0),
        ("HP K210", 146.0, 606.0),
        ("SGI Indigo2", 278.0, 641.0),
        ("IBM Power2", 332.0, 649.0),
        ("IBM PowerPC", 299.0, 698.0),
        ("Linux/i586", 467.0, 713.0),
        ("DEC Alpha@150", 485.0, 788.0),
        ("SGI Challenge", 546.0, 900.0),
        ("Sun SC1000", 855.0, 1386.0),
    ]
    .map(|(s, t, r)| TcpRpcRow {
        system: s.into(),
        tcp_us: t,
        rpc_tcp_us: r,
    })
    .to_vec()
}

/// Table 13: UDP and RPC/UDP latency (µs).
pub fn udp_rpc() -> Vec<UdpRpcRow> {
    [
        ("Linux/i686", 93.0, 180.0),
        ("Sun Ultra1", 197.0, 267.0),
        ("Linux/Alpha", 180.0, 317.0),
        ("DEC Alpha@300", 259.0, 358.0),
        ("Linux/i586", 187.0, 366.0),
        ("FreeBSD/i586", 212.0, 375.0),
        ("Solaris/i686", 348.0, 454.0),
        ("IBM Power2", 254.0, 531.0),
        ("IBM PowerPC", 206.0, 536.0),
        ("HP K210", 152.0, 543.0),
        ("SGI Indigo2", 313.0, 671.0),
        ("DEC Alpha@150", 489.0, 834.0),
        ("SGI Challenge", 678.0, 893.0),
        ("Sun SC1000", 739.0, 1101.0),
    ]
    .map(|(s, u, r)| UdpRpcRow {
        system: s.into(),
        udp_us: u,
        rpc_udp_us: r,
    })
    .to_vec()
}

/// Table 14: remote latencies (µs).
pub fn remote_lat() -> Vec<RemoteLatRow> {
    [
        ("Sun Ultra1", "100baseT", 280.0, 308.0),
        ("FreeBSD/i586", "100baseT", 365.0, 304.0),
        ("HP 9000/735", "fddi", 425.0, 441.0),
        ("SGI Indigo2", "10baseT", 543.0, 602.0),
        ("HP 9000/735", "10baseT", 603.0, 592.0),
        ("SGI PowerChallenge", "hippi", 1068.0, 1099.0),
        ("Linux/i586@90", "10baseT", 2954.0, 1912.0),
    ]
    .map(|(s, n, t, u)| RemoteLatRow {
        system: s.into(),
        network: n.into(),
        tcp_us: t,
        udp_us: u,
    })
    .to_vec()
}

/// Table 15: TCP connection latency (µs).
pub fn connect() -> Vec<ConnectRow> {
    [
        ("HP K210", 238.0),
        ("Linux/i686", 263.0),
        ("IBM Power2", 339.0),
        ("FreeBSD/i586", 418.0),
        ("Linux/i586", 606.0),
        ("SGI Challenge", 716.0),
        ("Sun Ultra1", 852.0),
        ("Solaris/i686", 1230.0),
        ("Sun SC1000", 3047.0),
    ]
    .map(|(s, v)| ConnectRow {
        system: s.into(),
        connect_us: v,
    })
    .to_vec()
}

/// Table 16: file-system create/delete latency (µs).
pub fn fs_lat() -> Vec<FsLatRow> {
    [
        ("Linux/i686", "EXT2FS", 751.0, 45.0),
        ("HP K210", "HFS", 579.0, 67.0),
        ("Linux/i586", "EXT2FS", 1114.0, 95.0),
        ("Linux/Alpha", "EXT2FS", 834.0, 115.0),
        ("Unixware/i686", "UFS", 450.0, 369.0),
        ("SGI Challenge", "XFS", 3508.0, 4016.0),
        ("DEC Alpha@300", "ADVFS", 4184.0, 4255.0),
        ("Solaris/i686", "UFS", 23809.0, 7246.0),
        ("Sun Ultra1", "UFS", 8333.0, 18181.0),
        ("Sun SC1000", "UFS", 11111.0, 25000.0),
        ("FreeBSD/i586", "UFS", 11235.0, 28571.0),
        ("SGI Indigo2", "EFS", 11904.0, 11494.0),
        ("DEC Alpha@150", "?", 12345.0, 38461.0),
        ("IBM PowerPC", "JFS", 12658.0, 12658.0),
        ("IBM Power2", "JFS", 12820.0, 13333.0),
    ]
    .map(|(s, f, c, d)| FsLatRow {
        system: s.into(),
        fs: f.into(),
        create_us: c,
        delete_us: d,
    })
    .to_vec()
}

/// Table 17: SCSI I/O overhead (µs).
pub fn disk() -> Vec<DiskRow> {
    [
        ("SGI Challenge", 920.0),
        ("SGI Indigo2", 984.0),
        ("HP K210", 1103.0),
        ("DEC Alpha@150", 1436.0),
        ("Sun SC1000", 1466.0),
        ("Sun Ultra1", 2242.0),
    ]
    .map(|(s, v)| DiskRow {
        system: s.into(),
        overhead_us: v,
    })
    .to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn fifteen_systems_described() {
        let s = systems();
        assert_eq!(s.len(), 15);
        let names: HashSet<&str> = s.iter().map(|x| x.name.as_str()).collect();
        assert_eq!(names.len(), 15, "duplicate system names");
    }

    #[test]
    fn every_result_row_names_a_known_or_remote_system() {
        let known: HashSet<String> = systems().into_iter().map(|s| s.name).collect();
        // Remote tables include machines outside Table 1 (HP 9000/735,
        // PowerChallenge, Linux/i586@90) — the paper did the same.
        let extra: HashSet<&str> = ["HP 9000/735", "SGI PowerChallenge", "Linux/i586@90"]
            .into_iter()
            .collect();
        let check = |name: &str| {
            assert!(
                known.contains(name) || extra.contains(name),
                "unknown system {name}"
            );
        };
        for r in mem_bw() {
            check(&r.system);
        }
        for r in ipc_bw() {
            check(&r.system);
        }
        for r in remote_bw() {
            check(&r.system);
        }
        for r in file_bw() {
            check(&r.system);
        }
        for r in cache_lat() {
            check(&r.system);
        }
        for r in syscall() {
            check(&r.system);
        }
        for r in signal() {
            check(&r.system);
        }
        for r in proc() {
            check(&r.system);
        }
        for r in ctx() {
            check(&r.system);
        }
        for r in pipe_lat() {
            check(&r.system);
        }
        for r in tcp_rpc() {
            check(&r.system);
        }
        for r in udp_rpc() {
            check(&r.system);
        }
        for r in remote_lat() {
            check(&r.system);
        }
        for r in connect() {
            check(&r.system);
        }
        for r in fs_lat() {
            check(&r.system);
        }
        for r in disk() {
            check(&r.system);
        }
    }

    #[test]
    fn rpc_always_costs_more_than_raw_transport() {
        // The paper's Table 12/13 claim, preserved in the transcription.
        for r in tcp_rpc() {
            assert!(r.rpc_tcp_us > r.tcp_us, "{}", r.system);
        }
        for r in udp_rpc() {
            assert!(r.rpc_udp_us > r.udp_us, "{}", r.system);
        }
    }

    #[test]
    fn linux_wins_syscalls_as_the_prose_says() {
        let rows = syscall();
        let best = rows
            .iter()
            .min_by(|a, b| a.syscall_us.total_cmp(&b.syscall_us))
            .unwrap();
        assert!(best.system.starts_with("Linux"), "winner {}", best.system);
    }

    #[test]
    fn shell_start_is_most_expensive_in_every_row() {
        for r in proc() {
            assert!(r.fork_sh_ms >= r.fork_exec_ms, "{}", r.system);
            assert!(r.fork_exec_ms >= r.fork_ms, "{}", r.system);
        }
    }

    #[test]
    fn dec8400_anchors_match_prose() {
        // "the load itself takes 400ns on a 300 Mhz DEC 8400" and a 22-clock
        // (66ns) L2.
        let row = cache_lat()
            .into_iter()
            .find(|r| r.system == "DEC Alpha@300")
            .unwrap();
        assert_eq!(row.memory_ns, 400.0);
        assert_eq!(row.l2_ns, Some(66.0));
        assert_eq!(row.l2_size, Some(4 << 20));
    }

    #[test]
    fn hippi_has_best_remote_bandwidth_10baset_worst() {
        let rows = remote_bw();
        let best = rows.iter().map(|r| r.tcp).fold(f64::MIN, f64::max);
        assert_eq!(best, 79.3);
        let worst = rows.iter().map(|r| r.tcp).fold(f64::MAX, f64::min);
        assert!(worst < 1.0);
    }

    #[test]
    fn table17_is_sorted_best_to_worst() {
        let rows = disk();
        assert!(rows
            .windows(2)
            .all(|w| w[0].overhead_us <= w[1].overhead_us));
        assert_eq!(rows.len(), 6);
    }

    #[test]
    fn paper_fs_spread_spans_orders_of_magnitude() {
        // "Linux does extremely well here, 2 to 3 orders of magnitude
        // faster than the slowest systems" (delete column).
        let rows = fs_lat();
        let best = rows.iter().map(|r| r.delete_us).fold(f64::MAX, f64::min);
        let worst = rows.iter().map(|r| r.delete_us).fold(f64::MIN, f64::max);
        assert!(worst / best > 100.0, "spread {}x", worst / best);
    }
}
