//! Terminal line plots for Figures 1 and 2.
//!
//! Figure 1 plots memory latency (ns, linear Y) against log2(array size)
//! with one series per stride; Figure 2 plots context-switch time (µs)
//! against process count with one series per footprint. [`AsciiPlot`]
//! renders either: multi-series scatter/line charts on a character grid
//! with per-series glyphs, axes, ticks and a legend.

use std::fmt::Write as _;

/// One plotted series.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Legend label ("stride=64", "size=32KB ovr=129us").
    pub label: String,
    /// (x, y) points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Self {
            label: label.into(),
            points,
        }
    }
}

/// Glyphs assigned to series, in order (the paper's figures use the same
/// trick with ∆, ×, ∗, •, +).
const GLYPHS: &[char] = &['*', 'x', 'o', '+', '@', '#', '%', '&', '=', '~'];

/// A multi-series character plot.
#[derive(Debug, Clone)]
pub struct AsciiPlot {
    title: String,
    x_label: String,
    y_label: String,
    width: usize,
    height: usize,
    log2_x: bool,
    series: Vec<Series>,
}

impl AsciiPlot {
    /// Creates a plot; `width`/`height` are the data-grid dimensions in
    /// characters (axes and legend are extra).
    ///
    /// # Panics
    ///
    /// Panics if `width < 16` or `height < 4`.
    pub fn new(title: impl Into<String>, width: usize, height: usize) -> Self {
        assert!(width >= 16, "plot too narrow");
        assert!(height >= 4, "plot too short");
        Self {
            title: title.into(),
            x_label: String::new(),
            y_label: String::new(),
            width,
            height,
            log2_x: false,
            series: Vec::new(),
        }
    }

    /// Sets the axis labels.
    pub fn labels(mut self, x: impl Into<String>, y: impl Into<String>) -> Self {
        self.x_label = x.into();
        self.y_label = y.into();
        self
    }

    /// Plots X on a log2 scale (Figure 1's array-size axis).
    pub fn log2_x(mut self) -> Self {
        self.log2_x = true;
        self
    }

    /// Adds a series.
    pub fn series(mut self, s: Series) -> Self {
        self.series.push(s);
        self
    }

    fn x_of(&self, x: f64) -> f64 {
        if self.log2_x {
            x.max(f64::MIN_POSITIVE).log2()
        } else {
            x
        }
    }

    /// Renders the plot. Returns a note instead of a grid when no series
    /// has any points.
    pub fn render(&self) -> String {
        let pts: Vec<(f64, f64)> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|&(x, y)| (self.x_of(x), y)))
            .filter(|(x, y)| x.is_finite() && y.is_finite())
            .collect();
        if pts.is_empty() {
            return format!("{} (no data)\n", self.title);
        }
        let (mut x_min, mut x_max) = (f64::MAX, f64::MIN);
        let (mut y_min, mut y_max) = (f64::MAX, f64::MIN);
        for &(x, y) in &pts {
            x_min = x_min.min(x);
            x_max = x_max.max(x);
            y_min = y_min.min(y);
            y_max = y_max.max(y);
        }
        // Ground the Y axis at zero when the data is near it (both
        // figures do), and avoid degenerate ranges.
        if y_min > 0.0 && y_min < y_max * 0.5 {
            y_min = 0.0;
        }
        if (x_max - x_min).abs() < 1e-12 {
            x_max = x_min + 1.0;
        }
        if (y_max - y_min).abs() < 1e-12 {
            y_max = y_min + 1.0;
        }

        let mut grid = vec![vec![' '; self.width]; self.height];
        for (si, s) in self.series.iter().enumerate() {
            let glyph = GLYPHS[si % GLYPHS.len()];
            for &(x, y) in &s.points {
                let (px, py) = (self.x_of(x), y);
                if !px.is_finite() || !py.is_finite() {
                    continue;
                }
                let col =
                    ((px - x_min) / (x_max - x_min) * (self.width - 1) as f64).round() as usize;
                let row =
                    ((py - y_min) / (y_max - y_min) * (self.height - 1) as f64).round() as usize;
                let row = self.height - 1 - row.min(self.height - 1);
                grid[row][col.min(self.width - 1)] = glyph;
            }
        }

        let mut out = String::new();
        let _ = writeln!(out, "{}", self.title);
        if !self.y_label.is_empty() {
            let _ = writeln!(out, "{}", self.y_label);
        }
        let y_fmt = |v: f64| {
            if v.abs() >= 100.0 {
                format!("{v:.0}")
            } else {
                format!("{v:.1}")
            }
        };
        let label_w = y_fmt(y_max).len().max(y_fmt(y_min).len());
        for (i, row) in grid.iter().enumerate() {
            let tick = if i == 0 {
                y_fmt(y_max)
            } else if i == self.height - 1 {
                y_fmt(y_min)
            } else {
                String::new()
            };
            let line: String = row.iter().collect();
            let _ = writeln!(out, "{tick:>label_w$} |{}", line.trim_end());
        }
        let _ = writeln!(out, "{} +{}", " ".repeat(label_w), "-".repeat(self.width));
        let x_lo = if self.log2_x {
            format!("2^{x_min:.0}")
        } else {
            format!("{x_min:.0}")
        };
        let x_hi = if self.log2_x {
            format!("2^{x_max:.0}")
        } else {
            format!("{x_max:.0}")
        };
        let gap = self.width.saturating_sub(x_lo.len() + x_hi.len()).max(1);
        let _ = writeln!(
            out,
            "{} {x_lo}{}{x_hi}  {}",
            " ".repeat(label_w),
            " ".repeat(gap),
            self.x_label
        );
        for (si, s) in self.series.iter().enumerate() {
            let _ = writeln!(out, "  {} {}", GLYPHS[si % GLYPHS.len()], s.label);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_plot() -> AsciiPlot {
        AsciiPlot::new("test", 40, 10)
            .labels("x", "y")
            .series(Series::new("up", vec![(0.0, 0.0), (10.0, 100.0)]))
            .series(Series::new("down", vec![(0.0, 100.0), (10.0, 0.0)]))
    }

    #[test]
    fn renders_title_axes_and_legend() {
        let out = simple_plot().render();
        assert!(out.contains("test"));
        assert!(out.contains("* up"));
        assert!(out.contains("x down"));
        assert!(out.contains('|'));
        assert!(out.contains('+'));
    }

    #[test]
    fn glyphs_land_in_expected_corners() {
        let out = simple_plot().render();
        let grid: Vec<&str> = out.lines().filter(|l| l.contains('|')).collect();
        // Top row holds the y-max points: "up" ends high (right), "down"
        // starts high (left).
        let top = grid.first().unwrap();
        assert!(top.contains('*') && top.contains('x'), "{out}");
        let top_star = top.rfind('*').unwrap();
        let top_x = top.find('x').unwrap();
        assert!(top_x < top_star, "{out}");
    }

    #[test]
    fn empty_plot_says_no_data() {
        let out = AsciiPlot::new("empty", 40, 10).render();
        assert!(out.contains("no data"));
    }

    #[test]
    fn log2_axis_labels_in_powers() {
        let out = AsciiPlot::new("mem", 40, 10)
            .log2_x()
            .series(Series::new("s", vec![(512.0, 5.0), (8388608.0, 300.0)]))
            .render();
        assert!(out.contains("2^9"), "{out}");
        assert!(out.contains("2^23"), "{out}");
    }

    #[test]
    fn constant_series_does_not_divide_by_zero() {
        let out = AsciiPlot::new("flat", 40, 10)
            .series(Series::new("c", vec![(1.0, 5.0), (2.0, 5.0)]))
            .render();
        assert!(out.contains('*'));
    }

    #[test]
    fn non_finite_points_are_skipped() {
        let out = AsciiPlot::new("nan", 40, 10)
            .series(Series::new(
                "n",
                vec![(1.0, f64::NAN), (2.0, 7.0), (f64::INFINITY, 3.0)],
            ))
            .render();
        assert!(out.contains('*'));
    }

    #[test]
    #[should_panic(expected = "too narrow")]
    fn tiny_plots_rejected() {
        AsciiPlot::new("t", 2, 10);
    }

    #[test]
    fn many_series_cycle_glyphs() {
        let mut p = AsciiPlot::new("many", 40, 10);
        for i in 0..12 {
            p = p.series(Series::new(format!("s{i}"), vec![(i as f64, i as f64)]));
        }
        let out = p.render();
        // Series 0 and 10 share the '*' glyph (cycled).
        assert_eq!(out.matches("* s").count(), 2, "{out}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Rendering never panics and always emits the legend, whatever
        /// finite data arrives.
        #[test]
        fn render_total(points in proptest::collection::vec((0.0f64..1e9, -1e6f64..1e6), 0..64)) {
            let plot = AsciiPlot::new("prop", 32, 8)
                .series(Series::new("s", points));
            let out = plot.render();
            prop_assert!(out.contains("prop"));
        }

        /// Log2 mode handles any positive x without panicking.
        #[test]
        fn log_axis_total(xs in proptest::collection::vec(1.0f64..1e12, 1..32)) {
            let points: Vec<(f64, f64)> = xs.iter().map(|&x| (x, x.ln())).collect();
            let out = AsciiPlot::new("logp", 32, 8).log2_x().series(Series::new("s", points)).render();
            prop_assert!(out.contains("logp"));
        }
    }
}
