//! JSON persistence and merging of suite runs.
//!
//! The paper's database grew by donation: "Many of the results included in
//! the database were donated by users." [`ResultsDb`] is the same idea —
//! a set of [`SuiteRun`]s keyed by system name, storable as a JSON file,
//! mergeable with other sets.
//!
//! Persistence-wise this is now a *view*: the append-only time series in
//! [`crate::store`] is the system of record, and [`ResultsDb::from_store`]
//! projects it down to the newest table payload per host — the shape the
//! paper's table renderers want.

use crate::schema::SuiteRun;
use crate::store::ReportStore;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::io;
use std::path::Path;

/// A collection of suite runs keyed by system name.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ResultsDb {
    runs: BTreeMap<String, SuiteRun>,
}

impl ResultsDb {
    /// Creates an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts or replaces the run for `name`. Returns the displaced run.
    pub fn insert(&mut self, name: impl Into<String>, run: SuiteRun) -> Option<SuiteRun> {
        self.runs.insert(name.into(), run)
    }

    /// The run for `name`, if present.
    pub fn get(&self, name: &str) -> Option<&SuiteRun> {
        self.runs.get(name)
    }

    /// All (name, run) pairs, name-ordered.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &SuiteRun)> {
        self.runs.iter()
    }

    /// Number of runs.
    pub fn len(&self) -> usize {
        self.runs.len()
    }

    /// True if no runs are stored.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Merges `other` in; on name collisions `other`'s runs win (newer
    /// donations replace older).
    pub fn merge(&mut self, other: ResultsDb) {
        for (name, run) in other.runs {
            self.runs.insert(name, run);
        }
    }

    /// Serializes to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("schema types always serialize")
    }

    /// Deserializes from JSON.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Writes the database to a file.
    pub fn save(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Loads a database from a file.
    pub fn load(path: &Path) -> io::Result<Self> {
        let text = std::fs::read_to_string(path)?;
        Self::from_json(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
    }

    /// Projects a [`ReportStore`] down to the newest table payload per
    /// entry: the last run in each fingerprint's series wins (exactly the
    /// old last-write-wins behavior, but derived from ordered history
    /// instead of replacing it). Entries without a `run` payload are
    /// skipped — they carry only measurement provenance, not table rows.
    pub fn from_store<S: ReportStore + ?Sized>(store: &S) -> io::Result<ResultsDb> {
        let mut db = ResultsDb::new();
        for entry in store.iter()? {
            let Some(run) = entry.run else { continue };
            let name = run
                .system
                .as_ref()
                .map(|s| s.name.clone())
                .unwrap_or_else(|| entry.host.clone());
            db.insert(name, run);
        }
        Ok(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::SyscallRow;

    fn run_with_syscall(us: f64) -> SuiteRun {
        SuiteRun {
            syscall: Some(SyscallRow {
                system: "host".into(),
                syscall_us: us,
            }),
            ..Default::default()
        }
    }

    #[test]
    fn insert_get_roundtrip() {
        let mut db = ResultsDb::new();
        assert!(db.is_empty());
        db.insert("host", run_with_syscall(1.0));
        assert_eq!(db.len(), 1);
        assert!(db.get("host").unwrap().syscall.is_some());
        assert!(db.get("missing").is_none());
    }

    #[test]
    fn json_round_trip() {
        let mut db = ResultsDb::new();
        db.insert("a", run_with_syscall(1.5));
        db.insert("b", SuiteRun::default());
        let back = ResultsDb::from_json(&db.to_json()).unwrap();
        assert_eq!(db, back);
    }

    #[test]
    fn merge_prefers_newer() {
        let mut old = ResultsDb::new();
        old.insert("host", run_with_syscall(9.0));
        let mut new = ResultsDb::new();
        new.insert("host", run_with_syscall(1.0));
        new.insert("other", SuiteRun::default());
        old.merge(new);
        assert_eq!(old.len(), 2);
        assert_eq!(
            old.get("host")
                .unwrap()
                .syscall
                .as_ref()
                .unwrap()
                .syscall_us,
            1.0
        );
    }

    #[test]
    fn save_load_file_round_trip() {
        let path = std::env::temp_dir().join(format!("lmb-db-{}.json", std::process::id()));
        let mut db = ResultsDb::new();
        db.insert("host", run_with_syscall(2.0));
        db.save(&path).unwrap();
        let back = ResultsDb::load(&path).unwrap();
        assert_eq!(db, back);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_file_is_invalid_data() {
        let path = std::env::temp_dir().join(format!("lmb-db-bad-{}.json", std::process::id()));
        std::fs::write(&path, "{not json").unwrap();
        let err = ResultsDb::load(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn iteration_is_name_ordered() {
        let mut db = ResultsDb::new();
        db.insert("zeta", SuiteRun::default());
        db.insert("alpha", SuiteRun::default());
        let names: Vec<&String> = db.iter().map(|(n, _)| n).collect();
        assert_eq!(names, ["alpha", "zeta"]);
    }
}
