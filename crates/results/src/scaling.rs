//! Load-scaling curves: how a benchmark degrades under concurrent load.
//!
//! The paper measures one client against one resource; these types carry
//! the answer to the follow-up question a server operator asks — what
//! happens to latency and aggregate throughput when P generators hit the
//! same resource at once. One [`ScalingCurve`] holds one benchmark's
//! sweep over P = 1, 2, 4, …: aggregate throughput, p50/p99
//! latency-under-load, parallel efficiency against the P = 1 point, and a
//! per-point quality grade, all of which round-trip through the
//! [`crate::RunReport`] JSON so the noise-aware differ can gate on them.

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// One generator's contribution to a P-point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratorSample {
    /// Generator index within the point, `0..p`.
    pub index: u32,
    /// This generator's own sustained rate, in the curve's unit.
    pub throughput: f64,
    /// Coefficient of variation across this generator's repetitions.
    pub cv: f64,
    /// Quality grade of this generator's repetition set.
    pub quality: String,
}

/// One measured point of a scaling sweep: everything P concurrent
/// generators produced together.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalePoint {
    /// Concurrent generators at this point.
    pub p: u32,
    /// Operations completed across all generators' timed repetitions.
    pub ops: u64,
    /// Aggregate throughput (sum of per-generator rates), in the curve's
    /// unit.
    pub throughput: f64,
    /// Median per-operation latency across all generators' samples, µs.
    pub p50_us: f64,
    /// 99th-percentile per-operation latency across all samples, µs.
    pub p99_us: f64,
    /// Coefficient of variation of the pooled samples — the noise band a
    /// differ should judge this point against.
    pub cv: f64,
    /// Quality grade of the pooled samples ("good", "noisy", "suspect").
    pub quality: String,
    /// `throughput / (p × throughput(P=1))`: 1.0 is perfect scaling.
    /// `None` when it cannot be judged — this point failed, or the
    /// P = 1 reference failed or measured zero throughput (a 0.0 or
    /// non-finite ratio would leak into JSON as a fake number).
    pub efficiency: Option<f64>,
    /// Per-generator breakdown, index order.
    pub generators: Vec<GeneratorSample>,
    /// Why the point failed (a generator panicked or could not be built);
    /// `None` for measured points. A failed point carries zeros elsewhere.
    pub error: Option<String>,
}

impl ScalePoint {
    /// Did this point produce usable numbers?
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.error.is_none()
    }
}

/// One benchmark's load-scaling sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalingCurve {
    /// Scalable-benchmark name (`bw_mem`, `lat_pipe`, ...).
    pub bench: String,
    /// Throughput unit (`MB/s` for byte movers, `ops/s` for round trips).
    pub unit: String,
    /// Points in ascending P order (failed points included, marked).
    pub points: Vec<ScalePoint>,
}

impl ScalingCurve {
    /// The measured P = 1 reference point, if it succeeded.
    #[must_use]
    pub fn baseline(&self) -> Option<&ScalePoint> {
        self.points.iter().find(|pt| pt.p == 1 && pt.is_ok())
    }

    /// Points that produced usable numbers.
    pub fn ok_points(&self) -> impl Iterator<Item = &ScalePoint> {
        self.points.iter().filter(|pt| pt.is_ok())
    }

    /// Fills in each point's parallel efficiency from the P = 1 point.
    /// Points that cannot be judged — a failed point, a failed or
    /// zero-throughput baseline, a non-finite ratio — get `None` rather
    /// than a fabricated number.
    pub fn compute_efficiency(&mut self) {
        let base = self.baseline().map(|pt| pt.throughput);
        for pt in &mut self.points {
            pt.efficiency = match base {
                Some(b) if b > 0.0 && b.is_finite() && pt.is_ok() => {
                    let eff = pt.throughput / (f64::from(pt.p) * b);
                    eff.is_finite().then_some(eff)
                }
                _ => None,
            };
        }
    }

    /// Renders the curve as a paper-style fixed-width table.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "=== {} under load (throughput in {}) ===\n",
            self.bench, self.unit
        ));
        out.push_str(&format!(
            "{:>4} {:>12} {:>10} {:>10} {:>6} {:>8}  {}\n",
            "P", "throughput", "p50(us)", "p99(us)", "eff", "quality", "detail"
        ));
        for pt in &self.points {
            match &pt.error {
                Some(reason) => out.push_str(&format!(
                    "{:>4} {:>12} {:>10} {:>10} {:>6} {:>8}  {}\n",
                    pt.p, "-", "-", "-", "-", "failed", reason
                )),
                None => {
                    let eff = pt
                        .efficiency
                        .map_or_else(|| "-".to_string(), |e| format!("{e:.2}"));
                    out.push_str(&format!(
                        "{:>4} {:>12.1} {:>10.2} {:>10.2} {:>6} {:>8}  \n",
                        pt.p, pt.throughput, pt.p50_us, pt.p99_us, eff, pt.quality
                    ));
                }
            }
        }
        out
    }
}

impl fmt::Display for ScalingCurve {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Deserializes a report's `scaling` field: absent (older artifacts)
/// means no curves, so pre-scale reports keep loading.
pub(crate) fn scaling_from_value(value: &Value) -> Result<Vec<ScalingCurve>, DeError> {
    Ok(Option::<Vec<ScalingCurve>>::from_value(value)
        .map_err(|e| e.in_field("scaling"))?
        .unwrap_or_default())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(p: u32, throughput: f64) -> ScalePoint {
        ScalePoint {
            p,
            ops: 1000 * u64::from(p),
            throughput,
            p50_us: 2.0 + f64::from(p),
            p99_us: 5.0 + f64::from(p),
            cv: 0.05,
            quality: "good".into(),
            efficiency: None,
            generators: (0..p)
                .map(|index| GeneratorSample {
                    index,
                    throughput: throughput / f64::from(p),
                    cv: 0.04,
                    quality: "good".into(),
                })
                .collect(),
            error: None,
        }
    }

    fn curve() -> ScalingCurve {
        let mut c = ScalingCurve {
            bench: "bw_mem".into(),
            unit: "MB/s".into(),
            points: vec![point(1, 1000.0), point(2, 1600.0), point(4, 2000.0)],
        };
        c.compute_efficiency();
        c
    }

    #[test]
    fn efficiency_is_relative_to_p1() {
        let c = curve();
        assert!((c.points[0].efficiency.unwrap() - 1.0).abs() < 1e-12);
        assert!((c.points[1].efficiency.unwrap() - 0.8).abs() < 1e-12);
        assert!((c.points[2].efficiency.unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn efficiency_unknown_without_a_baseline() {
        let mut c = curve();
        c.points[0].error = Some("generator panicked".into());
        c.compute_efficiency();
        assert!(c.baseline().is_none());
        assert!(c.points.iter().all(|pt| pt.efficiency.is_none()));
    }

    #[test]
    fn efficiency_unknown_on_zero_throughput_baseline() {
        // A P=1 point that "succeeded" with zero throughput must not put
        // inf/NaN into later points' JSON.
        let mut c = curve();
        c.points[0].throughput = 0.0;
        c.compute_efficiency();
        assert!(
            c.points.iter().all(|pt| pt.efficiency.is_none()),
            "zero baseline must yield unknown efficiency, got {:?}",
            c.points.iter().map(|p| p.efficiency).collect::<Vec<_>>()
        );
        let json = c.to_value();
        let back = ScalingCurve::from_value(&json).expect("roundtrip");
        assert_eq!(back, c, "unknown efficiency survives serialization");
    }

    #[test]
    fn failed_points_are_excluded_from_ok_points() {
        let mut c = curve();
        c.points[1].error = Some("boom".into());
        let ps: Vec<u32> = c.ok_points().map(|pt| pt.p).collect();
        assert_eq!(ps, vec![1, 4]);
        assert!(!c.points[1].is_ok());
    }

    #[test]
    fn curve_roundtrips_through_value() {
        let c = curve();
        let back = ScalingCurve::from_value(&c.to_value()).expect("roundtrip");
        assert_eq!(back, c);
    }

    #[test]
    fn render_marks_failed_points() {
        let mut c = curve();
        c.points[2].error = Some("generator 3 panicked".into());
        let text = c.render();
        assert!(text.contains("bw_mem under load"), "{text}");
        assert!(text.contains("MB/s"), "{text}");
        assert!(text.contains("failed"), "{text}");
        assert!(text.contains("generator 3 panicked"), "{text}");
        assert!(text.contains("good"), "{text}");
    }

    #[test]
    fn missing_scaling_field_reads_as_empty() {
        assert_eq!(scaling_from_value(&Value::Null).expect("tolerant"), vec![]);
    }
}
