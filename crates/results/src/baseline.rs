//! Archived reference runs for noise-aware regression gating.
//!
//! A baseline is a full [`RunReport`] — values *and* their recorded noise
//! bands — keyed by a host fingerprint, so `suite --baseline check` can
//! refuse to compare a laptop against a build server. Files live under
//! `.lmbench/baselines/` as plain JSON: inspectable with any tool,
//! diffable in review, uploadable as CI artifacts.
//!
//! The directory store itself lives in [`crate::store`] ([`BaselineStore`]
//! is its [`DirStore`](crate::store::DirStore) under the name the CLI
//! grew up with); this module keeps the envelope type and the host
//! [`fingerprint`].

use crate::runreport::RunReport;
use crate::schema::SuiteRun;
use crate::store::SCHEMA_VERSION;
use serde::{DeError, Deserialize, Serialize, Value};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::time::{SystemTime, UNIX_EPOCH};

pub use crate::store::DirStore as BaselineStore;

/// A stored reference run: the unit every [`ReportStore`](crate::store::ReportStore)
/// appends, and the envelope the results daemon ships over the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// Schema version this entry was written with (see
    /// [`crate::store::SCHEMA_VERSION`]); files that predate the field
    /// read as version 1.
    pub schema_version: u32,
    /// Host fingerprint (see [`fingerprint`]); comparisons across
    /// fingerprints are refused by callers, not silently wrong.
    pub fingerprint: String,
    /// Human-readable host name, for report headers.
    pub host: String,
    /// Capture time, seconds since the Unix epoch.
    pub unix_seconds: u64,
    /// The archived run, noise bands included.
    pub report: RunReport,
    /// The table payload (paper rows) the run produced, when the donor
    /// shipped one — this is what lets the results daemon regenerate
    /// paper tables from any stored entry. Absent in v1 files.
    pub run: Option<SuiteRun>,
}

// Hand-written for the two tolerances the store's versioning policy
// promises: `schema_version` absent reads as v1, and the v2 `run` payload
// stays optional (and unserialized when absent, keeping v1-era files and
// plain baselines byte-minimal).
impl Serialize for Baseline {
    fn to_value(&self) -> Value {
        let mut obj = Value::object();
        obj.set(
            "schema_version",
            Value::Int(i128::from(self.schema_version)),
        );
        obj.set("fingerprint", Value::Str(self.fingerprint.clone()));
        obj.set("host", Value::Str(self.host.clone()));
        obj.set("unix_seconds", Value::Int(i128::from(self.unix_seconds)));
        obj.set("report", self.report.to_value());
        if let Some(run) = &self.run {
            obj.set("run", run.to_value());
        }
        obj
    }
}

impl Deserialize for Baseline {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        let obj = value.expect_object("Baseline")?;
        fn field<T: Deserialize>(obj: &Value, name: &str) -> Result<T, DeError> {
            T::from_value(obj.field(name)).map_err(|e| e.in_field(name))
        }
        Ok(Baseline {
            schema_version: field::<Option<u32>>(obj, "schema_version")?.unwrap_or(1),
            fingerprint: field(obj, "fingerprint")?,
            host: field(obj, "host")?,
            unix_seconds: field(obj, "unix_seconds")?,
            report: field(obj, "report")?,
            run: field(obj, "run")?,
        })
    }
}

impl Baseline {
    /// Wraps a report captured now on the described host.
    #[must_use]
    pub fn now(fingerprint: &str, host: &str, report: RunReport) -> Baseline {
        let unix_seconds = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        Baseline {
            schema_version: SCHEMA_VERSION,
            fingerprint: fingerprint.to_string(),
            host: host.to_string(),
            unix_seconds,
            report,
            run: None,
        }
    }

    /// Attaches the table payload the run produced, so the entry can
    /// regenerate paper tables wherever it is stored.
    #[must_use]
    pub fn with_run(mut self, run: SuiteRun) -> Baseline {
        self.run = Some(run);
        self
    }

    /// Serializes to pretty-printed JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("baseline types always serialize")
    }

    /// Parses [`Baseline::to_json`] output back.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// Serializes without whitespace, for one-entry-per-line segment files.
    pub fn to_json_compact(&self) -> String {
        serde_json::to_string(self).expect("baseline types always serialize")
    }
}

/// A stable, filename-safe digest of the identity strings that make two
/// runs comparable (host name, CPU model, memory size, ...). Differing
/// inputs give differing fingerprints with overwhelming probability;
/// equal inputs always agree across runs of the same binary.
#[must_use]
pub fn fingerprint(parts: &[&str]) -> String {
    let mut hasher = DefaultHasher::new();
    for part in parts {
        part.hash(&mut hasher);
        0xffu8.hash(&mut hasher); // separator: ["ab","c"] != ["a","bc"]
    }
    // A short human hint from the first part keeps filenames greppable.
    let hint: String = parts
        .first()
        .unwrap_or(&"host")
        .chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .take(12)
        .collect::<String>()
        .to_ascii_lowercase();
    let hint = if hint.is_empty() { "host".into() } else { hint };
    format!("{hint}-{:016x}", hasher.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runreport::{BenchRecord, BenchStatus};
    use crate::schema::SyscallRow;

    fn report(bench: &str) -> RunReport {
        RunReport {
            records: vec![BenchRecord {
                name: bench.into(),
                produces: "Table 7".into(),
                status: BenchStatus::Ok,
                attempts: 1,
                wall_ms: 1.0,
                exclusive: false,
                provenance: None,
                rusage: None,
                counters: None,
                metrics: Vec::new(),
                span: None,
            }],
            ..Default::default()
        }
    }

    fn temp_store(tag: &str) -> BaselineStore {
        let dir = std::env::temp_dir().join(format!(
            "lmbench-baseline-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        BaselineStore::new(dir)
    }

    #[test]
    fn fingerprint_is_stable_and_input_sensitive() {
        let a = fingerprint(&["myhost", "x86_64", "Linux 6.1"]);
        assert_eq!(a, fingerprint(&["myhost", "x86_64", "Linux 6.1"]));
        assert_ne!(a, fingerprint(&["myhost", "x86_64", "Linux 6.2"]));
        assert_ne!(fingerprint(&["ab", "c"]), fingerprint(&["a", "bc"]));
        assert!(a.starts_with("myhost-"), "{a}");
        assert!(
            a.chars().all(|c| c.is_ascii_alphanumeric() || c == '-'),
            "filename-unsafe fingerprint {a}"
        );
    }

    #[test]
    fn save_then_latest_roundtrips() {
        let store = temp_store("roundtrip");
        let fp = fingerprint(&["hostA"]);
        let baseline = Baseline::now(&fp, "hostA", report("lat_syscall"));
        let path = store.save(&baseline).expect("save");
        assert!(path.exists());
        let loaded = store.latest(&fp).expect("read").expect("found");
        assert_eq!(loaded, baseline);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn latest_picks_the_newest_and_filters_by_fingerprint() {
        let store = temp_store("latest");
        let fp = fingerprint(&["hostA"]);
        let mut old = Baseline::now(&fp, "hostA", report("old"));
        old.unix_seconds = 100;
        let mut new = Baseline::now(&fp, "hostA", report("new"));
        new.unix_seconds = 200;
        let other = Baseline::now(&fingerprint(&["hostB"]), "hostB", report("other"));
        store.save(&old).unwrap();
        store.save(&new).unwrap();
        store.save(&other).unwrap();
        let got = store.latest(&fp).unwrap().unwrap();
        assert_eq!(got.report.records[0].name, "new");
        assert_eq!(store.latest(&fingerprint(&["hostC"])).unwrap(), None);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn same_second_saves_do_not_clobber() {
        let store = temp_store("clobber");
        let fp = fingerprint(&["hostA"]);
        let mut a = Baseline::now(&fp, "hostA", report("first"));
        a.unix_seconds = 42;
        let mut b = Baseline::now(&fp, "hostA", report("second"));
        b.unix_seconds = 42;
        let pa = store.save(&a).unwrap();
        let pb = store.save(&b).unwrap();
        assert_ne!(pa, pb);
        // Tie on seconds: the lexicographically-last filename wins, which
        // is the later save ("...-42-1.json" > "...-42.json"? No — judged
        // by name only among equal timestamps, so assert both survive).
        assert!(pa.exists() && pb.exists());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn missing_store_and_corrupt_files_read_as_no_baseline() {
        let store = temp_store("corrupt");
        let fp = fingerprint(&["hostA"]);
        assert_eq!(store.latest(&fp).unwrap(), None, "missing dir");
        std::fs::create_dir_all(store.dir()).unwrap();
        std::fs::write(store.dir().join(format!("{fp}-7.json")), "{not json").unwrap();
        assert_eq!(store.latest(&fp).unwrap(), None, "corrupt file");
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn v1_envelope_without_schema_version_reads_as_v1() {
        // Files written before the field existed must keep loading.
        let fp = fingerprint(&["hostA"]);
        let mut value = Baseline::now(&fp, "hostA", report("lat_syscall")).to_value();
        value.set("schema_version", Value::Null);
        let loaded = Baseline::from_value(&value).expect("tolerant");
        assert_eq!(loaded.schema_version, 1);
        assert_eq!(loaded.run, None);
        // Re-serializing preserves the version it was loaded with.
        let again = Baseline::from_json(&loaded.to_json()).expect("reparse");
        assert_eq!(again.schema_version, 1);
    }

    #[test]
    fn run_payload_roundtrips_and_stays_optional() {
        let fp = fingerprint(&["hostA"]);
        let plain = Baseline::now(&fp, "hostA", report("lat_syscall"));
        assert!(
            !plain.to_json().contains("\"run\""),
            "absent payload is not serialized"
        );
        let with_run = plain.clone().with_run(SuiteRun {
            syscall: Some(SyscallRow {
                system: "hostA".into(),
                syscall_us: 4.2,
            }),
            ..Default::default()
        });
        assert_eq!(with_run.schema_version, SCHEMA_VERSION);
        let back = Baseline::from_json(&with_run.to_json()).expect("roundtrip");
        assert_eq!(back, with_run);
        assert_eq!(back.run.unwrap().syscall.unwrap().syscall_us, 4.2);
    }
}
