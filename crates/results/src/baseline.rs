//! Archived reference runs for noise-aware regression gating.
//!
//! A baseline is a full [`RunReport`] — values *and* their recorded noise
//! bands — keyed by a host fingerprint, so `suite --baseline check` can
//! refuse to compare a laptop against a build server. Files live under
//! `.lmbench/baselines/` as plain JSON: inspectable with any tool,
//! diffable in review, uploadable as CI artifacts.

use crate::runreport::RunReport;
use serde::{Deserialize, Serialize};
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::io;
use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

/// A stored reference run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Baseline {
    /// Host fingerprint (see [`fingerprint`]); comparisons across
    /// fingerprints are refused by callers, not silently wrong.
    pub fingerprint: String,
    /// Human-readable host name, for report headers.
    pub host: String,
    /// Capture time, seconds since the Unix epoch.
    pub unix_seconds: u64,
    /// The archived run, noise bands included.
    pub report: RunReport,
}

impl Baseline {
    /// Wraps a report captured now on the described host.
    #[must_use]
    pub fn now(fingerprint: &str, host: &str, report: RunReport) -> Baseline {
        let unix_seconds = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        Baseline {
            fingerprint: fingerprint.to_string(),
            host: host.to_string(),
            unix_seconds,
            report,
        }
    }

    /// Serializes to pretty-printed JSON.
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("baseline types always serialize")
    }

    /// Parses [`Baseline::to_json`] output back.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }
}

/// A stable, filename-safe digest of the identity strings that make two
/// runs comparable (host name, CPU model, memory size, ...). Differing
/// inputs give differing fingerprints with overwhelming probability;
/// equal inputs always agree across runs of the same binary.
#[must_use]
pub fn fingerprint(parts: &[&str]) -> String {
    let mut hasher = DefaultHasher::new();
    for part in parts {
        part.hash(&mut hasher);
        0xffu8.hash(&mut hasher); // separator: ["ab","c"] != ["a","bc"]
    }
    // A short human hint from the first part keeps filenames greppable.
    let hint: String = parts
        .first()
        .unwrap_or(&"host")
        .chars()
        .filter(|c| c.is_ascii_alphanumeric())
        .take(12)
        .collect::<String>()
        .to_ascii_lowercase();
    let hint = if hint.is_empty() { "host".into() } else { hint };
    format!("{hint}-{:016x}", hasher.finish())
}

/// A directory of [`Baseline`] files.
#[derive(Debug, Clone)]
pub struct BaselineStore {
    dir: PathBuf,
}

impl BaselineStore {
    /// The conventional location, relative to the working directory.
    #[must_use]
    pub fn default_dir() -> PathBuf {
        PathBuf::from(".lmbench").join("baselines")
    }

    /// A store rooted at `dir` (created lazily on first save).
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> BaselineStore {
        BaselineStore { dir: dir.into() }
    }

    /// The store's directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Writes a baseline as `{fingerprint}-{unix_seconds}.json` (with a
    /// numeric suffix if two saves land in the same second) and returns
    /// the path.
    pub fn save(&self, baseline: &Baseline) -> io::Result<PathBuf> {
        std::fs::create_dir_all(&self.dir)?;
        let stem = format!("{}-{}", baseline.fingerprint, baseline.unix_seconds);
        let mut path = self.dir.join(format!("{stem}.json"));
        let mut n = 1u32;
        while path.exists() {
            path = self.dir.join(format!("{stem}-{n}.json"));
            n += 1;
        }
        std::fs::write(&path, baseline.to_json())?;
        Ok(path)
    }

    /// The most recent readable baseline for `fingerprint`, or `None` when
    /// the store has nothing comparable. Unreadable or mismatched files are
    /// skipped, not fatal: a corrupt baseline should read as "no baseline",
    /// never as "no regression".
    pub fn latest(&self, fingerprint: &str) -> io::Result<Option<Baseline>> {
        let entries = match std::fs::read_dir(&self.dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        let mut best: Option<(u64, String, Baseline)> = None;
        for entry in entries {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue;
            }
            let Ok(text) = std::fs::read_to_string(&path) else {
                continue;
            };
            let Ok(baseline) = Baseline::from_json(&text) else {
                continue;
            };
            if baseline.fingerprint != fingerprint {
                continue;
            }
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default()
                .to_string();
            let key = (baseline.unix_seconds, name);
            if best
                .as_ref()
                .is_none_or(|(s, n, _)| (*s, n.as_str()) < (key.0, key.1.as_str()))
            {
                best = Some((key.0, key.1, baseline));
            }
        }
        Ok(best.map(|(_, _, b)| b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runreport::{BenchRecord, BenchStatus};

    fn report(bench: &str) -> RunReport {
        RunReport {
            scaling: Vec::new(),
            records: vec![BenchRecord {
                name: bench.into(),
                produces: "Table 7".into(),
                status: BenchStatus::Ok,
                attempts: 1,
                wall_ms: 1.0,
                exclusive: false,
                provenance: None,
                rusage: None,
                metrics: Vec::new(),
                span: None,
            }],
        }
    }

    fn temp_store(tag: &str) -> BaselineStore {
        let dir = std::env::temp_dir().join(format!(
            "lmbench-baseline-test-{tag}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        BaselineStore::new(dir)
    }

    #[test]
    fn fingerprint_is_stable_and_input_sensitive() {
        let a = fingerprint(&["myhost", "x86_64", "Linux 6.1"]);
        assert_eq!(a, fingerprint(&["myhost", "x86_64", "Linux 6.1"]));
        assert_ne!(a, fingerprint(&["myhost", "x86_64", "Linux 6.2"]));
        assert_ne!(fingerprint(&["ab", "c"]), fingerprint(&["a", "bc"]));
        assert!(a.starts_with("myhost-"), "{a}");
        assert!(
            a.chars().all(|c| c.is_ascii_alphanumeric() || c == '-'),
            "filename-unsafe fingerprint {a}"
        );
    }

    #[test]
    fn save_then_latest_roundtrips() {
        let store = temp_store("roundtrip");
        let fp = fingerprint(&["hostA"]);
        let baseline = Baseline::now(&fp, "hostA", report("lat_syscall"));
        let path = store.save(&baseline).expect("save");
        assert!(path.exists());
        let loaded = store.latest(&fp).expect("read").expect("found");
        assert_eq!(loaded, baseline);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn latest_picks_the_newest_and_filters_by_fingerprint() {
        let store = temp_store("latest");
        let fp = fingerprint(&["hostA"]);
        let mut old = Baseline::now(&fp, "hostA", report("old"));
        old.unix_seconds = 100;
        let mut new = Baseline::now(&fp, "hostA", report("new"));
        new.unix_seconds = 200;
        let other = Baseline::now(&fingerprint(&["hostB"]), "hostB", report("other"));
        store.save(&old).unwrap();
        store.save(&new).unwrap();
        store.save(&other).unwrap();
        let got = store.latest(&fp).unwrap().unwrap();
        assert_eq!(got.report.records[0].name, "new");
        assert_eq!(store.latest(&fingerprint(&["hostC"])).unwrap(), None);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn same_second_saves_do_not_clobber() {
        let store = temp_store("clobber");
        let fp = fingerprint(&["hostA"]);
        let mut a = Baseline::now(&fp, "hostA", report("first"));
        a.unix_seconds = 42;
        let mut b = Baseline::now(&fp, "hostA", report("second"));
        b.unix_seconds = 42;
        let pa = store.save(&a).unwrap();
        let pb = store.save(&b).unwrap();
        assert_ne!(pa, pb);
        // Tie on seconds: the lexicographically-last filename wins, which
        // is the later save ("...-42-1.json" > "...-42.json"? No — judged
        // by name only among equal timestamps, so assert both survive).
        assert!(pa.exists() && pb.exists());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn missing_store_and_corrupt_files_read_as_no_baseline() {
        let store = temp_store("corrupt");
        let fp = fingerprint(&["hostA"]);
        assert_eq!(store.latest(&fp).unwrap(), None, "missing dir");
        std::fs::create_dir_all(store.dir()).unwrap();
        std::fs::write(store.dir().join(format!("{fp}-7.json")), "{not json").unwrap();
        assert_eq!(store.latest(&fp).unwrap(), None, "corrupt file");
        let _ = std::fs::remove_dir_all(store.dir());
    }
}
