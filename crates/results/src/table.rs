//! Table rendering with the paper's conventions.
//!
//! §4.1: "All of the tables are sorted, from best to worst. Some tables
//! have multiple columns of results and those tables are sorted on only one
//! of the columns. The sorted column's heading will be in bold." In a
//! terminal we render the bold heading in CAPITALS bracketed by `*`.

use std::fmt;

/// Column alignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Align {
    /// Left-aligned (names).
    #[default]
    Left,
    /// Right-aligned (numbers).
    Right,
}

/// Whether larger or smaller values are "better" for the sort column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SortOrder {
    /// Bandwidths: larger first.
    HigherIsBetter,
    /// Latencies: smaller first.
    LowerIsBetter,
}

/// One table cell: text plus an optional numeric sort key.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    text: String,
    key: Option<f64>,
}

impl Cell {
    /// A text cell (not sortable).
    pub fn text(s: impl Into<String>) -> Self {
        Self {
            text: s.into(),
            key: None,
        }
    }

    /// A numeric cell rendered with `decimals` places.
    pub fn num(v: f64, decimals: usize) -> Self {
        Self {
            text: format!("{v:.decimals$}"),
            key: Some(v),
        }
    }

    /// A missing value (the paper prints "-1" or "?"; we print "-").
    pub fn missing() -> Self {
        Self {
            text: "-".into(),
            key: None,
        }
    }

    /// An optional numeric cell.
    pub fn opt(v: Option<f64>, decimals: usize) -> Self {
        match v {
            Some(v) => Self::num(v, decimals),
            None => Self::missing(),
        }
    }
}

/// A renderable results table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Vec<Cell>>,
    sort_column: Option<(usize, SortOrder)>,
}

impl Table {
    /// Creates a table with `headers`; the first column is left-aligned,
    /// the rest right-aligned (override with [`Table::align`]).
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        let aligns = (0..headers.len())
            .map(|i| if i == 0 { Align::Left } else { Align::Right })
            .collect();
        Self {
            title: title.into(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            aligns,
            rows: Vec::new(),
            sort_column: None,
        }
    }

    /// Overrides one column's alignment.
    pub fn align(mut self, column: usize, align: Align) -> Self {
        self.aligns[column] = align;
        self
    }

    /// Declares the bold sorted column.
    ///
    /// # Panics
    ///
    /// Panics if `column` is out of range.
    pub fn sorted_on(mut self, column: usize, order: SortOrder) -> Self {
        assert!(column < self.headers.len(), "sort column out of range");
        self.sort_column = Some((column, order));
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn row(&mut self, cells: Vec<Cell>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Sorts rows best-to-worst on the declared column. Rows without a
    /// numeric key in that column sink to the bottom (the paper's "-1"
    /// rows). Stable, so equal keys keep insertion order.
    pub fn sort(&mut self) {
        let Some((col, order)) = self.sort_column else {
            return;
        };
        self.rows.sort_by(|a, b| {
            let ka = a[col].key;
            let kb = b[col].key;
            match (ka, kb) {
                (Some(x), Some(y)) => match order {
                    SortOrder::HigherIsBetter => y.total_cmp(&x),
                    SortOrder::LowerIsBetter => x.total_cmp(&y),
                },
                (Some(_), None) => std::cmp::Ordering::Less,
                (None, Some(_)) => std::cmp::Ordering::Greater,
                (None, None) => std::cmp::Ordering::Equal,
            }
        });
    }

    /// The sorted-column values, best first (for tests and comparisons).
    pub fn column_keys(&self, column: usize) -> Vec<Option<f64>> {
        self.rows.iter().map(|r| r[column].key).collect()
    }

    /// Renders to a string, sorting first.
    pub fn render(&mut self) -> String {
        self.sort();
        let mut headers = self.headers.clone();
        if let Some((col, _)) = self.sort_column {
            headers[col] = format!("*{}*", headers[col].to_uppercase());
        }
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.text.len());
            }
        }
        let mut out = String::new();
        out.push_str(&self.title);
        out.push('\n');
        let fmt_row = |cells: &[String], widths: &[usize], aligns: &[Align]| -> String {
            let mut line = String::new();
            for (i, (text, width)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                match aligns[i] {
                    Align::Left => line.push_str(&format!("{text:<width$}")),
                    Align::Right => line.push_str(&format!("{text:>width$}")),
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&headers, &widths, &self.aligns));
        out.push('\n');
        let rule_len = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(rule_len));
        out.push('\n');
        for row in &self.rows {
            let texts: Vec<String> = row.iter().map(|c| c.text.clone()).collect();
            out.push_str(&fmt_row(&texts, &widths, &self.aligns));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.clone().render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t =
            Table::new("Latency (us)", &["System", "lat"]).sorted_on(1, SortOrder::LowerIsBetter);
        t.row(vec![Cell::text("slow"), Cell::num(30.0, 0)]);
        t.row(vec![Cell::text("fast"), Cell::num(3.0, 0)]);
        t.row(vec![Cell::text("mid"), Cell::num(10.0, 0)]);
        t
    }

    #[test]
    fn sorts_best_to_worst_lower_better() {
        let mut t = sample();
        t.sort();
        assert_eq!(t.column_keys(1), vec![Some(3.0), Some(10.0), Some(30.0)]);
    }

    #[test]
    fn sorts_best_to_worst_higher_better() {
        let mut t = Table::new("BW", &["System", "MB/s"]).sorted_on(1, SortOrder::HigherIsBetter);
        t.row(vec![Cell::text("a"), Cell::num(10.0, 0)]);
        t.row(vec![Cell::text("b"), Cell::num(90.0, 0)]);
        t.sort();
        assert_eq!(t.column_keys(1), vec![Some(90.0), Some(10.0)]);
    }

    #[test]
    fn missing_values_sink_to_bottom() {
        let mut t = Table::new("BW", &["System", "MB/s"]).sorted_on(1, SortOrder::HigherIsBetter);
        t.row(vec![Cell::text("broken"), Cell::missing()]);
        t.row(vec![Cell::text("works"), Cell::num(5.0, 0)]);
        t.sort();
        assert_eq!(t.column_keys(1), vec![Some(5.0), None]);
    }

    #[test]
    fn render_marks_the_bold_column() {
        let rendered = sample().render();
        assert!(rendered.contains("*LAT*"), "{rendered}");
        assert!(rendered.contains("Latency (us)"));
        // Best row first.
        let fast_pos = rendered.find("fast").unwrap();
        let slow_pos = rendered.find("slow").unwrap();
        assert!(fast_pos < slow_pos);
    }

    #[test]
    fn render_aligns_columns() {
        let rendered = sample().render();
        let lines: Vec<&str> = rendered.lines().collect();
        // Header + rule + 3 rows + title.
        assert_eq!(lines.len(), 6);
        // All data lines have the same width or less (trailing trim).
        let rule = lines[2];
        assert!(rule.chars().all(|c| c == '-'));
    }

    #[test]
    fn sort_is_stable_for_ties() {
        let mut t = Table::new("T", &["Sys", "v"]).sorted_on(1, SortOrder::LowerIsBetter);
        t.row(vec![Cell::text("first"), Cell::num(5.0, 0)]);
        t.row(vec![Cell::text("second"), Cell::num(5.0, 0)]);
        t.sort();
        let r = t.render();
        assert!(r.find("first").unwrap() < r.find("second").unwrap());
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("T", &["a", "b"]);
        t.row(vec![Cell::text("only one")]);
    }

    #[test]
    fn unsorted_table_keeps_insertion_order() {
        let mut t = Table::new("T", &["Sys", "v"]);
        t.row(vec![Cell::text("z"), Cell::num(9.0, 0)]);
        t.row(vec![Cell::text("a"), Cell::num(1.0, 0)]);
        let r = t.render();
        assert!(r.find('z').unwrap() < r.rfind('a').unwrap());
        assert!(!r.contains('*'));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Sorting is a permutation: same multiset of keys, monotone order.
        #[test]
        fn sort_is_monotone_permutation(values in proptest::collection::vec(0.0f64..1e6, 1..40)) {
            let mut t = Table::new("T", &["n", "v"]).sorted_on(1, SortOrder::LowerIsBetter);
            for (i, v) in values.iter().enumerate() {
                t.row(vec![Cell::text(format!("r{i}")), Cell::num(*v, 3)]);
            }
            t.sort();
            let keys: Vec<f64> = t.column_keys(1).into_iter().flatten().collect();
            prop_assert_eq!(keys.len(), values.len());
            for w in keys.windows(2) {
                prop_assert!(w[0] <= w[1]);
            }
            let mut sorted_in = values.clone();
            sorted_in.sort_by(|a, b| a.total_cmp(b));
            let mut sorted_out = keys;
            sorted_out.sort_by(|a, b| a.total_cmp(b));
            // Same multiset up to the 3-decimal rendering (keys are exact).
            prop_assert_eq!(sorted_in, sorted_out);
        }
    }
}
