//! Noise-aware run-over-run comparison.
//!
//! The paper (§3.4) observes up to 30% run-to-run variation, which is why
//! a naive "this run is 8% slower" comparison of two suite runs is
//! meaningless: the question is whether a delta exceeds *that
//! measurement's own* noise band. The differ judges every archived metric
//! against the coefficient of variation its provenance recorded, so a
//! perf PR's claim can be checked from two report artifacts alone — the
//! Measure-Explain-Test-Improve loop's "test" step as a first-class
//! operation.

use crate::runreport::{BenchRecord, MetricValue, RunReport};
use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// When a delta counts as significant.
///
/// The band around "unchanged" is `max(floor, cv_multiplier · cv)` with
/// `cv` the wider of the two runs' recorded dispersions: a quiet
/// measurement gets a tight gate, a noisy one a wide gate, and nothing is
/// judged more finely than `floor` — the paper's variability observation
/// as a guard against false regressions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SignificanceRule {
    /// How many CVs of headroom a delta gets before it is significant.
    pub cv_multiplier: f64,
    /// Minimum relative band, whatever the CV claims.
    pub floor: f64,
}

impl Default for SignificanceRule {
    fn default() -> Self {
        SignificanceRule {
            cv_multiplier: 3.0,
            floor: 0.25,
        }
    }
}

/// The verdict on one metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DiffClass {
    /// Moved beyond the band, in the metric's direction of merit.
    Improved,
    /// Moved beyond the band, against the metric's direction of merit.
    Regressed,
    /// Within the noise band.
    Unchanged,
    /// Cannot be judged: missing on one side, a non-ok status, a unit
    /// with no direction of merit, or a suspect measurement whose delta
    /// stayed inside its (widened) band. A suspect side that still moves
    /// beyond the band is judged, not hidden — a grader flag must never
    /// mask a gross regression from the CI gate.
    Unknown,
}

impl DiffClass {
    /// Lowercase tag for tables and JSON.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            DiffClass::Improved => "improved",
            DiffClass::Regressed => "regressed",
            DiffClass::Unchanged => "unchanged",
            DiffClass::Unknown => "unknown",
        }
    }
}

impl Serialize for DiffClass {
    fn to_value(&self) -> Value {
        Value::Str(self.label().to_owned())
    }
}

impl Deserialize for DiffClass {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match String::from_value(value)?.as_str() {
            "improved" => Ok(DiffClass::Improved),
            "regressed" => Ok(DiffClass::Regressed),
            "unchanged" => Ok(DiffClass::Unchanged),
            "unknown" => Ok(DiffClass::Unknown),
            other => Err(DeError::new(format!("unknown DiffClass `{other}`"))),
        }
    }
}

/// Direction of merit implied by a unit name.
fn merit(unit: &str) -> Option<bool> {
    // Some(true): higher is better; Some(false): lower is better.
    // `ops/s` is the scale runner's rate unit for round-trip benchmarks.
    // `ipc` (instructions per cycle) and `pki` (misses per
    // kilo-instruction) are the hardware-counter figures of merit: an
    // IPC drop or a miss-rate rise past the band is a regression.
    // `x` is a dimensionless penalty ratio (the load runner's omission
    // gap: open-loop p99 over closed-loop p99) — growth means the
    // service hides more queueing at load, so lower is better.
    match unit {
        "MB/s" | "ops/s" | "ipc" => Some(true),
        "us" | "ms" | "ns" | "pki" | "x" => Some(false),
        _ => None,
    }
}

/// One metric's run-over-run verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiffRow {
    /// Benchmark name.
    pub bench: String,
    /// Metric label within the benchmark (may be empty for single-metric
    /// benchmarks).
    pub metric: String,
    /// Unit name.
    pub unit: String,
    /// Baseline value (NaN when missing there).
    pub baseline: f64,
    /// Current value (NaN when missing there).
    pub current: f64,
    /// `(current - baseline) / baseline`; 0.0 when unjudgeable.
    pub delta_frac: f64,
    /// The significance band the delta was judged against.
    pub band_frac: f64,
    /// The verdict.
    pub class: DiffClass,
    /// Why the verdict is `Unknown`, empty otherwise.
    pub note: String,
}

/// Every metric of two runs, judged.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ReportDiff {
    /// One row per (benchmark, metric) present in either run.
    pub rows: Vec<DiffRow>,
}

impl ReportDiff {
    /// Diffs `current` against `baseline` under the default rule.
    #[must_use]
    pub fn between(baseline: &RunReport, current: &RunReport) -> ReportDiff {
        ReportDiff::with_rule(baseline, current, SignificanceRule::default())
    }

    /// Diffs `current` against `baseline` under an explicit rule.
    #[must_use]
    pub fn with_rule(
        baseline: &RunReport,
        current: &RunReport,
        rule: SignificanceRule,
    ) -> ReportDiff {
        let mut rows = Vec::new();
        let mut seen: Vec<&str> = Vec::new();
        for base_rec in &baseline.records {
            seen.push(base_rec.name.as_str());
            diff_bench(
                Some(base_rec),
                current.find(&base_rec.name),
                rule,
                &mut rows,
            );
        }
        for cur_rec in &current.records {
            if !seen.contains(&cur_rec.name.as_str()) {
                diff_bench(None, Some(cur_rec), rule, &mut rows);
            }
        }
        diff_harness(baseline, current, rule, &mut rows);
        ReportDiff { rows }
    }

    /// Rows judged significant regressions.
    pub fn regressions(&self) -> impl Iterator<Item = &DiffRow> {
        self.rows.iter().filter(|r| r.class == DiffClass::Regressed)
    }

    /// True if any metric regressed beyond its band — the CI gate.
    #[must_use]
    pub fn has_regressions(&self) -> bool {
        self.regressions().next().is_some()
    }

    /// Count of rows with the given class.
    #[must_use]
    pub fn count(&self, class: DiffClass) -> usize {
        self.rows.iter().filter(|r| r.class == class).count()
    }

    /// Serializes to pretty-printed JSON (the `diff --json` output).
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("diff types always serialize")
    }

    /// Parses [`ReportDiff::to_json`] output back.
    pub fn from_json(json: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(json)
    }

    /// The regression table: one fixed-width row per metric plus a
    /// summary line.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<16} {:<18} {:<5} {:>12} {:>12} {:>8} {:>7}  {:<10} {}\n",
            "benchmark", "metric", "unit", "baseline", "current", "delta", "band", "class", "note"
        ));
        for r in &self.rows {
            let value = |v: f64| {
                if v.is_finite() {
                    format!("{v:.2}")
                } else {
                    "-".to_string()
                }
            };
            out.push_str(&format!(
                "{:<16} {:<18} {:<5} {:>12} {:>12} {:>+7.1}% {:>6.1}%  {:<10} {}\n",
                r.bench,
                if r.metric.is_empty() {
                    "(result)"
                } else {
                    &r.metric
                },
                r.unit,
                value(r.baseline),
                value(r.current),
                r.delta_frac * 100.0,
                r.band_frac * 100.0,
                r.class.label(),
                r.note
            ));
        }
        out.push_str(&format!(
            "{} improved, {} regressed, {} unchanged, {} unknown of {} metrics\n",
            self.count(DiffClass::Improved),
            self.count(DiffClass::Regressed),
            self.count(DiffClass::Unchanged),
            self.count(DiffClass::Unknown),
            self.rows.len()
        ));
        out
    }
}

impl fmt::Display for ReportDiff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Appends one row per metric label present on either side of a bench
/// pairing.
fn diff_bench(
    base: Option<&BenchRecord>,
    cur: Option<&BenchRecord>,
    rule: SignificanceRule,
    rows: &mut Vec<DiffRow>,
) {
    fn metrics(rec: Option<&BenchRecord>) -> &[MetricValue] {
        rec.map(|r| r.metrics.as_slice()).unwrap_or(&[])
    }
    let name = base.or(cur).expect("one side present").name.clone();
    let mut labels: Vec<(&str, &str)> = Vec::new();
    for m in metrics(base).iter().chain(metrics(cur)) {
        if !labels.iter().any(|(l, _)| *l == m.label.as_str()) {
            labels.push((&m.label, &m.unit));
        }
    }
    if labels.is_empty() {
        // Nothing measurable on either side (sys_info rows, double skips):
        // nothing to judge, nothing to alarm on.
        return;
    }
    for (label, unit) in labels {
        let find = |rec: Option<&BenchRecord>| {
            metrics(rec)
                .iter()
                .find(|m| m.label == label)
                .map(|m| m.value)
        };
        let (bv, cv_val) = (find(base), find(cur));
        let mut row = DiffRow {
            bench: name.clone(),
            metric: label.to_string(),
            unit: unit.to_string(),
            baseline: bv.unwrap_or(f64::NAN),
            current: cv_val.unwrap_or(f64::NAN),
            delta_frac: 0.0,
            band_frac: rule.floor,
            class: DiffClass::Unknown,
            note: String::new(),
        };
        if let Some(note) = unjudgeable(base, cur, bv, cv_val) {
            row.note = note;
            rows.push(row);
            continue;
        }
        let (bv, cv_val) = (bv.unwrap(), cv_val.unwrap());
        let noise = |rec: Option<&BenchRecord>| {
            rec.and_then(|r| r.provenance.as_ref())
                .map(|p| p.cv)
                .filter(|cv| cv.is_finite())
                .unwrap_or(0.0)
        };
        // A suspect grade means the measurement's own spread is untrust-
        // worthy, so its (large) CV widens the band — but it must not
        // erase the comparison: values that still move beyond even the
        // widened band are a finding the grader flag cannot veto. (Found
        // by scenario fuzzing: a cost knee graded the baseline suspect
        // and a scripted 10x regression sailed through the CI gate as
        // "unknown".)
        let suspect = suspect_note(base, cur);
        let band = rule
            .floor
            .max(rule.cv_multiplier * noise(base).max(noise(cur)));
        let delta = (cv_val - bv) / bv;
        row.delta_frac = delta;
        row.band_frac = band;
        row.class = if delta.abs() <= band {
            match suspect {
                Some(note) => {
                    row.note = note;
                    DiffClass::Unknown
                }
                None => DiffClass::Unchanged,
            }
        } else {
            match merit(unit) {
                Some(higher_better) => {
                    if let Some(note) = suspect {
                        row.note = format!("{note}, beyond its widened band");
                    }
                    if (delta > 0.0) == higher_better {
                        DiffClass::Improved
                    } else {
                        DiffClass::Regressed
                    }
                }
                None => {
                    row.note = "no direction of merit for unit".into();
                    DiffClass::Unknown
                }
            }
        };
        rows.push(row);
    }
}

/// Relative band for harness self-budget rows: 100%, far wider than any
/// benchmark band. Suite wall time swings with machine load in ways no
/// provenance CV captures, so only a gross blowup (the scripted 10×
/// drill, a runaway retry loop) should alarm — a slow CI host must not.
const HARNESS_BAND: f64 = 1.0;

/// Absolute materiality floor for harness phases. A sub-millisecond
/// phase (warm-up on a quick run, say) can swing several hundred
/// percent between two healthy runs while costing nothing; a delta
/// must be large relatively AND absolutely before it alarms.
const HARNESS_ABS_FLOOR_MS: f64 = 1.0;

/// Appends the harness self-budget rows: per-phase wall time, lower is
/// better, judged against [`HARNESS_BAND`]. Reports without a budget on
/// either side contribute no rows — an older baseline or a hand-built
/// report must never alarm on infrastructure it did not measure.
fn diff_harness(
    baseline: &RunReport,
    current: &RunReport,
    rule: SignificanceRule,
    rows: &mut Vec<DiffRow>,
) {
    let (Some(b), Some(c)) = (&baseline.harness, &current.harness) else {
        return;
    };
    let band = HARNESS_BAND.max(rule.floor);
    for (metric, bv, cv) in [
        ("suite_ms", b.suite_ms, c.suite_ms),
        ("probe_ms", b.probe_ms, c.probe_ms),
        ("warmup_ms", b.warmup_ms, c.warmup_ms),
        ("calibrate_ms", b.calibrate_ms, c.calibrate_ms),
        ("attempt_ms", b.attempt_ms, c.attempt_ms),
        ("retry_ms", b.retry_ms, c.retry_ms),
    ] {
        if bv <= 0.0 && cv <= 0.0 {
            // The phase ran in neither report (no retries, say): nothing
            // to judge, nothing to clutter the table with.
            continue;
        }
        let mut row = DiffRow {
            bench: "(harness)".into(),
            metric: metric.into(),
            unit: "ms".into(),
            baseline: bv,
            current: cv,
            delta_frac: 0.0,
            band_frac: band,
            class: DiffClass::Unknown,
            note: String::new(),
        };
        if !(bv.is_finite() && bv > 0.0) {
            row.note = "baseline value unusable".into();
        } else if !cv.is_finite() {
            row.note = "current value unusable".into();
        } else {
            let delta = (cv - bv) / bv;
            row.delta_frac = delta;
            row.class = if delta.abs() <= band || (cv - bv).abs() <= HARNESS_ABS_FLOOR_MS {
                DiffClass::Unchanged
            } else if delta > 0.0 {
                DiffClass::Regressed
            } else {
                DiffClass::Improved
            };
        }
        rows.push(row);
    }
}

/// The reason this metric pairing cannot be judged at all, if any: a
/// side that is missing, did not finish, or produced no usable value.
/// (A *suspect* grade is not in this list — it degrades confidence, via
/// [`suspect_note`] and a widened band, but both values exist and a
/// gross move between them is still a judgment.)
fn unjudgeable(
    base: Option<&BenchRecord>,
    cur: Option<&BenchRecord>,
    bv: Option<f64>,
    cv: Option<f64>,
) -> Option<String> {
    let side = |rec: Option<&BenchRecord>, which: &str| -> Option<String> {
        match rec {
            None => Some(format!("benchmark missing in {which}")),
            Some(r) if !r.status.is_ok() => Some(format!("{} in {which}", r.status.label())),
            Some(_) => None,
        }
    };
    side(base, "baseline")
        .or_else(|| side(cur, "current"))
        .or_else(|| match (bv, cv) {
            (None, _) => Some("metric missing in baseline".into()),
            (_, None) => Some("metric missing in current".into()),
            (Some(b), _) if !(b.is_finite() && b > 0.0) => Some("baseline value unusable".into()),
            (_, Some(c)) if !c.is_finite() => Some("current value unusable".into()),
            _ => None,
        })
}

/// A note naming the first side whose measurement graded `suspect`,
/// if either did.
fn suspect_note(base: Option<&BenchRecord>, cur: Option<&BenchRecord>) -> Option<String> {
    let side = |rec: Option<&BenchRecord>, which: &str| -> Option<String> {
        rec.filter(|r| {
            r.provenance
                .as_ref()
                .is_some_and(|p| p.quality == "suspect")
        })
        .map(|_| format!("suspect measurement in {which}"))
    };
    side(base, "baseline").or_else(|| side(cur, "current"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runreport::{BenchStatus, Provenance};

    fn provenance(cv: f64, quality: &str) -> Provenance {
        Provenance {
            repetitions: 5,
            warmup_runs: 1,
            calibrated_iterations: 1024,
            clock_resolution_ns: 30.0,
            sample_min_ns: 100.0,
            sample_median_ns: 104.0,
            sample_p90_ns: 110.0,
            sample_p99_ns: 112.0,
            sample_max_ns: 113.0,
            mad_ns: 2.0,
            min_median_gap: 0.04,
            cv,
            iqr_outliers: 0,
            quality: quality.into(),
            measure_calls: 1,
            clamped_samples: 0,
        }
    }

    fn record(name: &str, metrics: &[(&str, f64, &str)], cv: f64) -> BenchRecord {
        BenchRecord {
            name: name.into(),
            produces: "Table 7".into(),
            status: BenchStatus::Ok,
            attempts: 1,
            wall_ms: 5.0,
            exclusive: false,
            provenance: Some(provenance(cv, if cv > 0.30 { "suspect" } else { "good" })),
            rusage: None,
            counters: None,
            metrics: metrics
                .iter()
                .map(|(label, value, unit)| MetricValue {
                    label: (*label).into(),
                    value: *value,
                    unit: (*unit).into(),
                })
                .collect(),
            span: None,
        }
    }

    fn report(records: Vec<BenchRecord>) -> RunReport {
        RunReport {
            records,
            ..Default::default()
        }
    }

    #[test]
    fn identical_reports_have_no_regressions() {
        let a = report(vec![
            record("lat_syscall", &[("syscall", 4.1, "us")], 0.02),
            record("bw_mem", &[("read", 8000.0, "MB/s")], 0.05),
        ]);
        let diff = ReportDiff::between(&a, &a.clone());
        assert!(!diff.has_regressions(), "{}", diff.render());
        assert_eq!(diff.count(DiffClass::Unchanged), 2);
    }

    #[test]
    fn latency_blowup_beyond_band_is_a_regression() {
        let a = report(vec![record("lat_syscall", &[("syscall", 4.0, "us")], 0.02)]);
        let b = report(vec![record("lat_syscall", &[("syscall", 8.0, "us")], 0.02)]);
        let diff = ReportDiff::between(&a, &b);
        assert!(diff.has_regressions());
        let row = &diff.rows[0];
        assert_eq!(row.class, DiffClass::Regressed);
        assert!((row.delta_frac - 1.0).abs() < 1e-12);
        // Reverse direction: the same move in bandwidth is an improvement.
        let a = report(vec![record("bw", &[("read", 4000.0, "MB/s")], 0.02)]);
        let b = report(vec![record("bw", &[("read", 8000.0, "MB/s")], 0.02)]);
        assert_eq!(
            ReportDiff::between(&a, &b).rows[0].class,
            DiffClass::Improved
        );
    }

    #[test]
    fn ipc_is_a_higher_is_better_metric() {
        // Counter-derived rows flow through the same gate: an IPC drop
        // past the band is a regression, a rise is an improvement.
        let a = report(vec![record("bw_mem", &[("ipc", 2.0, "ipc")], 0.02)]);
        let b = report(vec![record("bw_mem", &[("ipc", 1.0, "ipc")], 0.02)]);
        let diff = ReportDiff::between(&a, &b);
        assert_eq!(diff.rows[0].class, DiffClass::Regressed);
        assert!(diff.has_regressions());
        assert_eq!(
            ReportDiff::between(&b, &a).rows[0].class,
            DiffClass::Improved
        );
    }

    #[test]
    fn miss_rates_are_lower_is_better_metrics() {
        let a = report(vec![record(
            "lat_mem",
            &[("cache_miss_pki", 2.0, "pki")],
            0.02,
        )]);
        let b = report(vec![record(
            "lat_mem",
            &[("cache_miss_pki", 8.0, "pki")],
            0.02,
        )]);
        let diff = ReportDiff::between(&a, &b);
        assert_eq!(diff.rows[0].class, DiffClass::Regressed);
        assert_eq!(
            ReportDiff::between(&b, &a).rows[0].class,
            DiffClass::Improved
        );
    }

    #[test]
    fn ipc_wiggle_inside_the_band_is_noise() {
        // The noise-aware rules apply to counter metrics unchanged: a
        // 10% IPC dip sits inside the 25% floor.
        let a = report(vec![record("bw_mem", &[("ipc", 2.0, "ipc")], 0.0)]);
        let b = report(vec![record("bw_mem", &[("ipc", 1.8, "ipc")], 0.0)]);
        let diff = ReportDiff::between(&a, &b);
        assert_eq!(diff.rows[0].class, DiffClass::Unchanged);
    }

    #[test]
    fn noisy_measurements_earn_wider_bands() {
        // 60% slower, but the baseline recorded cv = 0.28: band is
        // 3 x 0.28 = 84%, so the delta is noise, not a regression.
        let a = report(vec![record("lat_ctx", &[("ctx", 10.0, "us")], 0.28)]);
        let b = report(vec![record("lat_ctx", &[("ctx", 16.0, "us")], 0.02)]);
        let diff = ReportDiff::between(&a, &b);
        assert_eq!(
            diff.rows[0].class,
            DiffClass::Unchanged,
            "{}",
            diff.render()
        );
        assert!((diff.rows[0].band_frac - 0.84).abs() < 1e-12);
    }

    #[test]
    fn floor_protects_quiet_measurements_from_false_alarms() {
        // cv ~ 0: without the floor a 1% wiggle would alarm.
        let a = report(vec![record("lat_syscall", &[("syscall", 4.00, "us")], 0.0)]);
        let b = report(vec![record("lat_syscall", &[("syscall", 4.04, "us")], 0.0)]);
        let diff = ReportDiff::between(&a, &b);
        assert_eq!(diff.rows[0].class, DiffClass::Unchanged);
        assert_eq!(diff.rows[0].band_frac, SignificanceRule::default().floor);
    }

    #[test]
    fn suspect_and_missing_sides_are_unknown_not_alarms() {
        // A suspect side widens the band (3x its 0.9 CV here = 270%): a
        // 100% move hides inside it and stays Unknown, noted.
        let suspect = report(vec![record("lat_ctx", &[("ctx", 10.0, "us")], 0.9)]);
        let fine = report(vec![record("lat_ctx", &[("ctx", 20.0, "us")], 0.02)]);
        let diff = ReportDiff::between(&suspect, &fine);
        assert_eq!(diff.rows[0].class, DiffClass::Unknown);
        assert_eq!(diff.rows[0].band_frac, 2.7);
        assert!(
            diff.rows[0].note.contains("suspect"),
            "{}",
            diff.rows[0].note
        );

        let empty = report(vec![]);
        let diff = ReportDiff::between(&empty, &fine);
        assert_eq!(diff.rows[0].class, DiffClass::Unknown);
        assert!(diff.rows[0].note.contains("missing in baseline"));
        assert!(!diff.has_regressions());
    }

    #[test]
    fn suspect_side_cannot_veto_a_gross_regression() {
        // Found by scenario fuzzing (simfuzz seed 1): a cost knee graded
        // the baseline suspect (cv 0.31) and a scripted 10x regression
        // was classed Unknown — invisible to the has_regressions() gate.
        // A move beyond even the suspect-widened band must alarm.
        let knee = report(vec![record("lat_ctx", &[("ctx", 1.0, "us")], 0.31)]);
        let ten_x = report(vec![record("lat_ctx", &[("ctx", 10.0, "us")], 0.02)]);
        let diff = ReportDiff::between(&knee, &ten_x);
        assert_eq!(diff.rows[0].class, DiffClass::Regressed);
        assert!((diff.rows[0].band_frac - 0.93).abs() < 1e-9); // 3 x 0.31
        assert!(
            diff.rows[0]
                .note
                .contains("suspect measurement in baseline"),
            "{}",
            diff.rows[0].note
        );
        assert!(diff.has_regressions());
    }

    #[test]
    fn failed_benchmarks_are_unknown() {
        let mut bad = record("lat_syscall", &[("syscall", 4.0, "us")], 0.02);
        bad.status = BenchStatus::Failed("boom".into());
        let a = report(vec![record("lat_syscall", &[("syscall", 4.0, "us")], 0.02)]);
        let b = report(vec![bad]);
        let diff = ReportDiff::between(&a, &b);
        assert_eq!(diff.rows[0].class, DiffClass::Unknown);
        assert!(diff.rows[0].note.contains("failed in current"));
    }

    #[test]
    fn unmapped_units_never_regress() {
        let a = report(vec![record("disk", &[("overhead", 1.0, "widgets")], 0.0)]);
        let b = report(vec![record("disk", &[("overhead", 9.0, "widgets")], 0.0)]);
        let diff = ReportDiff::between(&a, &b);
        assert_eq!(diff.rows[0].class, DiffClass::Unknown);
        assert!(diff.rows[0].note.contains("direction of merit"));
    }

    #[test]
    fn a_growing_omission_gap_is_a_regression() {
        // `x` is the load runner's omission-gap ratio: open-loop p99 over
        // closed-loop p99. Growth means the service hides more queueing
        // at load, so the differ judges it lower-is-better.
        let a = report(vec![record("load_lat_pipe", &[("gap", 1.2, "x")], 0.0)]);
        let b = report(vec![record("load_lat_pipe", &[("gap", 9.0, "x")], 0.0)]);
        let diff = ReportDiff::between(&a, &b);
        assert_eq!(diff.rows[0].class, DiffClass::Regressed);
        assert_eq!(
            ReportDiff::between(&b, &a).rows[0].class,
            DiffClass::Improved
        );
    }

    #[test]
    fn custom_rule_tightens_the_gate() {
        let rule = SignificanceRule {
            cv_multiplier: 2.0,
            floor: 0.01,
        };
        let a = report(vec![record("lat_syscall", &[("syscall", 4.0, "us")], 0.0)]);
        let b = report(vec![record("lat_syscall", &[("syscall", 4.2, "us")], 0.0)]);
        let diff = ReportDiff::with_rule(&a, &b, rule);
        assert_eq!(diff.rows[0].class, DiffClass::Regressed);
    }

    #[test]
    fn render_and_json_roundtrip() {
        let a = report(vec![
            record("lat_syscall", &[("syscall", 4.0, "us")], 0.02),
            record("bw_mem", &[("read", 8000.0, "MB/s")], 0.05),
        ]);
        let b = report(vec![
            record("lat_syscall", &[("syscall", 12.0, "us")], 0.02),
            record("bw_mem", &[("read", 8100.0, "MB/s")], 0.05),
        ]);
        let diff = ReportDiff::between(&a, &b);
        let text = diff.render();
        assert!(text.contains("regressed"), "{text}");
        assert!(
            text.contains("1 improved") || text.contains("0 improved"),
            "{text}"
        );
        assert!(text.contains("of 2 metrics"), "{text}");
        let back = ReportDiff::from_json(&diff.to_json()).expect("parse own JSON");
        assert_eq!(back, diff);
    }

    fn budget(suite_ms: f64) -> crate::runreport::HarnessMetrics {
        crate::runreport::HarnessMetrics {
            suite_ms,
            probe_ms: suite_ms / 100.0,
            warmup_ms: suite_ms / 10.0,
            calibrate_ms: suite_ms / 5.0,
            attempt_ms: suite_ms / 2.0,
            retry_ms: 0.0,
            trace_events: 100,
            trace_bytes: 10_000,
            trace_writes: 2,
            trace_dropped: 0,
        }
    }

    #[test]
    fn harness_budget_blowup_is_a_regression() {
        // The acceptance drill: a 10x suite-time blowup must alarm even
        // though every benchmark number is identical.
        let mut a = report(vec![record("lat_syscall", &[("syscall", 4.0, "us")], 0.02)]);
        a.harness = Some(budget(1_000.0));
        let mut b = a.clone();
        b.harness = Some(budget(10_000.0));
        let diff = ReportDiff::between(&a, &b);
        assert!(diff.has_regressions(), "{}", diff.render());
        let row = diff
            .rows
            .iter()
            .find(|r| r.bench == "(harness)" && r.metric == "suite_ms")
            .expect("suite_ms row");
        assert_eq!(row.class, DiffClass::Regressed);
        assert!((row.delta_frac - 9.0).abs() < 1e-12);
        assert_eq!(row.unit, "ms");
        // Both sides report zero retry time: the phase never ran, so it
        // must not appear at all.
        assert!(!diff.rows.iter().any(|r| r.metric == "retry_ms"));
    }

    #[test]
    fn harness_budget_tolerates_wide_wall_clock_swings() {
        // CI hosts differ: 80% slower is inside the 100% harness band
        // even though it would blow through every benchmark band.
        let mut a = report(vec![record("lat_syscall", &[("syscall", 4.0, "us")], 0.02)]);
        a.harness = Some(budget(1_000.0));
        let mut b = a.clone();
        b.harness = Some(budget(1_800.0));
        let diff = ReportDiff::between(&a, &b);
        assert!(!diff.has_regressions(), "{}", diff.render());
        let row = diff
            .rows
            .iter()
            .find(|r| r.bench == "(harness)" && r.metric == "suite_ms")
            .expect("suite_ms row");
        assert_eq!(row.class, DiffClass::Unchanged);
        assert_eq!(row.band_frac, 1.0);
    }

    #[test]
    fn sub_millisecond_phase_swings_are_immaterial() {
        // A quick run's warm-up is a few microseconds; tripling it is a
        // huge relative delta on a cost nobody can feel. The absolute
        // materiality floor keeps it quiet; a delta that is large both
        // relatively and absolutely still alarms.
        let mut a = report(vec![record("lat_syscall", &[("syscall", 4.0, "us")], 0.02)]);
        let mut base = budget(1_000.0);
        base.warmup_ms = 0.004;
        a.harness = Some(base);
        let mut b = a.clone();
        let mut cur = budget(1_000.0);
        cur.warmup_ms = 0.011; // +175%, but only 7 microseconds
        b.harness = Some(cur);
        let diff = ReportDiff::between(&a, &b);
        assert!(!diff.has_regressions(), "{}", diff.render());
        let row = diff
            .rows
            .iter()
            .find(|r| r.bench == "(harness)" && r.metric == "warmup_ms")
            .expect("warmup_ms row");
        assert_eq!(row.class, DiffClass::Unchanged);

        // The same relative swing at material scale is a real alarm.
        a.harness.as_mut().unwrap().warmup_ms = 100.0;
        b.harness.as_mut().unwrap().warmup_ms = 275.0;
        let diff = ReportDiff::between(&a, &b);
        assert!(
            diff.rows
                .iter()
                .any(|r| r.metric == "warmup_ms" && r.class == DiffClass::Regressed),
            "{}",
            diff.render()
        );
    }

    #[test]
    fn missing_harness_budget_never_alarms() {
        // Older baselines predate the self-budget; the differ must stay
        // silent about infrastructure they did not measure.
        let a = report(vec![record("lat_syscall", &[("syscall", 4.0, "us")], 0.02)]);
        let mut b = a.clone();
        b.harness = Some(budget(10_000.0));
        for (base, cur) in [(&a, &b), (&b, &a), (&a, &a)] {
            let diff = ReportDiff::between(base, cur);
            assert!(!diff.has_regressions(), "{}", diff.render());
            assert!(
                !diff.rows.iter().any(|r| r.bench == "(harness)"),
                "{}",
                diff.render()
            );
        }
    }

    #[test]
    fn zero_baseline_phase_is_unknown_not_an_alarm() {
        // retry_ms goes 0 -> 50: no relative judgement exists. The row
        // shows up as unknown, never as a regression.
        let mut a = report(vec![record("lat_syscall", &[("syscall", 4.0, "us")], 0.02)]);
        a.harness = Some(budget(1_000.0));
        let mut b = a.clone();
        let mut h = budget(1_000.0);
        h.retry_ms = 50.0;
        b.harness = Some(h);
        let diff = ReportDiff::between(&a, &b);
        assert!(!diff.has_regressions(), "{}", diff.render());
        let row = diff
            .rows
            .iter()
            .find(|r| r.metric == "retry_ms")
            .expect("retry row");
        assert_eq!(row.class, DiffClass::Unknown);
        assert!(row.note.contains("unusable"), "{}", row.note);
    }

    #[test]
    fn benchmarks_only_in_current_are_reported_unknown() {
        let a = report(vec![]);
        let b = report(vec![record("lat_new", &[("new", 1.0, "us")], 0.0)]);
        let diff = ReportDiff::between(&a, &b);
        assert_eq!(diff.rows.len(), 1);
        assert_eq!(diff.rows[0].bench, "lat_new");
        assert_eq!(diff.rows[0].class, DiffClass::Unknown);
    }
}
