//! Typed rows for every table in the paper.
//!
//! Each struct is one row of one numbered table; a [`SuiteRun`] bundles a
//! system description with whichever measurements a run produced. All types
//! serialize with serde so runs can be stored, shipped and merged — the
//! paper's "results may be donated by users" workflow.

use serde::{Deserialize, Serialize};

/// Table 1: a system description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemInfo {
    /// The short name used in every results table ("Linux/i686").
    pub name: String,
    /// Vendor and model ("Intel Alder").
    pub vendor_model: String,
    /// Multiprocessor or uniprocessor.
    pub multiprocessor: bool,
    /// Operating system and version.
    pub os: String,
    /// CPU name.
    pub cpu: String,
    /// Clock, MHz.
    pub mhz: u32,
    /// Year of introduction (approximate, per the paper).
    pub year: u32,
    /// SPECInt92, where known.
    pub specint92: Option<f64>,
    /// Approximate list price, thousands of USD.
    pub list_price_kusd: Option<f64>,
}

/// Table 2: memory bandwidth, MB/s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemBwRow {
    /// System name.
    pub system: String,
    /// Hand-unrolled 8-byte-word copy.
    pub bcopy_unrolled: f64,
    /// Library `bcopy`/`memcpy`.
    pub bcopy_libc: f64,
    /// Unrolled summing read.
    pub read: f64,
    /// Unrolled store loop.
    pub write: f64,
}

/// Table 3: pipe and local TCP bandwidth, MB/s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IpcBwRow {
    /// System name.
    pub system: String,
    /// Library bcopy for reference.
    pub bcopy_libc: f64,
    /// Pipe bandwidth.
    pub pipe: f64,
    /// Loopback TCP bandwidth; `None` where the paper printed "-1".
    pub tcp: Option<f64>,
}

/// Table 4: remote TCP bandwidth, MB/s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RemoteBwRow {
    /// System name.
    pub system: String,
    /// Medium ("hippi", "100baseT", "fddi", "10baseT").
    pub network: String,
    /// TCP bandwidth over the medium.
    pub tcp: f64,
}

/// Table 5: file vs memory bandwidth, MB/s.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FileBwRow {
    /// System name.
    pub system: String,
    /// Library bcopy.
    pub bcopy_libc: f64,
    /// Cached file re-read through `read(2)`.
    pub file_read: f64,
    /// Cached file re-read through `mmap(2)`.
    pub file_mmap: f64,
    /// Raw memory read.
    pub mem_read: f64,
}

/// Table 6: cache and memory latency, ns (sizes in bytes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CacheLatRow {
    /// System name.
    pub system: String,
    /// Processor cycle, ns.
    pub clock_ns: f64,
    /// Level-1 latency, ns.
    pub l1_ns: Option<f64>,
    /// Level-1 size, bytes.
    pub l1_size: Option<u64>,
    /// Level-2 latency, ns.
    pub l2_ns: Option<f64>,
    /// Level-2 size, bytes.
    pub l2_size: Option<u64>,
    /// Main-memory latency, ns.
    pub memory_ns: f64,
}

/// Table 7: simple system-call time, µs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SyscallRow {
    /// System name.
    pub system: String,
    /// One-word write to /dev/null.
    pub syscall_us: f64,
}

/// Table 8: signal costs, µs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SignalRow {
    /// System name.
    pub system: String,
    /// Handler installation via sigaction.
    pub sigaction_us: f64,
    /// Delivered self-signal.
    pub handler_us: f64,
}

/// Table 9: process creation, ms.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProcRow {
    /// System name.
    pub system: String,
    /// fork + exit + wait.
    pub fork_ms: f64,
    /// fork + exec + exit.
    pub fork_exec_ms: f64,
    /// fork + sh -c + exit.
    pub fork_sh_ms: f64,
}

/// Table 10: context switch times, µs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CtxRow {
    /// System name.
    pub system: String,
    /// 2 processes, 0 KB footprint.
    pub p2_0k: f64,
    /// 2 processes, 32 KB.
    pub p2_32k: f64,
    /// 8 processes, 0 KB.
    pub p8_0k: f64,
    /// 8 processes, 32 KB.
    pub p8_32k: f64,
}

/// Table 11: pipe round-trip latency, µs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipeLatRow {
    /// System name.
    pub system: String,
    /// Round trip.
    pub pipe_us: f64,
}

/// Table 12: TCP and RPC/TCP latency, µs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TcpRpcRow {
    /// System name.
    pub system: String,
    /// Raw TCP round trip.
    pub tcp_us: f64,
    /// RPC-over-TCP round trip.
    pub rpc_tcp_us: f64,
}

/// Table 13: UDP and RPC/UDP latency, µs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UdpRpcRow {
    /// System name.
    pub system: String,
    /// Raw UDP round trip.
    pub udp_us: f64,
    /// RPC-over-UDP round trip.
    pub rpc_udp_us: f64,
}

/// Table 14: remote round-trip latencies, µs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RemoteLatRow {
    /// System name.
    pub system: String,
    /// Medium.
    pub network: String,
    /// TCP round trip.
    pub tcp_us: f64,
    /// UDP round trip.
    pub udp_us: f64,
}

/// Table 15: TCP connection latency, µs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConnectRow {
    /// System name.
    pub system: String,
    /// Best-of-20 connect cost.
    pub connect_us: f64,
}

/// Table 16: file-system create/delete latency, µs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FsLatRow {
    /// System name.
    pub system: String,
    /// File system type ("EXT2FS", "UFS", ...).
    pub fs: String,
    /// Zero-length file creation.
    pub create_us: f64,
    /// Deletion.
    pub delete_us: f64,
}

/// Table 17: SCSI I/O overhead, µs (lower bound).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiskRow {
    /// System name.
    pub system: String,
    /// Per-command processor overhead.
    pub overhead_us: f64,
}

/// A full suite run: everything one machine produced.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SuiteRun {
    /// Schema version this run was written with (see
    /// [`crate::store::SCHEMA_VERSION`]); runs that predate the field
    /// read as version 1.
    pub schema_version: u32,
    /// The machine (Table 1 row).
    pub system: Option<SystemInfo>,
    /// Table 2 measurements.
    pub mem_bw: Option<MemBwRow>,
    /// Table 3.
    pub ipc_bw: Option<IpcBwRow>,
    /// Table 4 (one row per simulated medium).
    pub remote_bw: Vec<RemoteBwRow>,
    /// Table 5.
    pub file_bw: Option<FileBwRow>,
    /// Table 6.
    pub cache_lat: Option<CacheLatRow>,
    /// Table 7.
    pub syscall: Option<SyscallRow>,
    /// Table 8.
    pub signal: Option<SignalRow>,
    /// Table 9.
    pub proc: Option<ProcRow>,
    /// Table 10.
    pub ctx: Option<CtxRow>,
    /// Table 11.
    pub pipe_lat: Option<PipeLatRow>,
    /// Table 12.
    pub tcp_rpc: Option<TcpRpcRow>,
    /// Table 13.
    pub udp_rpc: Option<UdpRpcRow>,
    /// Table 14 (one row per simulated medium).
    pub remote_lat: Vec<RemoteLatRow>,
    /// Table 15.
    pub connect: Option<ConnectRow>,
    /// Table 16.
    pub fs_lat: Option<FsLatRow>,
    /// Table 17.
    pub disk: Option<DiskRow>,
}

impl Default for SuiteRun {
    fn default() -> SuiteRun {
        SuiteRun {
            schema_version: crate::store::SCHEMA_VERSION,
            system: None,
            mem_bw: None,
            ipc_bw: None,
            remote_bw: Vec::new(),
            file_bw: None,
            cache_lat: None,
            syscall: None,
            signal: None,
            proc: None,
            ctx: None,
            pipe_lat: None,
            tcp_rpc: None,
            udp_rpc: None,
            remote_lat: Vec::new(),
            connect: None,
            fs_lat: None,
            disk: None,
        }
    }
}

// Hand-written so `schema_version` stays optional on the wire: runs
// archived before the versioning policy read as version 1 (the same
// tolerance `rusage.contended` and `provenance.clamped_samples` get).
impl serde::Deserialize for SuiteRun {
    fn from_value(value: &serde::Value) -> Result<Self, serde::DeError> {
        let obj = value.expect_object("SuiteRun")?;
        fn field<T: serde::Deserialize>(
            obj: &serde::Value,
            name: &str,
        ) -> Result<T, serde::DeError> {
            T::from_value(obj.field(name)).map_err(|e| e.in_field(name))
        }
        Ok(SuiteRun {
            schema_version: field::<Option<u32>>(obj, "schema_version")?.unwrap_or(1),
            system: field(obj, "system")?,
            mem_bw: field(obj, "mem_bw")?,
            ipc_bw: field(obj, "ipc_bw")?,
            remote_bw: field(obj, "remote_bw")?,
            file_bw: field(obj, "file_bw")?,
            cache_lat: field(obj, "cache_lat")?,
            syscall: field(obj, "syscall")?,
            signal: field(obj, "signal")?,
            proc: field(obj, "proc")?,
            ctx: field(obj, "ctx")?,
            pipe_lat: field(obj, "pipe_lat")?,
            tcp_rpc: field(obj, "tcp_rpc")?,
            udp_rpc: field(obj, "udp_rpc")?,
            remote_lat: field(obj, "remote_lat")?,
            connect: field(obj, "connect")?,
            fs_lat: field(obj, "fs_lat")?,
            disk: field(obj, "disk")?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_run_serializes_round_trip() {
        let run = SuiteRun {
            system: Some(SystemInfo {
                name: "Test/host".into(),
                vendor_model: "QEMU".into(),
                multiprocessor: true,
                os: "Linux 6.x".into(),
                cpu: "x86_64".into(),
                mhz: 3000,
                year: 2026,
                specint92: None,
                list_price_kusd: None,
            }),
            syscall: Some(SyscallRow {
                system: "Test/host".into(),
                syscall_us: 0.2,
            }),
            ..Default::default()
        };
        let json = serde_json::to_string(&run).unwrap();
        let back: SuiteRun = serde_json::from_str(&json).unwrap();
        assert_eq!(run, back);
    }

    #[test]
    fn default_run_is_empty() {
        let run = SuiteRun::default();
        assert!(run.system.is_none());
        assert!(run.remote_bw.is_empty());
        assert!(run.remote_lat.is_empty());
    }

    #[test]
    fn optional_tcp_handles_the_papers_minus_one() {
        let row = IpcBwRow {
            system: "Unixware/i686".into(),
            bcopy_libc: 58.0,
            pipe: 68.0,
            tcp: None,
        };
        let json = serde_json::to_string(&row).unwrap();
        assert!(json.contains("null"));
        let back: IpcBwRow = serde_json::from_str(&json).unwrap();
        assert_eq!(back.tcp, None);
    }
}
