//! One store, not three: the unified, versioned results store.
//!
//! Before this module existed the crate had three persistence surfaces
//! that could disagree: `db::ResultsDb` (last-write-wins by system name),
//! `baseline::BaselineStore` (a directory of reference runs keyed by host
//! fingerprint) and bare `RunReport::to_json` artifacts. [`ReportStore`]
//! is the one interface all of them now sit behind: an append-only time
//! series per host fingerprint — the paper's "database grew by donation"
//! model, but ordered, so history is never silently replaced.
//!
//! Two implementations ship:
//!
//! * [`MemoryStore`] — for the results daemon's hot index and for tests.
//! * [`DirStore`] — a directory of plain-JSON [`Baseline`] envelopes, the
//!   CLI's store (`.lmbench/baselines/` by convention; re-exported as
//!   `BaselineStore` for its original callers).
//!
//! # Schema versioning policy
//!
//! [`SCHEMA_VERSION`] is the single definition of the current on-disk and
//! on-wire schema version, stamped into every serialized [`Baseline`],
//! [`RunReport`](crate::RunReport) and [`SuiteRun`](crate::SuiteRun).
//! Deserialization is tolerant in the established style of
//! `rusage.contended` and `provenance.clamped_samples`: a missing
//! `schema_version` reads as version 1 (every file written before the
//! field existed), and unknown *fields* are ignored, so version bumps are
//! additive. Loaded entries keep the version they were written with.

use crate::baseline::Baseline;
use crate::runreport::RunReport;
use lmb_trace::EventKind;
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};

/// The schema version stamped into everything this crate serializes.
///
/// * **v1** — implicit: files written before the field existed.
/// * **v2** — `schema_version` made explicit; [`Baseline`] may carry the
///   optional `run` table payload next to its `report`.
pub const SCHEMA_VERSION: u32 = 2;

/// An append-only time series of results, sharded by host fingerprint.
///
/// Entries within one fingerprint are ordered by `(unix_seconds, arrival)`
/// — capture time first, insertion order as the tiebreak — so two stores
/// fed the same entries in the same per-shard order answer every query
/// identically, which is what the results daemon's determinism guarantee
/// rests on.
pub trait ReportStore {
    /// Appends one entry to its fingerprint's series and returns the
    /// series length after the append (the entry's 1-based shard
    /// sequence number).
    fn append(&mut self, entry: Baseline) -> io::Result<u64>;

    /// The newest entry for `fingerprint`, or `None` when the store holds
    /// nothing comparable. Unreadable entries are skipped (with a
    /// warning, see [`DirStore`]), never fatal: a corrupt baseline must
    /// read as "no baseline", not as "no regression".
    fn latest(&self, fingerprint: &str) -> io::Result<Option<Baseline>>;

    /// All entries for `fingerprint`, oldest first.
    fn history(&self, fingerprint: &str) -> io::Result<Vec<Baseline>>;

    /// Every entry in the store, fingerprint-ordered, then oldest first
    /// within each fingerprint.
    fn iter(&self) -> io::Result<Vec<Baseline>>;
}

/// Orders a shard's entries by capture time, keeping arrival order for
/// entries stamped within the same second.
fn sort_shard(entries: &mut [Baseline]) {
    entries.sort_by_key(|b| b.unix_seconds);
}

/// An in-memory [`ReportStore`]: the daemon's hot index, and the natural
/// store for tests.
#[derive(Debug, Clone, Default)]
pub struct MemoryStore {
    shards: BTreeMap<String, Vec<Baseline>>,
}

impl MemoryStore {
    /// An empty store.
    #[must_use]
    pub fn new() -> MemoryStore {
        MemoryStore::default()
    }

    /// Number of entries across all fingerprints.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.values().map(Vec::len).sum()
    }

    /// True when no entries are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// The fingerprints with at least one entry, ordered.
    #[must_use]
    pub fn fingerprints(&self) -> Vec<String> {
        self.shards.keys().cloned().collect()
    }
}

impl ReportStore for MemoryStore {
    fn append(&mut self, entry: Baseline) -> io::Result<u64> {
        let shard = self.shards.entry(entry.fingerprint.clone()).or_default();
        shard.push(entry);
        sort_shard(shard); // stable: same-second entries keep arrival order
        Ok(shard.len() as u64)
    }

    fn latest(&self, fingerprint: &str) -> io::Result<Option<Baseline>> {
        Ok(self
            .shards
            .get(fingerprint)
            .and_then(|shard| shard.last().cloned()))
    }

    fn history(&self, fingerprint: &str) -> io::Result<Vec<Baseline>> {
        Ok(self.shards.get(fingerprint).cloned().unwrap_or_default())
    }

    fn iter(&self) -> io::Result<Vec<Baseline>> {
        Ok(self.shards.values().flatten().cloned().collect())
    }
}

/// Reports a results file the store had to skip: a stderr note for the
/// operator at the terminal, and a [`EventKind::StoreWarning`] trace event
/// for the fleet audit log. Silent skips hide data loss.
fn warn_skipped(path: &Path, detail: &str) {
    eprintln!(
        "lmbench: warning: skipping unreadable results file {}: {detail}",
        path.display()
    );
    lmb_trace::emit(|| EventKind::StoreWarning {
        path: path.display().to_string(),
        detail: detail.to_string(),
    });
}

/// A directory of [`Baseline`] files — the CLI's [`ReportStore`].
///
/// Files are plain pretty-printed JSON named
/// `{fingerprint}-{unix_seconds}.json` (with a numeric suffix when two
/// saves land in the same second): inspectable with any tool, diffable in
/// review, uploadable as CI artifacts. The directory is created lazily on
/// first save.
#[derive(Debug, Clone)]
pub struct DirStore {
    dir: PathBuf,
}

impl DirStore {
    /// The conventional location, relative to the working directory.
    #[must_use]
    pub fn default_dir() -> PathBuf {
        PathBuf::from(".lmbench").join("baselines")
    }

    /// A store rooted at `dir` (created lazily on first save).
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>) -> DirStore {
        DirStore { dir: dir.into() }
    }

    /// The store's directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Writes a baseline as `{fingerprint}-{unix_seconds}.json` (with a
    /// numeric suffix if two saves land in the same second) and returns
    /// the path.
    pub fn save(&self, baseline: &Baseline) -> io::Result<PathBuf> {
        std::fs::create_dir_all(&self.dir)?;
        let stem = format!("{}-{}", baseline.fingerprint, baseline.unix_seconds);
        let mut path = self.dir.join(format!("{stem}.json"));
        let mut n = 1u32;
        while path.exists() {
            path = self.dir.join(format!("{stem}-{n}.json"));
            n += 1;
        }
        std::fs::write(&path, baseline.to_json())?;
        Ok(path)
    }

    /// Every readable entry in the directory as `(file name, entry)`,
    /// unordered. Files that cannot be read or parsed are reported via
    /// [`warn_skipped`] and skipped; non-`.json` files are ignored
    /// silently (they were never ours).
    fn scan(&self) -> io::Result<Vec<(String, Baseline)>> {
        let entries = match std::fs::read_dir(&self.dir) {
            Ok(entries) => entries,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        let mut found = Vec::new();
        for entry in entries {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some("json") {
                continue;
            }
            let text = match std::fs::read_to_string(&path) {
                Ok(text) => text,
                Err(e) => {
                    warn_skipped(&path, &e.to_string());
                    continue;
                }
            };
            let baseline = match Baseline::from_json(&text) {
                Ok(baseline) => baseline,
                Err(e) => {
                    warn_skipped(&path, &e.to_string());
                    continue;
                }
            };
            let name = path
                .file_name()
                .and_then(|n| n.to_str())
                .unwrap_or_default()
                .to_string();
            found.push((name, baseline));
        }
        Ok(found)
    }

    /// A shard's entries ordered by `(unix_seconds, file name)` — capture
    /// time first, the save-suffix ordering as the tiebreak.
    fn shard(&self, fingerprint: &str) -> io::Result<Vec<Baseline>> {
        let mut named: Vec<(String, Baseline)> = self
            .scan()?
            .into_iter()
            .filter(|(_, b)| b.fingerprint == fingerprint)
            .collect();
        named.sort_by(|(an, a), (bn, b)| (a.unix_seconds, an).cmp(&(b.unix_seconds, bn)));
        Ok(named.into_iter().map(|(_, b)| b).collect())
    }

    /// The most recent readable baseline for `fingerprint`, or `None`
    /// when the store has nothing comparable (see
    /// [`ReportStore::latest`]).
    pub fn latest(&self, fingerprint: &str) -> io::Result<Option<Baseline>> {
        Ok(self.shard(fingerprint)?.pop())
    }
}

impl ReportStore for DirStore {
    fn append(&mut self, entry: Baseline) -> io::Result<u64> {
        self.save(&entry)?;
        Ok(self.shard(&entry.fingerprint)?.len() as u64)
    }

    fn latest(&self, fingerprint: &str) -> io::Result<Option<Baseline>> {
        DirStore::latest(self, fingerprint)
    }

    fn history(&self, fingerprint: &str) -> io::Result<Vec<Baseline>> {
        self.shard(fingerprint)
    }

    fn iter(&self) -> io::Result<Vec<Baseline>> {
        let mut named = self.scan()?;
        named.sort_by(|(an, a), (bn, b)| {
            (&a.fingerprint, a.unix_seconds, an).cmp(&(&b.fingerprint, b.unix_seconds, bn))
        });
        Ok(named.into_iter().map(|(_, b)| b).collect())
    }
}

/// Reads one results file, whatever its era: a stored [`Baseline`]
/// envelope, or a bare [`RunReport`] artifact (`--report-json` output),
/// normalized to an envelope with empty identity fields. This is the one
/// entry point for "load whatever the user pointed us at" — the CLI's
/// `diff` and the daemon's `report push` both go through it.
pub fn load_entry(path: &Path) -> io::Result<Baseline> {
    let text = std::fs::read_to_string(path)?;
    if let Ok(baseline) = Baseline::from_json(&text) {
        return Ok(baseline);
    }
    match RunReport::from_json(&text) {
        Ok(report) => Ok(Baseline {
            schema_version: SCHEMA_VERSION,
            fingerprint: String::new(),
            host: String::new(),
            unix_seconds: 0,
            report,
            run: None,
        }),
        Err(e) => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "{}: neither a baseline nor a run report: {e}",
                path.display()
            ),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baseline::fingerprint;
    use crate::runreport::{BenchRecord, BenchStatus};
    use lmb_trace::MemorySink;

    fn report(bench: &str) -> RunReport {
        RunReport {
            records: vec![BenchRecord {
                name: bench.into(),
                produces: "Table 7".into(),
                status: BenchStatus::Ok,
                attempts: 1,
                wall_ms: 1.0,
                exclusive: false,
                provenance: None,
                rusage: None,
                counters: None,
                metrics: Vec::new(),
                span: None,
            }],
            ..Default::default()
        }
    }

    fn entry(fp: &str, host: &str, seconds: u64, bench: &str) -> Baseline {
        let mut b = Baseline::now(fp, host, report(bench));
        b.unix_seconds = seconds;
        b
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("lmbench-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn bench_names(shard: &[Baseline]) -> Vec<&str> {
        shard
            .iter()
            .map(|b| b.report.records[0].name.as_str())
            .collect()
    }

    #[test]
    fn memory_store_appends_are_an_ordered_series() {
        let mut store = MemoryStore::new();
        assert!(store.is_empty());
        let fp = fingerprint(&["hostA"]);
        assert_eq!(store.append(entry(&fp, "hostA", 200, "second")).unwrap(), 1);
        assert_eq!(store.append(entry(&fp, "hostA", 100, "first")).unwrap(), 2);
        assert_eq!(store.append(entry(&fp, "hostA", 300, "third")).unwrap(), 3);
        assert_eq!(store.len(), 3);
        let history = store.history(&fp).unwrap();
        assert_eq!(bench_names(&history), ["first", "second", "third"]);
        let latest = ReportStore::latest(&store, &fp).unwrap().unwrap();
        assert_eq!(latest.report.records[0].name, "third");
        assert_eq!(
            store.history("absent-0000000000000000").unwrap(),
            Vec::new()
        );
    }

    #[test]
    fn memory_store_same_second_keeps_arrival_order() {
        let mut store = MemoryStore::new();
        let fp = fingerprint(&["hostA"]);
        store.append(entry(&fp, "hostA", 42, "first")).unwrap();
        store.append(entry(&fp, "hostA", 42, "second")).unwrap();
        let history = store.history(&fp).unwrap();
        assert_eq!(bench_names(&history), ["first", "second"]);
    }

    #[test]
    fn memory_store_iter_is_fingerprint_then_time_ordered() {
        let mut store = MemoryStore::new();
        let fa = fingerprint(&["alpha"]);
        let fz = fingerprint(&["zeta"]);
        store.append(entry(&fz, "zeta", 10, "z1")).unwrap();
        store.append(entry(&fa, "alpha", 20, "a2")).unwrap();
        store.append(entry(&fa, "alpha", 10, "a1")).unwrap();
        assert_eq!(store.fingerprints(), [fa.clone(), fz.clone()]);
        let all = store.iter().unwrap();
        assert_eq!(bench_names(&all), ["a1", "a2", "z1"]);
    }

    #[test]
    fn dir_store_matches_memory_store_semantics() {
        let dir = temp_dir("parity");
        let mut disk = DirStore::new(&dir);
        let mut mem = MemoryStore::new();
        let fp = fingerprint(&["hostA"]);
        for (seconds, bench) in [(200u64, "second"), (100, "first"), (300, "third")] {
            let e = entry(&fp, "hostA", seconds, bench);
            let seq_disk = disk.append(e.clone()).unwrap();
            let seq_mem = mem.append(e).unwrap();
            assert_eq!(seq_disk, seq_mem);
        }
        assert_eq!(disk.history(&fp).unwrap(), mem.history(&fp).unwrap());
        assert_eq!(disk.iter().unwrap(), mem.iter().unwrap());
        assert_eq!(
            ReportStore::latest(&disk, &fp).unwrap(),
            ReportStore::latest(&mem, &fp).unwrap()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_file_warns_and_is_skipped() {
        let dir = temp_dir("corrupt");
        let mut store = DirStore::new(&dir);
        let fp = fingerprint(&["hostA"]);
        store.append(entry(&fp, "hostA", 100, "good")).unwrap();
        std::fs::write(dir.join(format!("{fp}-999.json")), "{not json").unwrap();
        std::fs::write(dir.join("notes.txt"), "not ours, no warning").unwrap();

        let sink = MemorySink::shared();
        let handle = lmb_trace::install(Box::new(sink.clone()));
        let history = store.history(&fp).unwrap();
        lmb_trace::uninstall(handle);

        assert_eq!(bench_names(&history), ["good"], "corrupt file skipped");
        let warnings: Vec<_> = sink
            .events()
            .into_iter()
            .filter_map(|e| match e.kind {
                EventKind::StoreWarning { path, .. } => Some(path),
                _ => None,
            })
            .collect();
        assert_eq!(warnings.len(), 1, "exactly one warning for the bad file");
        assert!(
            warnings[0].contains(&format!("{fp}-999.json")),
            "{warnings:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn load_entry_accepts_both_envelope_and_bare_report() {
        let dir = temp_dir("load");
        std::fs::create_dir_all(&dir).unwrap();
        let fp = fingerprint(&["hostA"]);
        let envelope = entry(&fp, "hostA", 7, "lat_syscall");
        let env_path = dir.join("envelope.json");
        std::fs::write(&env_path, envelope.to_json()).unwrap();
        let loaded = load_entry(&env_path).unwrap();
        assert_eq!(loaded, envelope);

        let bare_path = dir.join("bare.json");
        std::fs::write(&bare_path, report("bw_mem").to_json()).unwrap();
        let loaded = load_entry(&bare_path).unwrap();
        assert_eq!(loaded.fingerprint, "");
        assert_eq!(loaded.schema_version, SCHEMA_VERSION);
        assert_eq!(loaded.report.records[0].name, "bw_mem");

        let bad_path = dir.join("bad.json");
        std::fs::write(&bad_path, "{not json").unwrap();
        let err = load_entry(&bad_path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
