//! TCP connection-establishment latency (paper §6.7, Table 15).
//!
//! "Connection cost is measured by having a server, registered using the
//! port mapper, waiting for connections. The client figures out where the
//! server is registered and then repeatedly times a `connect` system call to
//! the server. The socket is closed after each connect. Twenty connects are
//! completed and the fastest of them is used as the result."

use lmb_timing::clock::Stopwatch;
use lmb_timing::{Latency, Samples, SummaryPolicy, TimeUnit};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A loopback accept-and-drop server for connect timing.
pub struct ConnectServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl ConnectServer {
    /// Starts the server; it accepts and immediately closes connections
    /// until dropped.
    pub fn start() -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let thread = std::thread::spawn(move || {
            while !stop2.load(Ordering::Relaxed) {
                // Accepted connection drops immediately — connect cost only.
                let _ = listener.accept();
            }
        });
        Ok(Self {
            addr,
            stop,
            thread: Some(thread),
        })
    }

    /// Where clients should connect.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

impl Drop for ConnectServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the final accept.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

/// Times `attempts` connect/close cycles and reports per the paper: the
/// *fastest* (the three-way handshake's two local packets with no
/// scheduling noise).
///
/// # Panics
///
/// Panics if `attempts` is zero or the server cannot be started.
pub fn measure_tcp_connect(attempts: u32) -> Latency {
    assert!(attempts > 0, "need at least one attempt");
    let server = ConnectServer::start().expect("connect server");
    let addr = server.addr();
    // One warm connect (ARP-equivalent loopback setup, allocator warm-up).
    let _ = TcpStream::connect(addr).expect("warm connect");

    let mut samples = Samples::new();
    for _ in 0..attempts {
        let sw = Stopwatch::start();
        let stream = TcpStream::connect(addr).expect("connect");
        let ns = sw.elapsed_ns();
        drop(stream);
        samples.push(ns);
    }
    Latency::from_ns(
        samples.summarize(SummaryPolicy::Minimum).unwrap_or(0.0),
        TimeUnit::Micros,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_latency_positive_and_bounded() {
        let lat = measure_tcp_connect(20);
        let us = lat.as_micros();
        assert!(us > 0.0);
        // Table 15 spans 238-3047us in 1995; loopback today is tens of us.
        assert!(us < 100_000.0, "connect {us}us");
    }

    #[test]
    fn server_survives_many_connects() {
        let server = ConnectServer::start().unwrap();
        for _ in 0..50 {
            let _ = TcpStream::connect(server.addr()).unwrap();
        }
    }

    #[test]
    fn connect_costs_more_than_nothing_less_than_a_second() {
        let lat = measure_tcp_connect(5);
        assert!(lat.as_ns() > 100.0);
        assert!(lat.as_ns() < 1e9);
    }

    #[test]
    #[should_panic(expected = "at least one attempt")]
    fn zero_attempts_rejected() {
        measure_tcp_connect(0);
    }
}
