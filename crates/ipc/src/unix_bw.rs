//! AF_UNIX stream bandwidth — companion to [`crate::unix_lat`].
//!
//! Sits between pipes (Table 3's fastest local IPC) and loopback TCP
//! (protocol work included): the socket layer without IP. Later lmbench
//! releases added exactly this measurement (`bw_unix`).

use lmb_timing::clock::Stopwatch;
use lmb_timing::{Bandwidth, Samples, SummaryPolicy};
use std::io::{Read, Write};
use std::os::unix::net::UnixStream;

/// One writer-thread/reader transfer of `total` bytes in `chunk`-sized
/// writes over a socketpair; returns reader-observed bandwidth.
///
/// # Panics
///
/// Panics if `chunk` is zero or `total < chunk`, or on socket failures.
pub fn run_once(total: usize, chunk: usize) -> Bandwidth {
    assert!(chunk > 0, "chunk must be nonzero");
    assert!(total >= chunk, "total below one chunk");
    let chunks = total / chunk;
    let payload = chunks * chunk;

    let (mut reader, mut writer) = UnixStream::pair().expect("socketpair");
    let sender = std::thread::spawn(move || {
        let out = vec![0xC3u8; chunk];
        for _ in 0..chunks {
            writer.write_all(&out).expect("unix write");
        }
    });

    let mut inbuf = vec![0u8; chunk];
    let sw = Stopwatch::start();
    let mut received = 0usize;
    while received < payload {
        let n = reader.read(&mut inbuf).expect("unix read");
        assert!(n > 0, "writer hung up early at {received}/{payload}");
        received += n;
    }
    let elapsed = sw.elapsed_ns();
    sender.join().expect("sender thread");
    Bandwidth::from_bytes_ns(payload as u64, elapsed)
}

/// Repeats [`run_once`] (after one warm run) and summarizes by `policy`.
pub fn measure_unix_bw(
    total: usize,
    chunk: usize,
    repetitions: u32,
    policy: SummaryPolicy,
) -> Bandwidth {
    assert!(repetitions > 0, "need at least one repetition");
    let _warm = run_once(total, chunk);
    let samples = Samples::from_values((0..repetitions).map(|_| run_once(total, chunk).mb_per_s));
    Bandwidth {
        mb_per_s: samples.summarize(policy).unwrap_or(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unix_stream_moves_data() {
        let bw = run_once(4 << 20, 64 << 10);
        assert!(bw.mb_per_s > 0.0);
        assert!(bw.mb_per_s.is_finite());
    }

    #[test]
    fn summary_policies_apply() {
        let bw = measure_unix_bw(2 << 20, 64 << 10, 2, SummaryPolicy::Minimum);
        assert!(bw.mb_per_s > 0.0);
    }

    #[test]
    #[should_panic(expected = "total below one chunk")]
    fn undersized_total_rejected() {
        run_once(100, 64 << 10);
    }
}
