//! Pipe latency (paper §6.7, Table 11).
//!
//! "Pipe latency is measured by creating a pair of pipes, forking a child
//! process, and passing a word back and forth. This benchmark is identical
//! to the two-process, zero-sized context switch benchmark, except that it
//! includes both the context switching time and the pipe overhead in the
//! results." The reported number is the full round trip A→B→A.

use crate::WORD;
use lmb_sys::pipe::Pipe;
use lmb_sys::process::{exit_immediately, fork, waitpid, ForkResult, Pid};
use lmb_sys::Fd;
use lmb_timing::{Harness, Latency, TimeUnit};

/// The shutdown word. A forked child inherits copies of every pipe fd in
/// the process — including other tests' pipes and its *own* inbound pipe's
/// write end — so EOF can never be relied on to terminate ring members;
/// shutdown must be an explicit in-band message.
const STOP: [u8; 4] = [0xFF; 4];

/// A forked echo child connected by two anonymous pipes: the process-pair
/// fixture behind [`measure_pipe_latency`], reusable as a load generator.
///
/// The child's loop is fork-safe by construction: it only calls
/// `read`/`write`/`_exit` on pre-fork state — no allocation, no panics, no
/// locks — because another thread may hold the allocator lock at fork
/// time and the child would inherit it held forever.
pub struct PipeEchoPair {
    to_child_write: Fd,
    to_parent_read: Fd,
    child: Option<Pid>,
}

impl PipeEchoPair {
    /// Forks the echo child and returns the parent's two pipe ends.
    pub fn start() -> Result<Self, String> {
        let to_child = Pipe::new().map_err(|e| format!("pipe: {e:?}"))?;
        let to_parent = Pipe::new().map_err(|e| format!("pipe: {e:?}"))?;
        match fork().map_err(|e| format!("fork: {e:?}"))? {
            ForkResult::Child => {
                // Echo child: read a word, write it back; STOP-or-error
                // exits. Nothing here may allocate or panic.
                let mut word = [0u8; WORD.len()];
                loop {
                    match to_child.read.read_full(&mut word) {
                        Ok(n) if n == word.len() => {}
                        _ => exit_immediately(2),
                    }
                    if to_parent.write.write_all(&word).is_err() {
                        exit_immediately(3);
                    }
                    if word == STOP {
                        exit_immediately(0);
                    }
                }
            }
            ForkResult::Parent(pid) => {
                let (_, to_child_write) = to_child.split();
                let (to_parent_read, _) = to_parent.split();
                Ok(Self {
                    to_child_write,
                    to_parent_read,
                    child: Some(pid),
                })
            }
        }
    }

    /// One full A→B→A word exchange.
    ///
    /// # Panics
    ///
    /// Panics if the child died mid-exchange.
    pub fn round_trip(&mut self) {
        let mut word = WORD;
        self.to_child_write.write_all(&word).expect("parent write");
        self.to_parent_read
            .read_full(&mut word)
            .expect("parent read");
    }

    /// Stops the child and reaps it, asserting it exited cleanly.
    fn shutdown(&mut self) -> Result<(), String> {
        let Some(pid) = self.child.take() else {
            return Ok(());
        };
        self.to_child_write
            .write_all(&STOP)
            .map_err(|e| format!("send STOP: {e:?}"))?;
        let mut echo = [0u8; 4];
        self.to_parent_read
            .read_full(&mut echo)
            .map_err(|e| format!("STOP echo: {e:?}"))?;
        if echo != STOP {
            return Err("echo child corrupted STOP word".into());
        }
        match waitpid(pid) {
            Ok(status) if status.success() => Ok(()),
            Ok(status) => Err(format!("echo child failed: {status:?}")),
            Err(e) => Err(format!("waitpid: {e:?}")),
        }
    }
}

impl Drop for PipeEchoPair {
    fn drop(&mut self) {
        // Best-effort on the drop path; measure_pipe_latency shuts down
        // explicitly so child failures surface as panics there.
        let _ = self.shutdown();
    }
}

/// Measures pipe round-trip latency with `h`'s repetition/summary policy.
///
/// Each repetition times `round_trips` full A→B→A exchanges.
///
/// # Panics
///
/// Panics if `round_trips` is zero or on process failures.
pub fn measure_pipe_latency(h: &Harness, round_trips: usize) -> Latency {
    assert!(round_trips > 0, "need at least one round trip");
    let mut pair = PipeEchoPair::start().expect("echo pair");
    let m = h.measure_block(round_trips as u64, || {
        for _ in 0..round_trips {
            pair.round_trip();
        }
    });
    pair.shutdown().expect("clean shutdown");
    m.latency(TimeUnit::Micros)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmb_timing::Options;

    #[test]
    fn round_trip_is_positive_and_bounded() {
        let h = Harness::new(Options::quick().with_repetitions(2));
        let lat = measure_pipe_latency(&h, 50);
        let us = lat.as_micros();
        assert!(us > 0.0);
        // Table 11 spans 26-278us on 1995 machines; a modern box does a few
        // us. 10ms means a broken divide.
        assert!(us < 10_000.0, "pipe RTT {us}us");
    }

    #[test]
    fn word_survives_the_loop_intact() {
        // Run the exchange manually once to check data integrity.
        let to_child = Pipe::new().unwrap();
        let to_parent = Pipe::new().unwrap();
        match fork().unwrap() {
            ForkResult::Child => {
                let mut w = [0u8; 4];
                let _ = to_child.read.read_full(&mut w);
                let _ = to_parent.write.write_all(&w);
                exit_immediately(0);
            }
            ForkResult::Parent(pid) => {
                to_child.write.write_all(&WORD).unwrap();
                let mut back = [0u8; 4];
                to_parent.read.read_full(&mut back).unwrap();
                assert_eq!(back, WORD);
                assert!(waitpid(pid).unwrap().success());
            }
        }
    }

    #[test]
    fn echo_pair_is_reusable_and_reaps_its_child() {
        let mut pair = PipeEchoPair::start().unwrap();
        for _ in 0..25 {
            pair.round_trip();
        }
        pair.shutdown().expect("clean shutdown");
        // Second shutdown is a no-op, and drop after shutdown is safe.
        pair.shutdown().expect("idempotent");
    }

    #[test]
    #[should_panic(expected = "at least one round trip")]
    fn zero_round_trips_rejected() {
        let h = Harness::new(Options::quick());
        measure_pipe_latency(&h, 0);
    }
}
