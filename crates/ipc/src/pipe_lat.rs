//! Pipe latency (paper §6.7, Table 11).
//!
//! "Pipe latency is measured by creating a pair of pipes, forking a child
//! process, and passing a word back and forth. This benchmark is identical
//! to the two-process, zero-sized context switch benchmark, except that it
//! includes both the context switching time and the pipe overhead in the
//! results." The reported number is the full round trip A→B→A.

use crate::WORD;
use lmb_sys::pipe::Pipe;
use lmb_sys::process::{exit_immediately, fork, waitpid, ForkResult};
use lmb_timing::{Harness, Latency, TimeUnit};

/// The shutdown word. A forked child inherits copies of every pipe fd in
/// the process — including other tests' pipes and its *own* inbound pipe's
/// write end — so EOF can never be relied on to terminate ring members;
/// shutdown must be an explicit in-band message.
const STOP: [u8; 4] = [0xFF; 4];

/// Measures pipe round-trip latency with `h`'s repetition/summary policy.
///
/// Each repetition times `round_trips` full A→B→A exchanges.
///
/// # Panics
///
/// Panics if `round_trips` is zero or on process failures.
pub fn measure_pipe_latency(h: &Harness, round_trips: usize) -> Latency {
    assert!(round_trips > 0, "need at least one round trip");
    let to_child = Pipe::new().expect("pipe");
    let to_parent = Pipe::new().expect("pipe");

    match fork().expect("fork echo child") {
        ForkResult::Child => {
            // Echo child: read a word, write it back; STOP-or-error exits.
            let mut word = [0u8; WORD.len()];
            loop {
                match to_child.read.read_full(&mut word) {
                    Ok(n) if n == word.len() => {}
                    _ => exit_immediately(2),
                }
                if to_parent.write.write_all(&word).is_err() {
                    exit_immediately(3);
                }
                if word == STOP {
                    exit_immediately(0);
                }
            }
        }
        ForkResult::Parent(pid) => {
            let mut word = WORD;
            let m = h.measure_block(round_trips as u64, || {
                for _ in 0..round_trips {
                    to_child.write.write_all(&word).expect("parent write");
                    to_parent.read.read_full(&mut word).expect("parent read");
                }
            });
            to_child.write.write_all(&STOP).expect("send STOP");
            let mut echo = [0u8; 4];
            to_parent.read.read_full(&mut echo).expect("STOP echo");
            assert_eq!(echo, STOP);
            assert!(waitpid(pid).expect("waitpid").success());
            m.latency(TimeUnit::Micros)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmb_timing::Options;

    #[test]
    fn round_trip_is_positive_and_bounded() {
        let h = Harness::new(Options::quick().with_repetitions(2));
        let lat = measure_pipe_latency(&h, 50);
        let us = lat.as_micros();
        assert!(us > 0.0);
        // Table 11 spans 26-278us on 1995 machines; a modern box does a few
        // us. 10ms means a broken divide.
        assert!(us < 10_000.0, "pipe RTT {us}us");
    }

    #[test]
    fn word_survives_the_loop_intact() {
        // Run the exchange manually once to check data integrity.
        let to_child = Pipe::new().unwrap();
        let to_parent = Pipe::new().unwrap();
        match fork().unwrap() {
            ForkResult::Child => {
                let mut w = [0u8; 4];
                let _ = to_child.read.read_full(&mut w);
                let _ = to_parent.write.write_all(&w);
                exit_immediately(0);
            }
            ForkResult::Parent(pid) => {
                to_child.write.write_all(&WORD).unwrap();
                let mut back = [0u8; 4];
                to_parent.read.read_full(&mut back).unwrap();
                assert_eq!(back, WORD);
                assert!(waitpid(pid).unwrap().success());
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one round trip")]
    fn zero_round_trips_rejected() {
        let h = Harness::new(Options::quick());
        measure_pipe_latency(&h, 0);
    }
}
