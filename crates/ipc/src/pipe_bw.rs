//! Pipe bandwidth (paper §5.2, Table 3).
//!
//! "Pipe bandwidth is measured by creating two processes, a writer and a
//! reader, which transfer 50M of data in 64K transfers. ... The reader
//! prints the timing results, which guarantees that all data has been moved
//! before the timing is finished."

use lmb_sys::pipe::Pipe;
use lmb_sys::process::{exit_immediately, fork, waitpid, ForkResult};
use lmb_timing::clock::Stopwatch;
use lmb_timing::{Bandwidth, Samples, SummaryPolicy};

/// One writer-process/reader-process transfer of `total` bytes in `chunk`
/// sized writes; returns the reader-observed bandwidth.
///
/// # Panics
///
/// Panics if `chunk` is zero or `total < chunk`, or on process failures.
pub fn run_once(total: usize, chunk: usize) -> Bandwidth {
    assert!(chunk > 0, "chunk must be nonzero");
    assert!(total >= chunk, "total below one chunk");
    let chunks = total / chunk;
    let payload = chunks * chunk;

    // Buffers allocated pre-fork: the writer child must not allocate.
    let out = vec![0xA5u8; chunk];
    let mut inbuf = vec![0u8; chunk];

    let (read_end, write_end) = Pipe::new().expect("pipe").split();
    match fork().expect("fork writer") {
        ForkResult::Child => {
            // Writer: stream all chunks, then exit. Only read/write/_exit.
            drop(read_end);
            for _ in 0..chunks {
                if write_end.write_all(&out).is_err() {
                    exit_immediately(2);
                }
            }
            exit_immediately(0);
        }
        ForkResult::Parent(pid) => {
            drop(write_end);
            let sw = Stopwatch::start();
            let mut received = 0usize;
            while received < payload {
                let want = chunk.min(payload - received);
                let n = read_end.read_full(&mut inbuf[..want]).expect("pipe read");
                assert!(n > 0, "writer hung up early at {received}/{payload}");
                received += n;
            }
            let elapsed = sw.elapsed_ns();
            assert!(waitpid(pid).expect("waitpid").success(), "writer failed");
            Bandwidth::from_bytes_ns(payload as u64, elapsed)
        }
    }
}

/// Repeats [`run_once`] and summarizes — warm run discarded, then
/// `repetitions` measured, summarized by `policy` (the paper records the
/// last warm run; [`SummaryPolicy::Last`] reproduces that).
pub fn measure_pipe_bw(
    total: usize,
    chunk: usize,
    repetitions: u32,
    policy: SummaryPolicy,
) -> Bandwidth {
    assert!(repetitions > 0, "need at least one repetition");
    let _warm = run_once(total, chunk);
    let samples = Samples::from_values((0..repetitions).map(|_| run_once(total, chunk).mb_per_s));
    Bandwidth {
        mb_per_s: samples.summarize(policy).unwrap_or(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfers_complete_and_report_positive_bandwidth() {
        let bw = run_once(4 << 20, 64 << 10);
        assert!(bw.mb_per_s > 0.0);
        assert!(bw.mb_per_s.is_finite());
    }

    #[test]
    fn small_chunks_are_slower_than_big_chunks() {
        // Per-syscall overhead dominates at tiny chunk sizes — the very
        // reason the paper picked 64K. Compare 256-byte vs 64K chunks.
        let small = measure_pipe_bw(2 << 20, 256, 2, SummaryPolicy::Minimum);
        let big = measure_pipe_bw(8 << 20, 64 << 10, 2, SummaryPolicy::Minimum);
        assert!(
            big.mb_per_s > small.mb_per_s,
            "64K chunks ({}) not faster than 256B chunks ({})",
            big.mb_per_s,
            small.mb_per_s
        );
    }

    #[test]
    #[should_panic(expected = "total below one chunk")]
    fn rejects_total_smaller_than_chunk() {
        run_once(1024, 64 << 10);
    }

    #[test]
    fn non_multiple_totals_round_down() {
        let bw = run_once((1 << 20) + 5000, 64 << 10);
        assert!(bw.mb_per_s > 0.0);
    }
}
