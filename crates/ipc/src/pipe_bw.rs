//! Pipe bandwidth (paper §5.2, Table 3).
//!
//! "Pipe bandwidth is measured by creating two processes, a writer and a
//! reader, which transfer 50M of data in 64K transfers. ... The reader
//! prints the timing results, which guarantees that all data has been moved
//! before the timing is finished."

use lmb_sys::pipe::Pipe;
use lmb_sys::process::{exit_immediately, fork, waitpid, ForkResult, Pid};
use lmb_sys::Fd;
use lmb_timing::clock::Stopwatch;
use lmb_timing::{Bandwidth, Samples, SummaryPolicy};

/// One writer-process/reader-process transfer of `total` bytes in `chunk`
/// sized writes; returns the reader-observed bandwidth.
///
/// # Panics
///
/// Panics if `chunk` is zero or `total < chunk`, or on process failures —
/// including a writer that dies early, which surfaces as a prompt
/// "writer hung up early" panic (EOF on the pipe), never a hang.
pub fn run_once(total: usize, chunk: usize) -> Bandwidth {
    // Fault plan read before fork: the child must not touch the
    // environment (getenv may allocate or take locks) after fork.
    let child_fail = std::env::var_os("LMBENCH_FAULT_PIPE_CHILD").is_some();
    run_once_inner(total, chunk, child_fail)
}

/// [`run_once`] with the writer-death fault injectable directly, for
/// tests that should not depend on process-global environment state.
fn run_once_inner(total: usize, chunk: usize, child_fail: bool) -> Bandwidth {
    assert!(chunk > 0, "chunk must be nonzero");
    assert!(total >= chunk, "total below one chunk");
    let chunks = total / chunk;
    let payload = chunks * chunk;

    // Buffers allocated pre-fork: the writer child must not allocate.
    let out = vec![0xA5u8; chunk];
    let mut inbuf = vec![0u8; chunk];

    let (read_end, write_end) = Pipe::new().expect("pipe").split();
    match fork().expect("fork writer") {
        ForkResult::Child => {
            // Writer: stream all chunks, then exit. Only read/write/_exit.
            drop(read_end);
            for i in 0..chunks {
                if write_end.write_all(&out).is_err() {
                    exit_immediately(2);
                }
                if child_fail && i == 0 {
                    // Injected fault: die after the first chunk, as a
                    // crashed writer would.
                    exit_immediately(1);
                }
            }
            exit_immediately(0);
        }
        ForkResult::Parent(pid) => {
            drop(write_end);
            let sw = Stopwatch::start();
            let mut received = 0usize;
            while received < payload {
                let want = chunk.min(payload - received);
                let n = read_end.read_full(&mut inbuf[..want]).expect("pipe read");
                if n == 0 {
                    // EOF: the writer died before delivering everything.
                    // Reap it first so the failure doesn't leak a zombie.
                    let _ = waitpid(pid);
                    panic!("writer hung up early at {received}/{payload}");
                }
                received += n;
            }
            let elapsed = sw.elapsed_ns();
            assert!(waitpid(pid).expect("waitpid").success(), "writer failed");
            Bandwidth::from_bytes_ns(payload as u64, elapsed)
        }
    }
}

/// Repeats [`run_once`] and summarizes — warm run discarded, then
/// `repetitions` measured, summarized by `policy` (the paper records the
/// last warm run; [`SummaryPolicy::Last`] reproduces that).
pub fn measure_pipe_bw(
    total: usize,
    chunk: usize,
    repetitions: u32,
    policy: SummaryPolicy,
) -> Bandwidth {
    assert!(repetitions > 0, "need at least one repetition");
    let _warm = run_once(total, chunk);
    let samples = Samples::from_values((0..repetitions).map(|_| run_once(total, chunk).mb_per_s));
    Bandwidth {
        mb_per_s: samples.summarize(policy).unwrap_or(0.0),
    }
}

/// A forked drain child on the far end of a pipe: the parent writes
/// chunks, the child reads and discards until EOF, then `_exit`s. The
/// pipe-bandwidth load generator for the scaling harness — each sink is
/// its own kernel pipe plus reader process, so P sinks exercise P
/// independent pipe data paths.
pub struct PipeSink {
    write_end: Option<Fd>,
    buf: Vec<u8>,
    child: Option<Pid>,
}

impl PipeSink {
    /// Forks the drain child; parent-side writes move `chunk` bytes each.
    pub fn start(chunk: usize) -> Result<Self, String> {
        assert!(chunk > 0, "chunk must be nonzero");
        // Both buffers exist before fork; the child only reads into its
        // inherited copy and exits.
        let buf = vec![0xA5u8; chunk];
        let mut drain = vec![0u8; chunk];
        let (read_end, write_end) = Pipe::new().map_err(|e| format!("pipe: {e:?}"))?.split();
        match fork().map_err(|e| format!("fork: {e:?}"))? {
            ForkResult::Child => {
                // Drain until the parent closes its end. No allocation, no
                // panics — raw syscalls and _exit only.
                drop(write_end);
                loop {
                    match read_end.read(&mut drain) {
                        Ok(0) => exit_immediately(0),
                        Ok(_) => {}
                        Err(_) => exit_immediately(2),
                    }
                }
            }
            ForkResult::Parent(pid) => {
                drop(read_end);
                Ok(Self {
                    write_end: Some(write_end),
                    buf,
                    child: Some(pid),
                })
            }
        }
    }

    /// Bytes one [`PipeSink::write_chunk`] moves.
    #[must_use]
    pub fn chunk_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Streams one chunk into the pipe.
    ///
    /// # Panics
    ///
    /// Panics if the drain child died (broken pipe).
    pub fn write_chunk(&mut self) {
        self.write_end
            .as_ref()
            .expect("sink not shut down")
            .write_all(&self.buf)
            .expect("pipe write");
    }
}

impl Drop for PipeSink {
    fn drop(&mut self) {
        // Closing the write end EOFs the child; reap it best-effort.
        drop(self.write_end.take());
        if let Some(pid) = self.child.take() {
            let _ = waitpid(pid);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfers_complete_and_report_positive_bandwidth() {
        let bw = run_once(4 << 20, 64 << 10);
        assert!(bw.mb_per_s > 0.0);
        assert!(bw.mb_per_s.is_finite());
    }

    #[test]
    fn small_chunks_are_slower_than_big_chunks() {
        // Per-syscall overhead dominates at tiny chunk sizes — the very
        // reason the paper picked 64K. Compare 256-byte vs 64K chunks.
        let small = measure_pipe_bw(2 << 20, 256, 2, SummaryPolicy::Minimum);
        let big = measure_pipe_bw(8 << 20, 64 << 10, 2, SummaryPolicy::Minimum);
        assert!(
            big.mb_per_s > small.mb_per_s,
            "64K chunks ({}) not faster than 256B chunks ({})",
            big.mb_per_s,
            small.mb_per_s
        );
    }

    #[test]
    #[should_panic(expected = "total below one chunk")]
    fn rejects_total_smaller_than_chunk() {
        run_once(1024, 64 << 10);
    }

    #[test]
    fn non_multiple_totals_round_down() {
        let bw = run_once((1 << 20) + 5000, 64 << 10);
        assert!(bw.mb_per_s > 0.0);
    }

    #[test]
    fn dead_writer_surfaces_as_prompt_failure_not_a_hang() {
        let begin = std::time::Instant::now();
        let result = std::panic::catch_unwind(|| {
            run_once_inner(4 << 20, 64 << 10, /* child_fail= */ true)
        });
        let err = result.expect_err("dead writer must fail the run");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "non-string panic".into());
        assert!(msg.contains("writer hung up early"), "{msg}");
        assert!(
            begin.elapsed() < std::time::Duration::from_secs(5),
            "failure must be prompt, not a watchdog timeout"
        );
    }

    #[test]
    fn pipe_sink_drains_chunks_and_reaps_on_drop() {
        let mut sink = PipeSink::start(64 << 10).unwrap();
        assert_eq!(sink.chunk_bytes(), 64 << 10);
        for _ in 0..32 {
            sink.write_chunk();
        }
        drop(sink); // Must not hang: EOF stops the child, waitpid reaps.
    }
}
