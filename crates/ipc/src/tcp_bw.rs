//! Loopback TCP bandwidth (paper §5.2, Table 3).
//!
//! "TCP bandwidth is measured similarly [to pipes], except the data is
//! transferred in 1M page aligned transfers instead of 64K transfers. If the
//! TCP implementation supports it, the send and receive socket buffers are
//! enlarged to 1M. ... All of the TCP results are in loopback mode."

use lmb_sys::sock::set_socket_buffers;
use lmb_timing::clock::Stopwatch;
use lmb_timing::{Bandwidth, Samples, SummaryPolicy};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};

/// One sender-thread/receiver transfer of `total` bytes in `chunk`-sized
/// writes over loopback TCP; returns receiver-observed bandwidth.
///
/// # Panics
///
/// Panics if `chunk` is zero or `total < chunk`, or on socket failures.
pub fn run_once(total: usize, chunk: usize, sockbuf: usize) -> Bandwidth {
    assert!(chunk > 0, "chunk must be nonzero");
    assert!(total >= chunk, "total below one chunk");
    let chunks = total / chunk;
    let payload = chunks * chunk;

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    set_socket_buffers(&listener, sockbuf).expect("sockbuf");
    let addr = listener.local_addr().expect("addr");

    let sender = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).expect("connect");
        set_socket_buffers(&stream, sockbuf).expect("sockbuf");
        let out = vec![0x5Au8; chunk];
        for _ in 0..chunks {
            stream.write_all(&out).expect("tcp write");
        }
    });

    let (mut conn, _) = listener.accept().expect("accept");
    let mut inbuf = vec![0u8; chunk];
    let sw = Stopwatch::start();
    let mut received = 0usize;
    while received < payload {
        let n = conn.read(&mut inbuf).expect("tcp read");
        assert!(n > 0, "sender hung up early at {received}/{payload}");
        received += n;
    }
    let elapsed = sw.elapsed_ns();
    sender.join().expect("sender thread");
    Bandwidth::from_bytes_ns(payload as u64, elapsed)
}

/// A discard server thread on the far end of a loopback TCP connection:
/// the parent writes chunks, the server reads and drops them until the
/// client closes. The TCP-bandwidth load generator for the scaling
/// harness — each sink is its own connection, so P sinks drive P
/// independent loopback streams.
pub struct TcpSink {
    stream: Option<TcpStream>,
    buf: Vec<u8>,
    server: Option<std::thread::JoinHandle<()>>,
}

impl TcpSink {
    /// Starts the discard server and connects; each
    /// [`TcpSink::write_chunk`] moves `chunk` bytes.
    pub fn start(chunk: usize, sockbuf: usize) -> Result<Self, String> {
        assert!(chunk > 0, "chunk must be nonzero");
        let listener = TcpListener::bind("127.0.0.1:0").map_err(|e| format!("bind: {e}"))?;
        set_socket_buffers(&listener, sockbuf).map_err(|e| format!("sockbuf: {e:?}"))?;
        let addr = listener.local_addr().map_err(|e| format!("addr: {e}"))?;
        let server = std::thread::spawn(move || {
            let Ok((mut conn, _)) = listener.accept() else {
                return;
            };
            let mut drain = vec![0u8; 64 << 10];
            while matches!(conn.read(&mut drain), Ok(n) if n > 0) {}
        });
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
        set_socket_buffers(&stream, sockbuf).map_err(|e| format!("sockbuf: {e:?}"))?;
        Ok(Self {
            stream: Some(stream),
            buf: vec![0x5Au8; chunk],
            server: Some(server),
        })
    }

    /// Bytes one [`TcpSink::write_chunk`] moves.
    #[must_use]
    pub fn chunk_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Streams one chunk into the connection.
    ///
    /// # Panics
    ///
    /// Panics if the discard server died (connection reset).
    pub fn write_chunk(&mut self) {
        self.stream
            .as_mut()
            .expect("sink not shut down")
            .write_all(&self.buf)
            .expect("tcp write");
    }
}

impl Drop for TcpSink {
    fn drop(&mut self) {
        // Closing the client socket EOFs the server thread's read loop.
        drop(self.stream.take());
        if let Some(h) = self.server.take() {
            let _ = h.join();
        }
    }
}

/// Repeats [`run_once`] (after one warm run) and summarizes by `policy`.
pub fn measure_tcp_bw(
    total: usize,
    chunk: usize,
    sockbuf: usize,
    repetitions: u32,
    policy: SummaryPolicy,
) -> Bandwidth {
    assert!(repetitions > 0, "need at least one repetition");
    let _warm = run_once(total, chunk, sockbuf);
    let samples =
        Samples::from_values((0..repetitions).map(|_| run_once(total, chunk, sockbuf).mb_per_s));
    Bandwidth {
        mb_per_s: samples.summarize(policy).unwrap_or(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TCP_CHUNK, TCP_SOCKBUF};

    #[test]
    fn loopback_tcp_moves_data() {
        let bw = run_once(8 << 20, TCP_CHUNK, TCP_SOCKBUF);
        assert!(bw.mb_per_s > 0.0);
        assert!(bw.mb_per_s.is_finite());
    }

    #[test]
    fn measure_summarizes_repetitions() {
        let bw = measure_tcp_bw(2 << 20, 1 << 20, TCP_SOCKBUF, 2, SummaryPolicy::Minimum);
        assert!(bw.mb_per_s > 0.0);
    }

    #[test]
    fn tiny_chunks_pay_syscall_tax() {
        let small = measure_tcp_bw(1 << 20, 512, TCP_SOCKBUF, 2, SummaryPolicy::Minimum);
        let big = measure_tcp_bw(8 << 20, TCP_CHUNK, TCP_SOCKBUF, 2, SummaryPolicy::Minimum);
        assert!(
            big.mb_per_s > small.mb_per_s,
            "1M chunks ({}) not faster than 512B chunks ({})",
            big.mb_per_s,
            small.mb_per_s
        );
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_chunk_rejected() {
        run_once(1 << 20, 0, TCP_SOCKBUF);
    }

    #[test]
    fn tcp_sink_drains_chunks_and_joins_on_drop() {
        let mut sink = TcpSink::start(64 << 10, TCP_SOCKBUF).unwrap();
        assert_eq!(sink.chunk_bytes(), 64 << 10);
        for _ in 0..32 {
            sink.write_chunk();
        }
        drop(sink); // Must not hang: close EOFs the server thread.
    }
}
