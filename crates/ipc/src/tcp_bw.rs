//! Loopback TCP bandwidth (paper §5.2, Table 3).
//!
//! "TCP bandwidth is measured similarly [to pipes], except the data is
//! transferred in 1M page aligned transfers instead of 64K transfers. If the
//! TCP implementation supports it, the send and receive socket buffers are
//! enlarged to 1M. ... All of the TCP results are in loopback mode."

use lmb_sys::sock::set_socket_buffers;
use lmb_timing::clock::Stopwatch;
use lmb_timing::{Bandwidth, Samples, SummaryPolicy};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};

/// One sender-thread/receiver transfer of `total` bytes in `chunk`-sized
/// writes over loopback TCP; returns receiver-observed bandwidth.
///
/// # Panics
///
/// Panics if `chunk` is zero or `total < chunk`, or on socket failures.
pub fn run_once(total: usize, chunk: usize, sockbuf: usize) -> Bandwidth {
    assert!(chunk > 0, "chunk must be nonzero");
    assert!(total >= chunk, "total below one chunk");
    let chunks = total / chunk;
    let payload = chunks * chunk;

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    set_socket_buffers(&listener, sockbuf).expect("sockbuf");
    let addr = listener.local_addr().expect("addr");

    let sender = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).expect("connect");
        set_socket_buffers(&stream, sockbuf).expect("sockbuf");
        let out = vec![0x5Au8; chunk];
        for _ in 0..chunks {
            stream.write_all(&out).expect("tcp write");
        }
    });

    let (mut conn, _) = listener.accept().expect("accept");
    let mut inbuf = vec![0u8; chunk];
    let sw = Stopwatch::start();
    let mut received = 0usize;
    while received < payload {
        let n = conn.read(&mut inbuf).expect("tcp read");
        assert!(n > 0, "sender hung up early at {received}/{payload}");
        received += n;
    }
    let elapsed = sw.elapsed_ns();
    sender.join().expect("sender thread");
    Bandwidth::from_bytes_ns(payload as u64, elapsed)
}

/// Repeats [`run_once`] (after one warm run) and summarizes by `policy`.
pub fn measure_tcp_bw(
    total: usize,
    chunk: usize,
    sockbuf: usize,
    repetitions: u32,
    policy: SummaryPolicy,
) -> Bandwidth {
    assert!(repetitions > 0, "need at least one repetition");
    let _warm = run_once(total, chunk, sockbuf);
    let samples =
        Samples::from_values((0..repetitions).map(|_| run_once(total, chunk, sockbuf).mb_per_s));
    Bandwidth {
        mb_per_s: samples.summarize(policy).unwrap_or(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TCP_CHUNK, TCP_SOCKBUF};

    #[test]
    fn loopback_tcp_moves_data() {
        let bw = run_once(8 << 20, TCP_CHUNK, TCP_SOCKBUF);
        assert!(bw.mb_per_s > 0.0);
        assert!(bw.mb_per_s.is_finite());
    }

    #[test]
    fn measure_summarizes_repetitions() {
        let bw = measure_tcp_bw(2 << 20, 1 << 20, TCP_SOCKBUF, 2, SummaryPolicy::Minimum);
        assert!(bw.mb_per_s > 0.0);
    }

    #[test]
    fn tiny_chunks_pay_syscall_tax() {
        let small = measure_tcp_bw(1 << 20, 512, TCP_SOCKBUF, 2, SummaryPolicy::Minimum);
        let big = measure_tcp_bw(8 << 20, TCP_CHUNK, TCP_SOCKBUF, 2, SummaryPolicy::Minimum);
        assert!(
            big.mb_per_s > small.mb_per_s,
            "1M chunks ({}) not faster than 512B chunks ({})",
            big.mb_per_s,
            small.mb_per_s
        );
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_chunk_rejected() {
        run_once(1 << 20, 0, TCP_SOCKBUF);
    }
}
