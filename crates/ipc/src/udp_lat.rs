//! Loopback UDP latency (paper §6.7, Table 13).
//!
//! "UDP sockets are unreliable messages that leave the retransmission
//! issues to the application. ... Like TCP latency, UDP latency is measured
//! by having a server process that waits for connections and a client
//! process that connects to the server. The two processes then exchange a
//! word between them in a loop." NFS was the era's canonical RPC/UDP user.

use crate::WORD;
use lmb_timing::{Harness, Latency, TimeUnit};
use std::net::UdpSocket;

/// A UDP echo server thread plus a connected client socket.
pub struct UdpEchoPair {
    client: UdpSocket,
    server: Option<std::thread::JoinHandle<()>>,
}

impl UdpEchoPair {
    /// Starts the loopback echo pair. Both sockets are `connect`ed so each
    /// exchange is a bare `send`/`recv` pair — the cheapest UDP path.
    pub fn start() -> std::io::Result<Self> {
        let server_sock = UdpSocket::bind("127.0.0.1:0")?;
        let server_addr = server_sock.local_addr()?;
        let client = UdpSocket::bind("127.0.0.1:0")?;
        let client_addr = client.local_addr()?;
        client.connect(server_addr)?;
        client.set_read_timeout(Some(std::time::Duration::from_secs(30)))?;
        server_sock.connect(client_addr)?;
        let server = std::thread::spawn(move || {
            let mut word = [0u8; WORD.len()];
            loop {
                match server_sock.recv(&mut word) {
                    // A zero-length datagram is the shutdown signal.
                    Ok(0) => break,
                    Ok(_) => {
                        if server_sock.send(&word).is_err() {
                            break;
                        }
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(Self {
            client,
            server: Some(server),
        })
    }

    /// One word round trip.
    pub fn round_trip(&self) -> std::io::Result<()> {
        let mut word = WORD;
        self.client.send(&word)?;
        self.client.recv(&mut word)?;
        Ok(())
    }
}

impl Drop for UdpEchoPair {
    fn drop(&mut self) {
        let _ = self.client.send(&[]);
        if let Some(h) = self.server.take() {
            let _ = h.join();
        }
    }
}

/// Measures loopback UDP round-trip latency; each repetition times
/// `round_trips` exchanges.
///
/// # Panics
///
/// Panics if `round_trips` is zero or the pair cannot be built.
pub fn measure_udp_latency(h: &Harness, round_trips: usize) -> Latency {
    assert!(round_trips > 0, "need at least one round trip");
    let pair = UdpEchoPair::start().expect("echo pair");
    h.measure_block(round_trips as u64, || {
        for _ in 0..round_trips {
            pair.round_trip().expect("round trip");
        }
    })
    .latency(TimeUnit::Micros)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmb_timing::Options;

    #[test]
    fn echo_pair_round_trips() {
        let pair = UdpEchoPair::start().unwrap();
        for _ in 0..10 {
            pair.round_trip().unwrap();
        }
    }

    #[test]
    fn latency_positive_and_bounded() {
        let h = Harness::new(Options::quick().with_repetitions(2));
        let lat = measure_udp_latency(&h, 50);
        let us = lat.as_micros();
        assert!(us > 0.0);
        assert!(us < 50_000.0, "UDP RTT {us}us");
    }

    #[test]
    fn udp_and_tcp_latencies_are_same_order() {
        // Loopback word exchange costs are within a small factor of each
        // other on modern stacks (Table 12 vs 13 shows the same).
        let h = Harness::new(Options::quick().with_repetitions(2));
        let udp = measure_udp_latency(&h, 50).as_micros();
        let tcp = crate::measure_tcp_latency(&h, 50).as_micros();
        assert!(udp < tcp * 20.0 + 100.0);
        assert!(tcp < udp * 20.0 + 100.0);
    }
}
