//! Loopback UDP latency (paper §6.7, Table 13).
//!
//! "UDP sockets are unreliable messages that leave the retransmission
//! issues to the application. ... Like TCP latency, UDP latency is measured
//! by having a server process that waits for connections and a client
//! process that connects to the server. The two processes then exchange a
//! word between them in a loop." NFS was the era's canonical RPC/UDP user.
//!
//! Because UDP is lossy even on loopback (socket-buffer pressure can shed
//! datagrams), the client treats each exchange as an application-level
//! retransmission unit: a short receive timeout plus a bounded number of
//! resends, exactly the "retransmission issues left to the application"
//! the paper describes. Without this a single dropped datagram wedged the
//! whole benchmark in `recv` until the 30s watchdog fired.

use crate::WORD;
use lmb_timing::{Harness, Latency, TimeUnit};
use std::io::ErrorKind;
use std::net::UdpSocket;
use std::time::Duration;

/// How long one receive waits before the client retransmits.
const RECV_TIMEOUT: Duration = Duration::from_millis(250);

/// Send attempts per round trip before giving up: the benchmark should
/// ride out an isolated drop but fail fast, not hang, when the path is
/// actually dead.
const MAX_ATTEMPTS: u32 = 3;

/// A UDP echo server thread plus a connected client socket.
pub struct UdpEchoPair {
    client: UdpSocket,
    server: Option<std::thread::JoinHandle<()>>,
}

impl UdpEchoPair {
    /// Starts the loopback echo pair. Both sockets are `connect`ed so each
    /// exchange is a bare `send`/`recv` pair — the cheapest UDP path.
    pub fn start() -> std::io::Result<Self> {
        Self::start_with_drops(0)
    }

    /// Starts a pair whose server deliberately swallows the first
    /// `drop_first` datagrams instead of echoing them — fault injection
    /// for the client's retransmission path.
    pub fn start_with_drops(drop_first: u32) -> std::io::Result<Self> {
        let server_sock = UdpSocket::bind("127.0.0.1:0")?;
        let server_addr = server_sock.local_addr()?;
        let client = UdpSocket::bind("127.0.0.1:0")?;
        let client_addr = client.local_addr()?;
        client.connect(server_addr)?;
        client.set_read_timeout(Some(RECV_TIMEOUT))?;
        server_sock.connect(client_addr)?;
        let server = std::thread::spawn(move || {
            let mut word = [0u8; WORD.len()];
            let mut to_drop = drop_first;
            loop {
                match server_sock.recv(&mut word) {
                    // A zero-length datagram is the shutdown signal.
                    Ok(0) => break,
                    Ok(_) => {
                        if to_drop > 0 {
                            to_drop -= 1;
                            continue;
                        }
                        if server_sock.send(&word).is_err() {
                            break;
                        }
                    }
                    Err(_) => break,
                }
            }
        });
        Ok(Self {
            client,
            server: Some(server),
        })
    }

    /// One word round trip. A datagram that is not echoed within
    /// [`RECV_TIMEOUT`] is retransmitted, up to [`MAX_ATTEMPTS`] sends;
    /// after that the exchange fails with `TimedOut` rather than wedging
    /// the benchmark in `recv`.
    pub fn round_trip(&self) -> std::io::Result<()> {
        let mut word = WORD;
        for _ in 0..MAX_ATTEMPTS {
            self.client.send(&word)?;
            match self.client.recv(&mut word) {
                Ok(_) => return Ok(()),
                // Timeout surfaces as WouldBlock or TimedOut depending on
                // platform; both mean "resend".
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
                Err(e) => return Err(e),
            }
        }
        Err(std::io::Error::new(
            ErrorKind::TimedOut,
            format!("no echo after {MAX_ATTEMPTS} sends"),
        ))
    }
}

impl Drop for UdpEchoPair {
    fn drop(&mut self) {
        let _ = self.client.send(&[]);
        if let Some(h) = self.server.take() {
            let _ = h.join();
        }
    }
}

/// Measures loopback UDP round-trip latency; each repetition times
/// `round_trips` exchanges.
///
/// # Panics
///
/// Panics if `round_trips` is zero or the pair cannot be built.
pub fn measure_udp_latency(h: &Harness, round_trips: usize) -> Latency {
    assert!(round_trips > 0, "need at least one round trip");
    let pair = UdpEchoPair::start().expect("echo pair");
    h.measure_block(round_trips as u64, || {
        for _ in 0..round_trips {
            pair.round_trip().expect("round trip");
        }
    })
    .latency(TimeUnit::Micros)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmb_timing::Options;
    use std::time::Instant;

    #[test]
    fn echo_pair_round_trips() {
        let pair = UdpEchoPair::start().unwrap();
        for _ in 0..10 {
            pair.round_trip().unwrap();
        }
    }

    #[test]
    fn one_dropped_datagram_is_retransmitted_not_wedged() {
        let pair = UdpEchoPair::start_with_drops(1).unwrap();
        let begin = Instant::now();
        // First exchange eats one timeout, then the resend gets echoed.
        pair.round_trip().expect("recovered by retransmission");
        pair.round_trip().expect("steady state after recovery");
        let waited = begin.elapsed();
        assert!(waited >= RECV_TIMEOUT, "drop cost a timeout: {waited:?}");
        assert!(waited < RECV_TIMEOUT * 4, "recovered promptly: {waited:?}");
    }

    #[test]
    fn dead_path_fails_bounded_instead_of_hanging() {
        // Server swallows everything: the old code sat in recv for 30s.
        let pair = UdpEchoPair::start_with_drops(u32::MAX).unwrap();
        let begin = Instant::now();
        let err = pair.round_trip().expect_err("no echo ever comes");
        assert_eq!(err.kind(), ErrorKind::TimedOut);
        let waited = begin.elapsed();
        assert!(
            waited < RECV_TIMEOUT * (MAX_ATTEMPTS + 2),
            "bounded failure: {waited:?}"
        );
    }

    #[test]
    fn latency_positive_and_bounded() {
        let h = Harness::new(Options::quick().with_repetitions(2));
        let lat = measure_udp_latency(&h, 50);
        let us = lat.as_micros();
        assert!(us > 0.0);
        assert!(us < 50_000.0, "UDP RTT {us}us");
    }

    #[test]
    fn udp_and_tcp_latencies_are_same_order() {
        // Loopback word exchange costs are within a small factor of each
        // other on modern stacks (Table 12 vs 13 shows the same).
        let h = Harness::new(Options::quick().with_repetitions(2));
        let udp = measure_udp_latency(&h, 50).as_micros();
        let tcp = crate::measure_tcp_latency(&h, 50).as_micros();
        assert!(udp < tcp * 20.0 + 100.0);
        assert!(tcp < udp * 20.0 + 100.0);
    }
}
