//! Named-pipe (FIFO) latency — the filesystem-visible sibling of
//! [`crate::pipe_lat`].
//!
//! A FIFO travels the same kernel byte-stream path as an anonymous pipe
//! but is opened by pathname, so two unrelated processes can rendezvous on
//! it; later lmbench releases measured it as `lat_fifo`. Comparing the two
//! isolates the cost (if any) the filesystem namespace adds to the data
//! path — on every system the paper's authors would have recognized, the
//! answer is "none once open(2) has happened".

use crate::WORD;
use lmb_sys::process::{exit_immediately, fork, waitpid, ForkResult};
use lmb_sys::Fd;
use lmb_timing::{Harness, Latency, TimeUnit};
use std::path::PathBuf;

/// In-band shutdown word (see `pipe_lat` for why EOF cannot be used).
const STOP: [u8; 4] = [0xFF; 4];

/// Creates a FIFO in the temp directory.
fn make_fifo(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!(
        "lmb-fifo-{tag}-{}-{:x}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos())
            .unwrap_or(0)
    ));
    let cpath = std::ffi::CString::new(path.to_str().expect("utf8 path")).expect("no NUL");
    // SAFETY: `cpath` is a valid NUL-terminated path; 0o600 is a plain
    // mode; a -1 return (e.g. EEXIST) is checked.
    let ret = unsafe { libc::mkfifo(cpath.as_ptr(), 0o600) };
    assert_eq!(ret, 0, "mkfifo failed: {}", std::io::Error::last_os_error());
    path
}

/// Measures FIFO round-trip latency: a word bounced between parent and a
/// forked echo child over two named pipes.
///
/// # Panics
///
/// Panics if `round_trips` is zero or on FIFO/process failures.
pub fn measure_fifo_latency(h: &Harness, round_trips: usize) -> Latency {
    assert!(round_trips > 0, "need at least one round trip");
    let to_child_path = make_fifo("tc");
    let to_parent_path = make_fifo("tp");
    // C paths built before fork: the child may only make raw syscalls
    // between fork and _exit (`CString::new` allocates, and the allocator
    // lock may be held by another thread at fork time).
    let to_child_c =
        std::ffi::CString::new(to_child_path.to_str().expect("utf8 path")).expect("no NUL");
    let to_parent_c =
        std::ffi::CString::new(to_parent_path.to_str().expect("utf8 path")).expect("no NUL");

    match fork().expect("fork echo child") {
        ForkResult::Child => {
            // Open order matters: FIFO open(2) blocks until the peer end
            // exists, so both sides open read-then-write... which would
            // deadlock symmetrically. Child opens its *read* side first;
            // parent opens its *write* side first.
            let inbound = Fd::open_cstr(&to_child_c, libc::O_RDONLY);
            let outbound = Fd::open_cstr(&to_parent_c, libc::O_WRONLY);
            let (inbound, outbound) = match (inbound, outbound) {
                (Ok(i), Ok(o)) => (i, o),
                _ => exit_immediately(2),
            };
            let mut word = [0u8; WORD.len()];
            loop {
                match inbound.read_full(&mut word) {
                    Ok(n) if n == word.len() => {}
                    _ => exit_immediately(3),
                }
                if outbound.write_all(&word).is_err() {
                    exit_immediately(4);
                }
                if word == STOP {
                    exit_immediately(0);
                }
            }
        }
        ForkResult::Parent(pid) => {
            let outbound = Fd::open(&to_child_path, libc::O_WRONLY).expect("open fifo wr");
            let inbound = Fd::open(&to_parent_path, libc::O_RDONLY).expect("open fifo rd");
            let mut word = WORD;
            let m = h.measure_block(round_trips as u64, || {
                for _ in 0..round_trips {
                    outbound.write_all(&word).expect("fifo write");
                    inbound.read_full(&mut word).expect("fifo read");
                }
            });
            outbound.write_all(&STOP).expect("send STOP");
            let mut echo = [0u8; 4];
            inbound.read_full(&mut echo).expect("STOP echo");
            assert!(waitpid(pid).expect("waitpid").success());
            let _ = std::fs::remove_file(&to_child_path);
            let _ = std::fs::remove_file(&to_parent_path);
            m.latency(TimeUnit::Micros)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmb_timing::Options;

    #[test]
    fn fifo_round_trip_positive_and_bounded() {
        let h = Harness::new(Options::quick().with_repetitions(2));
        let us = measure_fifo_latency(&h, 50).as_micros();
        assert!(us > 0.0);
        assert!(us < 10_000.0, "FIFO RTT {us}us");
    }

    #[test]
    fn fifo_latency_tracks_anonymous_pipe_latency() {
        // Same kernel path once open: within a small factor of pipes.
        let h = Harness::new(Options::quick().with_repetitions(2));
        let fifo = measure_fifo_latency(&h, 50).as_micros();
        let pipe = crate::measure_pipe_latency(&h, 50).as_micros();
        assert!(
            fifo < pipe * 10.0 + 50.0,
            "FIFO {fifo}us wildly above pipe {pipe}us"
        );
        assert!(pipe < fifo * 10.0 + 50.0);
    }

    #[test]
    fn fifos_are_cleaned_up() {
        let before = count_lmb_fifos();
        let h = Harness::new(Options::quick().with_repetitions(2));
        let _ = measure_fifo_latency(&h, 10);
        assert!(count_lmb_fifos() <= before, "leaked FIFO files");
    }

    fn count_lmb_fifos() -> usize {
        std::fs::read_dir(std::env::temp_dir())
            .map(|rd| {
                rd.filter_map(|e| e.ok())
                    .filter(|e| e.file_name().to_string_lossy().starts_with("lmb-fifo-"))
                    .count()
            })
            .unwrap_or(0)
    }
}
