//! AF_UNIX stream-socket latency — a later-lmbench extension.
//!
//! The 1996 paper measures pipes, TCP and UDP; subsequent lmbench releases
//! added Unix-domain sockets, which sit between pipes (no protocol work)
//! and TCP (full socket layer) and make the socket-layer cost visible in
//! isolation. Included here for the same comparison.

use crate::WORD;
use lmb_timing::{Harness, Latency, TimeUnit};
use std::io::{Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};

/// An AF_UNIX echo server thread plus connected client.
pub struct UnixEchoPair {
    client: UnixStream,
    server: Option<std::thread::JoinHandle<()>>,
    path: std::path::PathBuf,
}

impl UnixEchoPair {
    /// Starts the pair on a socket file in the temp directory.
    pub fn start() -> std::io::Result<Self> {
        let path = std::env::temp_dir().join(format!(
            "lmb-unix-{}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0)
        ));
        let listener = UnixListener::bind(&path)?;
        let server = std::thread::spawn(move || {
            if let Ok((mut conn, _)) = listener.accept() {
                let mut word = [0u8; WORD.len()];
                while conn.read_exact(&mut word).is_ok() {
                    if conn.write_all(&word).is_err() {
                        break;
                    }
                }
            }
        });
        let client = UnixStream::connect(&path)?;
        client.set_read_timeout(Some(std::time::Duration::from_secs(30)))?;
        Ok(Self {
            client,
            server: Some(server),
            path,
        })
    }

    /// One word round trip.
    pub fn round_trip(&mut self) -> std::io::Result<()> {
        let mut word = WORD;
        self.client.write_all(&word)?;
        self.client.read_exact(&mut word)?;
        Ok(())
    }
}

impl Drop for UnixEchoPair {
    fn drop(&mut self) {
        let _ = self.client.shutdown(std::net::Shutdown::Both);
        if let Some(h) = self.server.take() {
            let _ = h.join();
        }
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Measures AF_UNIX round-trip latency; each repetition times
/// `round_trips` exchanges.
///
/// # Panics
///
/// Panics if `round_trips` is zero or the pair cannot be built.
pub fn measure_unix_latency(h: &Harness, round_trips: usize) -> Latency {
    assert!(round_trips > 0, "need at least one round trip");
    let mut pair = UnixEchoPair::start().expect("echo pair");
    h.measure_block(round_trips as u64, || {
        for _ in 0..round_trips {
            pair.round_trip().expect("round trip");
        }
    })
    .latency(TimeUnit::Micros)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmb_timing::Options;

    #[test]
    fn echo_pair_round_trips() {
        let mut pair = UnixEchoPair::start().unwrap();
        for _ in 0..10 {
            pair.round_trip().unwrap();
        }
    }

    #[test]
    fn socket_file_is_cleaned_up() {
        let path;
        {
            let pair = UnixEchoPair::start().unwrap();
            path = pair.path.clone();
            assert!(path.exists());
        }
        assert!(!path.exists(), "socket file leaked at {path:?}");
    }

    #[test]
    fn latency_positive_and_bounded() {
        let h = Harness::new(Options::quick().with_repetitions(2));
        let us = measure_unix_latency(&h, 50).as_micros();
        assert!(us > 0.0);
        assert!(us < 50_000.0, "AF_UNIX RTT {us}us");
    }
}
