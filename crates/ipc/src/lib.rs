//! Interprocess-communication benchmarks (paper §5.2, §6.7).
//!
//! Bandwidth side (Table 3): pipe transfers of 50 MB in 64 KB chunks
//! between two *processes*; loopback TCP in 1 MB aligned transfers with
//! 1 MB socket buffers. Latency side (Tables 11–13, 15): word-sized
//! hot-potato round trips over pipes, TCP and UDP, plus TCP connection
//! establishment cost.
//!
//! Pipes use real `fork`ed processes — the paper's pipe numbers include the
//! scheduler, and a thread-based shortcut would measure something else. The
//! socket benchmarks use a server thread: loopback TCP/UDP cost lives in the
//! kernel's network stack, which is identical either way.

pub mod fifo_lat;
pub mod pipe_bw;
pub mod pipe_lat;
pub mod tcp_bw;
pub mod tcp_connect;
pub mod tcp_lat;
pub mod udp_lat;
pub mod unix_bw;
pub mod unix_lat;

pub use fifo_lat::measure_fifo_latency;
pub use pipe_bw::{measure_pipe_bw, PipeSink};
pub use pipe_lat::{measure_pipe_latency, PipeEchoPair};
pub use tcp_bw::{measure_tcp_bw, TcpSink};
pub use tcp_connect::measure_tcp_connect;
pub use tcp_lat::{measure_tcp_latency, TcpEchoPair};
pub use udp_lat::{measure_udp_latency, UdpEchoPair};
pub use unix_bw::measure_unix_bw;
pub use unix_lat::{measure_unix_latency, UnixEchoPair};

/// The word exchanged by all latency benchmarks ("pass a small message (a
/// byte or so) back and forth"; we use 4 bytes like the C suite's `int`).
pub const WORD: [u8; 4] = *b"lmbw";

/// Default chunk size for pipe bandwidth: 64 KB, "chosen so that the
/// overhead of system calls and context switching would not dominate".
pub const PIPE_CHUNK: usize = 64 << 10;

/// Default transfer size for TCP bandwidth: 1 MB page-aligned transfers.
pub const TCP_CHUNK: usize = 1 << 20;

/// Default socket buffer request for TCP bandwidth: 1 MB.
pub const TCP_SOCKBUF: usize = 1 << 20;
