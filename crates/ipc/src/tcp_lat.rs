//! Loopback TCP latency (paper §6.7, Table 12).
//!
//! "TCP latency is measured by having a server process that waits for
//! connections and a client process that connects to the server. The two
//! processes then exchange a word between them in a loop. The latency
//! reported is one round-trip time." The Oracle distributed lock manager's
//! locks-per-second "are accurately modeled by the TCP latency test".

use crate::WORD;
use lmb_timing::{Harness, Latency, TimeUnit};
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};

/// An echo server plus a connected client, reusable across repetitions.
pub struct TcpEchoPair {
    client: TcpStream,
    server: Option<std::thread::JoinHandle<()>>,
}

impl TcpEchoPair {
    /// Starts a loopback echo server thread and connects to it.
    ///
    /// `TCP_NODELAY` is set on both ends: a word-sized hot potato with
    /// Nagle enabled would measure the delayed-ACK timer, not the stack.
    pub fn start() -> std::io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let server = std::thread::spawn(move || {
            if let Ok((mut conn, _)) = listener.accept() {
                let _ = conn.set_nodelay(true);
                let mut word = [0u8; WORD.len()];
                while conn.read_exact(&mut word).is_ok() {
                    if conn.write_all(&word).is_err() {
                        break;
                    }
                }
            }
        });
        let client = TcpStream::connect(addr)?;
        client.set_nodelay(true)?;
        client.set_read_timeout(Some(std::time::Duration::from_secs(30)))?;
        Ok(Self {
            client,
            server: Some(server),
        })
    }

    /// One word round trip.
    pub fn round_trip(&mut self) -> std::io::Result<()> {
        let mut word = WORD;
        self.client.write_all(&word)?;
        self.client.read_exact(&mut word)?;
        Ok(())
    }
}

impl Drop for TcpEchoPair {
    fn drop(&mut self) {
        let _ = self.client.shutdown(std::net::Shutdown::Both);
        if let Some(h) = self.server.take() {
            let _ = h.join();
        }
    }
}

/// Measures loopback TCP round-trip latency; each repetition times
/// `round_trips` exchanges.
///
/// # Panics
///
/// Panics if `round_trips` is zero or the loopback pair cannot be built.
pub fn measure_tcp_latency(h: &Harness, round_trips: usize) -> Latency {
    assert!(round_trips > 0, "need at least one round trip");
    let mut pair = TcpEchoPair::start().expect("echo pair");
    h.measure_block(round_trips as u64, || {
        for _ in 0..round_trips {
            pair.round_trip().expect("round trip");
        }
    })
    .latency(TimeUnit::Micros)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lmb_timing::Options;

    #[test]
    fn echo_pair_round_trips() {
        let mut pair = TcpEchoPair::start().unwrap();
        for _ in 0..10 {
            pair.round_trip().unwrap();
        }
    }

    #[test]
    fn latency_positive_and_bounded() {
        let h = Harness::new(Options::quick().with_repetitions(2));
        let lat = measure_tcp_latency(&h, 50);
        let us = lat.as_micros();
        assert!(us > 0.0);
        assert!(us < 50_000.0, "TCP RTT {us}us");
    }

    #[test]
    fn tcp_latency_exceeds_pipe_latency_typically() {
        // Table 11 vs 12: TCP round trips cost more than pipe round trips
        // on every system (protocol work on both sides). Allow equality
        // within noise.
        let h = Harness::new(Options::quick().with_repetitions(2));
        let tcp = measure_tcp_latency(&h, 50).as_micros();
        let pipe = crate::measure_pipe_latency(&h, 50).as_micros();
        assert!(
            tcp * 3.0 > pipe,
            "TCP {tcp}us implausibly below pipe {pipe}us"
        );
    }
}
