//! RPC server: dispatch loop over TCP and UDP.
//!
//! A server owns a set of [`Procedure`] handlers keyed by (program,
//! version, procedure); each incoming call is decoded, dispatched, and
//! answered with a success or fault reply. Two TCP service disciplines
//! are available through [`ServerOptions`]:
//!
//! * **Serial** (the default): one connection at a time, matching the
//!   paper's strictly request/response benchmark setup — no thread churn
//!   in the measured path.
//! * **Concurrent**: a thread per accepted connection, for the results
//!   daemon's many-hosts ingest workload, with an optional per-record
//!   byte cap so a buggy or hostile peer cannot balloon memory.

use crate::message::{Body, RpcFault, RpcMessage};
use crate::record::{read_record_limited, write_record};
use crate::registry::{Protocol, Registry};
use bytes::Bytes;
use lmb_metrics::{Counter, Gauge, Histogram};
use parking_lot::{Mutex, RwLock};
use std::collections::HashMap;
use std::io;
use std::net::{TcpListener, TcpStream, UdpSocket};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// A procedure implementation: XDR-encoded args in, XDR-encoded result out.
///
/// Returning `Err` produces a `GARBAGE_ARGS` fault.
pub type Procedure = Box<dyn Fn(Bytes) -> Result<Bytes, ()> + Send + Sync>;

/// Registry-backed instruments shared by every `RpcServer` in the process,
/// all under `rpc.*` names. Every update is gated on the `lmb-metrics`
/// switch, so the measured echo-latency path (Tables 12–13) pays one
/// relaxed load per touch when nobody is collecting.
struct ServerStats {
    requests: &'static Counter,
    faults: &'static Counter,
    bytes_in: &'static Counter,
    bytes_out: &'static Counter,
    connections: &'static Counter,
    active: &'static Gauge,
    latency_us: &'static Histogram,
}

fn stats() -> &'static ServerStats {
    static STATS: OnceLock<ServerStats> = OnceLock::new();
    STATS.get_or_init(|| ServerStats {
        requests: lmb_metrics::counter("rpc.requests"),
        faults: lmb_metrics::counter("rpc.faults"),
        bytes_in: lmb_metrics::counter("rpc.bytes_in"),
        bytes_out: lmb_metrics::counter("rpc.bytes_out"),
        connections: lmb_metrics::counter("rpc.connections"),
        active: lmb_metrics::gauge("rpc.active_connections"),
        latency_us: lmb_metrics::histogram("rpc.latency_us"),
    })
}

/// One dispatch-table entry: the handler plus its per-procedure
/// instruments, resolved once at [`RpcServer::register`] time so the
/// request path never touches the metrics registry lock.
struct ProcEntry {
    handler: Procedure,
    calls: &'static Counter,
    errors: &'static Counter,
    latency_us: &'static Histogram,
}

#[derive(Default)]
struct Dispatch {
    procs: HashMap<(u32, u32, u32), ProcEntry>,
    versions: HashMap<u32, Vec<u32>>,
}

impl Dispatch {
    fn add(&mut self, program: u32, version: u32, procedure: u32, handler: Procedure) {
        // The instrument names live as long as the registry; one small
        // leak per registered procedure, never per request.
        let name = |kind: &str| -> &'static str {
            Box::leak(format!("rpc.{program:08x}.{procedure}.{kind}").into_boxed_str())
        };
        self.procs.insert(
            (program, version, procedure),
            ProcEntry {
                handler,
                calls: lmb_metrics::counter(name("calls")),
                errors: lmb_metrics::counter(name("errors")),
                latency_us: lmb_metrics::histogram(name("latency_us")),
            },
        );
        let versions = self.versions.entry(program).or_default();
        if !versions.contains(&version) {
            versions.push(version);
        }
    }

    fn answer(&self, call: RpcMessage) -> RpcMessage {
        let xid = call.xid;
        let c = match call.body {
            Body::Call(c) => c,
            Body::Reply(_) => {
                stats().faults.add(1);
                return RpcMessage::reply_fault(xid, RpcFault::GarbageArguments);
            }
        };
        if c.program == 0 {
            // The decoder marks wrong-rpc-version calls with program 0.
            stats().faults.add(1);
            return RpcMessage::reply_fault(xid, RpcFault::RpcMismatch);
        }
        stats().requests.add(1);
        match self.procs.get(&(c.program, c.version, c.procedure)) {
            Some(entry) => {
                entry.calls.add(1);
                let timer = lmb_metrics::enabled().then(Instant::now);
                let reply = match (entry.handler)(c.args) {
                    Ok(result) => RpcMessage::reply_success(xid, result),
                    Err(()) => {
                        stats().faults.add(1);
                        entry.errors.add(1);
                        RpcMessage::reply_fault(xid, RpcFault::GarbageArguments)
                    }
                };
                if let Some(t) = timer {
                    let us = t.elapsed().as_micros() as u64;
                    stats().latency_us.record(us);
                    entry.latency_us.record(us);
                }
                reply
            }
            None => {
                stats().faults.add(1);
                let versions = self.versions.get(&c.program);
                match versions {
                    None => RpcMessage::reply_fault(xid, RpcFault::ProgramUnavailable),
                    Some(vs) if !vs.contains(&c.version) => {
                        RpcMessage::reply_fault(xid, RpcFault::VersionMismatch)
                    }
                    Some(_) => RpcMessage::reply_fault(xid, RpcFault::ProcedureUnavailable),
                }
            }
        }
    }
}

/// Service-discipline knobs for [`RpcServer::start_with`].
#[derive(Debug, Clone, Default)]
pub struct ServerOptions {
    /// Serve each accepted TCP connection on its own thread instead of
    /// one at a time. Connection threads are joined on shutdown.
    pub concurrent: bool,
    /// Largest reassembled TCP record accepted from a peer; larger
    /// records close the connection without being buffered. `None`
    /// keeps the per-fragment cap only (the benchmark default).
    pub max_record_bytes: Option<usize>,
}

/// An RPC server serving registered programs over loopback TCP and UDP.
pub struct RpcServer {
    dispatch: Arc<RwLock<Dispatch>>,
    registry: Registry,
    stop: Arc<AtomicBool>,
    threads: Vec<std::thread::JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    tcp_port: u16,
    udp_port: u16,
}

impl RpcServer {
    /// Binds loopback TCP and UDP transports and starts their service
    /// threads with the default (serial) discipline. Registered programs
    /// are announced in `registry`.
    pub fn start(registry: Registry) -> io::Result<Self> {
        Self::start_with(registry, ServerOptions::default())
    }

    /// [`RpcServer::start`] with explicit [`ServerOptions`].
    pub fn start_with(registry: Registry, options: ServerOptions) -> io::Result<Self> {
        let dispatch = Arc::new(RwLock::new(Dispatch::default()));
        let stop = Arc::new(AtomicBool::new(false));
        let conn_threads = Arc::new(Mutex::new(Vec::new()));

        let listener = TcpListener::bind("127.0.0.1:0")?;
        let tcp_port = listener.local_addr()?.port();
        let udp = UdpSocket::bind("127.0.0.1:0")?;
        let udp_port = udp.local_addr()?.port();
        udp.set_read_timeout(Some(std::time::Duration::from_millis(50)))?;

        let mut threads = Vec::new();
        {
            let dispatch = Arc::clone(&dispatch);
            let stop = Arc::clone(&stop);
            let conn_threads = Arc::clone(&conn_threads);
            threads.push(std::thread::spawn(move || {
                if options.concurrent {
                    tcp_accept_concurrent(&listener, &dispatch, &stop, &conn_threads, &options);
                } else {
                    tcp_loop(&listener, &dispatch, &stop, &options);
                }
            }));
        }
        {
            let dispatch = Arc::clone(&dispatch);
            let stop = Arc::clone(&stop);
            threads.push(std::thread::spawn(move || {
                udp_loop(&udp, &dispatch, &stop);
            }));
        }

        Ok(Self {
            dispatch,
            registry,
            stop,
            threads,
            conn_threads,
            tcp_port,
            udp_port,
        })
    }

    /// Registers a procedure and announces the program in the registry.
    pub fn register(&self, program: u32, version: u32, procedure: u32, handler: Procedure) {
        let mut d = self.dispatch.write();
        d.add(program, version, procedure, handler);
        drop(d);
        self.registry
            .register(program, version, Protocol::Tcp, self.tcp_port);
        self.registry
            .register(program, version, Protocol::Udp, self.udp_port);
    }

    /// TCP port of this server.
    pub fn tcp_port(&self) -> u16 {
        self.tcp_port
    }

    /// UDP port of this server.
    pub fn udp_port(&self) -> u16 {
        self.udp_port
    }
}

impl Drop for RpcServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Unblock the TCP accept with a dummy connection.
        let _ = std::net::TcpStream::connect(("127.0.0.1", self.tcp_port));
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        // Concurrent-mode connection threads notice the stop flag at
        // their next read timeout (bounded at 100 ms).
        for t in self.conn_threads.lock().drain(..) {
            let _ = t.join();
        }
    }
}

fn tcp_loop(
    listener: &TcpListener,
    dispatch: &Arc<RwLock<Dispatch>>,
    stop: &Arc<AtomicBool>,
    options: &ServerOptions,
) {
    while !stop.load(Ordering::Relaxed) {
        let (mut conn, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) => continue,
        };
        if stop.load(Ordering::Relaxed) {
            return;
        }
        let _ = conn.set_nodelay(true);
        stats().connections.add(1);
        stats().active.add(1);
        // Serve this connection until it closes; benchmark clients hold one
        // connection for the whole run.
        let max = options.max_record_bytes.unwrap_or(usize::MAX);
        while let Ok(record) = read_record_limited(&mut conn, max) {
            stats().bytes_in.add(record.len() as u64);
            let reply = match RpcMessage::decode(record) {
                Ok(call) => dispatch.read().answer(call),
                Err(_) => break,
            };
            let encoded = reply.encode();
            stats().bytes_out.add(encoded.len() as u64);
            if write_record(&mut conn, &encoded).is_err() {
                break;
            }
        }
        stats().active.add(-1);
    }
}

fn tcp_accept_concurrent(
    listener: &TcpListener,
    dispatch: &Arc<RwLock<Dispatch>>,
    stop: &Arc<AtomicBool>,
    conn_threads: &Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
    options: &ServerOptions,
) {
    while !stop.load(Ordering::Relaxed) {
        let (conn, _) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) => continue,
        };
        if stop.load(Ordering::Relaxed) {
            return;
        }
        let dispatch = Arc::clone(dispatch);
        let stop = Arc::clone(stop);
        let max = options.max_record_bytes.unwrap_or(usize::MAX);
        conn_threads.lock().push(std::thread::spawn(move || {
            serve_connection(conn, &dispatch, &stop, max);
        }));
    }
}

/// Serves one concurrent-mode connection until the peer closes it, an
/// unrecoverable framing error occurs, or the server stops. The read
/// timeout is only ever hit while *idle between records* with a
/// well-formed peer (a record, once its header arrives, follows
/// immediately on loopback), so timing out and re-checking the stop flag
/// cannot tear a record in practice.
fn serve_connection(
    mut conn: TcpStream,
    dispatch: &Arc<RwLock<Dispatch>>,
    stop: &Arc<AtomicBool>,
    max_record_bytes: usize,
) {
    let _ = conn.set_nodelay(true);
    let _ = conn.set_read_timeout(Some(std::time::Duration::from_millis(100)));
    stats().connections.add(1);
    stats().active.add(1);
    // Balance the gauge on every exit path below.
    struct ActiveGuard;
    impl Drop for ActiveGuard {
        fn drop(&mut self) {
            stats().active.add(-1);
        }
    }
    let _active = ActiveGuard;
    while !stop.load(Ordering::Relaxed) {
        let record = match read_record_limited(&mut conn, max_record_bytes) {
            Ok(record) => record,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                continue; // Idle: re-check the stop flag.
            }
            Err(_) => return, // Closed, torn or oversized: drop the peer.
        };
        stats().bytes_in.add(record.len() as u64);
        let reply = match RpcMessage::decode(record) {
            Ok(call) => dispatch.read().answer(call),
            Err(_) => return,
        };
        let encoded = reply.encode();
        stats().bytes_out.add(encoded.len() as u64);
        if write_record(&mut conn, &encoded).is_err() {
            return;
        }
    }
}

fn udp_loop(udp: &UdpSocket, dispatch: &Arc<RwLock<Dispatch>>, stop: &Arc<AtomicBool>) {
    let mut buf = vec![0u8; 64 << 10];
    while !stop.load(Ordering::Relaxed) {
        let (n, peer) = match udp.recv_from(&mut buf) {
            Ok(x) => x,
            Err(_) => continue, // Timeout: re-check stop flag.
        };
        stats().bytes_in.add(n as u64);
        let reply = match RpcMessage::decode(Bytes::copy_from_slice(&buf[..n])) {
            Ok(call) => dispatch.read().answer(call),
            Err(_) => continue, // Undecodable datagram: drop, as real servers do.
        };
        let encoded = reply.encode();
        stats().bytes_out.add(encoded.len() as u64);
        let _ = udp.send_to(&encoded, peer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::{ReplyBody, RpcFault};

    fn echo_server() -> (RpcServer, Registry) {
        let registry = Registry::new();
        let server = RpcServer::start(registry.clone()).unwrap();
        server.register(
            crate::ECHO_PROGRAM,
            crate::ECHO_VERSION,
            crate::ECHO_PROC,
            Box::new(Ok),
        );
        (server, registry)
    }

    #[test]
    fn server_announces_itself() {
        let (server, registry) = echo_server();
        assert_eq!(
            registry.lookup(crate::ECHO_PROGRAM, crate::ECHO_VERSION, Protocol::Tcp),
            Some(server.tcp_port())
        );
        assert_eq!(
            registry.lookup(crate::ECHO_PROGRAM, crate::ECHO_VERSION, Protocol::Udp),
            Some(server.udp_port())
        );
    }

    #[test]
    fn dispatch_faults_are_specific() {
        let d = {
            let mut d = Dispatch::default();
            d.add(5, 1, 0, Box::new(Ok));
            d
        };
        let fault = |msg: RpcMessage| match d.answer(msg).body {
            Body::Reply(ReplyBody::Fault(f)) => f,
            other => panic!("expected fault, got {other:?}"),
        };
        assert_eq!(
            fault(RpcMessage::call(1, 999, 1, 0, Bytes::new())),
            RpcFault::ProgramUnavailable
        );
        assert_eq!(
            fault(RpcMessage::call(1, 5, 9, 0, Bytes::new())),
            RpcFault::VersionMismatch
        );
        assert_eq!(
            fault(RpcMessage::call(1, 5, 1, 7, Bytes::new())),
            RpcFault::ProcedureUnavailable
        );
    }

    #[test]
    fn dispatch_success_echoes() {
        let mut d = Dispatch::default();
        d.add(5, 1, 0, Box::new(Ok));
        let args = Bytes::from_static(b"1234");
        let reply = d.answer(RpcMessage::call(77, 5, 1, 0, args.clone()));
        assert_eq!(reply.xid, 77);
        assert_eq!(reply.body, Body::Reply(ReplyBody::Success(args)));
    }

    #[test]
    fn handler_error_becomes_garbage_args() {
        let mut d = Dispatch::default();
        d.add(5, 1, 0, Box::new(|_| Err(())));
        let reply = d.answer(RpcMessage::call(1, 5, 1, 0, Bytes::new()));
        assert_eq!(
            reply.body,
            Body::Reply(ReplyBody::Fault(RpcFault::GarbageArguments))
        );
    }

    #[test]
    fn server_shuts_down_cleanly() {
        let (server, _registry) = echo_server();
        drop(server); // Must not hang.
    }
}
