//! A from-scratch Sun-RPC-style substrate (paper §6.7, Tables 12–13).
//!
//! The paper measures TCP and UDP latency twice: raw, and through Sun's RPC
//! layer — and finds "the RPC layer frequently adds hundreds of microseconds
//! of additional latency. ... There is no justification for the extra cost;
//! it is simply an expensive implementation." To reproduce that experiment
//! without the proprietary library, this crate implements the same layering
//! from scratch:
//!
//! * [`xdr`] — External Data Representation (RFC 4506 subset): big-endian,
//!   4-byte-aligned primitive and opaque encodings.
//! * [`message`] — the RPC call/reply message envelope (RFC 1057 shape:
//!   xid, program, version, procedure, null auth).
//! * [`record`] — TCP record marking (fragment length + last-fragment bit).
//! * [`registry`] — an in-process port-mapper: programs register, clients
//!   look the port up before connecting (the paper's connect benchmark
//!   includes exactly this step).
//! * [`server`]/[`client`] — dispatch loop and caller over real TCP and UDP
//!   loopback sockets.
//!
//! The cost the paper attributes to RPC — envelope marshalling, XDR
//! discipline, record framing, dispatch indirection — is therefore incurred
//! genuinely, not simulated.

pub mod client;
pub mod message;
pub mod record;
pub mod registry;
pub mod server;
pub mod xdr;

pub use client::{CallError, RpcClient};
pub use message::{Body, CallBody, MsgType, ReplyBody, RpcFault, RpcMessage, RPC_VERSION};
pub use record::{read_record, read_record_limited, write_record, MAX_FRAGMENT};
pub use registry::{Protocol, Registry};
pub use server::{Procedure, RpcServer, ServerOptions};
pub use xdr::{XdrDecoder, XdrEncoder, XdrError};

/// The echo program used by the latency benchmarks.
pub const ECHO_PROGRAM: u32 = 0x2000_0001;
/// Version of the echo program.
pub const ECHO_VERSION: u32 = 1;
/// Echo procedure number (0 is the conventional NULL proc).
pub const ECHO_PROC: u32 = 1;

/// The results-service program served by `lmbench serve`.
pub const RESULTS_PROGRAM: u32 = 0x2000_0002;
/// Version of the results program (the RPC interface version; the
/// payload schema is versioned separately by `lmb-results`).
pub const RESULTS_VERSION: u32 = 1;
/// Ingest one pushed run report.
pub const RESULTS_PROC_PUSH: u32 = 1;
/// Latest-vs-previous regression diff for one host fingerprint.
pub const RESULTS_PROC_DIFF: u32 = 2;
/// Metric history for a (fingerprint, bench, metric) triple.
pub const RESULTS_PROC_HISTORY: u32 = 3;
/// Regenerated paper tables from a stored run.
pub const RESULTS_PROC_TABLE: u32 = 4;
/// Operational statistics snapshot of the serving daemon.
pub const RESULTS_PROC_STATS: u32 = 5;
