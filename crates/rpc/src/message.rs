//! The RPC message envelope (RFC 1057 shape).
//!
//! Every call carries a transaction id, the RPC version (2), the target
//! (program, version, procedure) and two null-auth blocks; every reply
//! echoes the xid and carries an acceptance status. This envelope — built,
//! encoded, decoded and matched per call — *is* the layering cost the
//! paper's Tables 12–13 expose.

use crate::xdr::{XdrDecoder, XdrEncoder, XdrError};
use bytes::Bytes;

/// RPC protocol version implemented (the only one that ever existed).
pub const RPC_VERSION: u32 = 2;

/// Message direction discriminant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgType {
    /// A call (0 on the wire).
    Call,
    /// A reply (1 on the wire).
    Reply,
}

/// The call half of a message.
#[derive(Debug, Clone, PartialEq)]
pub struct CallBody {
    /// Remote program number.
    pub program: u32,
    /// Program version.
    pub version: u32,
    /// Procedure within the program.
    pub procedure: u32,
    /// Procedure arguments, already XDR-encoded by the caller.
    pub args: Bytes,
}

/// Why a reply did not carry a result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RpcFault {
    /// Program not registered at this server (PROG_UNAVAIL).
    ProgramUnavailable,
    /// Version not supported (PROG_MISMATCH).
    VersionMismatch,
    /// Procedure not implemented (PROC_UNAVAIL).
    ProcedureUnavailable,
    /// Arguments undecodable (GARBAGE_ARGS).
    GarbageArguments,
    /// RPC version in the call was not 2 (RPC_MISMATCH denial).
    RpcMismatch,
}

impl RpcFault {
    fn wire(self) -> u32 {
        match self {
            RpcFault::ProgramUnavailable => 1,
            RpcFault::VersionMismatch => 2,
            RpcFault::ProcedureUnavailable => 3,
            RpcFault::GarbageArguments => 4,
            RpcFault::RpcMismatch => 100,
        }
    }

    fn from_wire(v: u32) -> Option<Self> {
        Some(match v {
            1 => RpcFault::ProgramUnavailable,
            2 => RpcFault::VersionMismatch,
            3 => RpcFault::ProcedureUnavailable,
            4 => RpcFault::GarbageArguments,
            100 => RpcFault::RpcMismatch,
            _ => return None,
        })
    }
}

/// The reply half of a message.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplyBody {
    /// Call accepted and executed; carries the XDR-encoded result.
    Success(Bytes),
    /// Call failed at the RPC layer.
    Fault(RpcFault),
}

/// A complete RPC message.
#[derive(Debug, Clone, PartialEq)]
pub struct RpcMessage {
    /// Transaction id matching calls to replies.
    pub xid: u32,
    /// Call or reply payload.
    pub body: Body,
}

/// Call/reply union.
#[derive(Debug, Clone, PartialEq)]
pub enum Body {
    /// This message is a call.
    Call(CallBody),
    /// This message is a reply.
    Reply(ReplyBody),
}

impl RpcMessage {
    /// Builds a call message.
    pub fn call(xid: u32, program: u32, version: u32, procedure: u32, args: Bytes) -> Self {
        Self {
            xid,
            body: Body::Call(CallBody {
                program,
                version,
                procedure,
                args,
            }),
        }
    }

    /// Builds a success reply.
    pub fn reply_success(xid: u32, result: Bytes) -> Self {
        Self {
            xid,
            body: Body::Reply(ReplyBody::Success(result)),
        }
    }

    /// Builds a fault reply.
    pub fn reply_fault(xid: u32, fault: RpcFault) -> Self {
        Self {
            xid,
            body: Body::Reply(ReplyBody::Fault(fault)),
        }
    }

    /// Encodes to wire bytes.
    ///
    /// # Panics
    ///
    /// Panics if the free-form payload (call args / reply result) is not a
    /// multiple of 4 bytes — payloads must already be XDR-encoded, and every
    /// XDR stream is 4-aligned. (An unaligned payload would be
    /// indistinguishable from its padding on the decode side.)
    pub fn encode(&self) -> Bytes {
        if let Body::Call(c) = &self.body {
            assert_eq!(c.args.len() % 4, 0, "call args must be XDR-aligned");
        }
        if let Body::Reply(ReplyBody::Success(r)) = &self.body {
            assert_eq!(r.len() % 4, 0, "reply result must be XDR-aligned");
        }
        let mut e = XdrEncoder::new();
        e.put_u32(self.xid);
        match &self.body {
            Body::Call(c) => {
                e.put_u32(0); // CALL
                e.put_u32(RPC_VERSION);
                e.put_u32(c.program);
                e.put_u32(c.version);
                e.put_u32(c.procedure);
                // Credential and verifier: AUTH_NULL, zero-length body.
                e.put_u32(0).put_u32(0);
                e.put_u32(0).put_u32(0);
                e.put_opaque_fixed(&c.args);
            }
            Body::Reply(r) => {
                e.put_u32(1); // REPLY
                match r {
                    ReplyBody::Success(result) => {
                        e.put_u32(0); // MSG_ACCEPTED
                        e.put_u32(0).put_u32(0); // Verifier AUTH_NULL.
                        e.put_u32(0); // SUCCESS
                        e.put_opaque_fixed(result);
                    }
                    ReplyBody::Fault(RpcFault::RpcMismatch) => {
                        e.put_u32(1); // MSG_DENIED
                        e.put_u32(0); // RPC_MISMATCH
                        e.put_u32(RPC_VERSION).put_u32(RPC_VERSION);
                    }
                    ReplyBody::Fault(fault) => {
                        e.put_u32(0); // MSG_ACCEPTED
                        e.put_u32(0).put_u32(0); // Verifier.
                        e.put_u32(fault.wire());
                    }
                }
            }
        }
        e.finish()
    }

    /// Decodes from wire bytes. The trailing free-form payload (args or
    /// result) is whatever remains after the envelope.
    pub fn decode(bytes: Bytes) -> Result<Self, XdrError> {
        let total = bytes.len();
        let mut d = XdrDecoder::new(bytes.clone());
        let xid = d.get_u32()?;
        let mtype = d.get_u32()?;
        match mtype {
            0 => {
                let rpcvers = d.get_u32()?;
                let program = d.get_u32()?;
                let version = d.get_u32()?;
                let procedure = d.get_u32()?;
                // Credential + verifier (flavor, length-prefixed body).
                for _ in 0..2 {
                    let _flavor = d.get_u32()?;
                    let _body = d.get_opaque()?;
                }
                let consumed = total - d.remaining();
                let args = bytes.slice(consumed..);
                if rpcvers != RPC_VERSION {
                    // Still a structurally valid call; server answers with
                    // RPC_MISMATCH. Mark by an impossible program of 0.
                    return Ok(RpcMessage::call(xid, 0, rpcvers, procedure, args));
                }
                Ok(RpcMessage::call(xid, program, version, procedure, args))
            }
            1 => {
                let stat = d.get_u32()?;
                match stat {
                    0 => {
                        let _verf_flavor = d.get_u32()?;
                        let _verf_body = d.get_opaque()?;
                        let accept = d.get_u32()?;
                        if accept == 0 {
                            let consumed = total - d.remaining();
                            Ok(RpcMessage::reply_success(xid, bytes.slice(consumed..)))
                        } else {
                            let fault =
                                RpcFault::from_wire(accept).unwrap_or(RpcFault::GarbageArguments);
                            Ok(RpcMessage::reply_fault(xid, fault))
                        }
                    }
                    _ => Ok(RpcMessage::reply_fault(xid, RpcFault::RpcMismatch)),
                }
            }
            v => Err(XdrError::BadBool(v)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn call_round_trips() {
        let args = Bytes::from_static(b"abcd1234");
        let msg = RpcMessage::call(42, 0x2000_0001, 1, 7, args.clone());
        let decoded = RpcMessage::decode(msg.encode()).unwrap();
        assert_eq!(decoded.xid, 42);
        match decoded.body {
            Body::Call(c) => {
                assert_eq!(c.program, 0x2000_0001);
                assert_eq!(c.version, 1);
                assert_eq!(c.procedure, 7);
                assert_eq!(c.args, args);
            }
            other => panic!("decoded as {other:?}"),
        }
    }

    #[test]
    fn success_reply_round_trips() {
        let result = Bytes::from_static(b"okok");
        let msg = RpcMessage::reply_success(7, result.clone());
        let decoded = RpcMessage::decode(msg.encode()).unwrap();
        assert_eq!(decoded.xid, 7);
        assert_eq!(decoded.body, Body::Reply(ReplyBody::Success(result)));
    }

    #[test]
    fn fault_replies_round_trip() {
        for fault in [
            RpcFault::ProgramUnavailable,
            RpcFault::VersionMismatch,
            RpcFault::ProcedureUnavailable,
            RpcFault::GarbageArguments,
            RpcFault::RpcMismatch,
        ] {
            let msg = RpcMessage::reply_fault(9, fault);
            let decoded = RpcMessage::decode(msg.encode()).unwrap();
            assert_eq!(
                decoded.body,
                Body::Reply(ReplyBody::Fault(fault)),
                "fault {fault:?}"
            );
        }
    }

    #[test]
    fn truncated_envelope_is_an_error() {
        let msg = RpcMessage::call(1, 2, 3, 4, Bytes::new());
        let wire = msg.encode();
        for cut in [0usize, 3, 7, 11] {
            assert!(RpcMessage::decode(wire.slice(0..cut)).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn empty_args_are_legal() {
        let msg = RpcMessage::call(1, 2, 3, 4, Bytes::new());
        let decoded = RpcMessage::decode(msg.encode()).unwrap();
        match decoded.body {
            Body::Call(c) => assert!(c.args.is_empty()),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn envelope_overhead_is_ten_words_for_calls() {
        // xid, CALL, rpcvers, prog, vers, proc, cred(2), verf(2) = 40 bytes.
        let msg = RpcMessage::call(1, 2, 3, 4, Bytes::new());
        assert_eq!(msg.encode().len(), 40);
    }
}
