//! TCP record marking (RFC 1057 §10).
//!
//! RPC messages over TCP are framed into records; each fragment is preceded
//! by a 4-byte big-endian header whose top bit marks the final fragment and
//! whose low 31 bits give the fragment length. This framing — one extra
//! write, one extra read, one length check per message — is part of the
//! layering cost the paper measures.

use bytes::{Buf, Bytes, BytesMut};
use std::io::{self, Read, Write};

/// Largest fragment this implementation emits or accepts.
pub const MAX_FRAGMENT: usize = 1 << 24;

/// Writes `payload` as one or more record fragments.
pub fn write_record<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    let mut chunks = payload.chunks(MAX_FRAGMENT).peekable();
    // A zero-length record is still one (final, empty) fragment.
    if payload.is_empty() {
        w.write_all(&0x8000_0000u32.to_be_bytes())?;
        return Ok(());
    }
    while let Some(chunk) = chunks.next() {
        let last = chunks.peek().is_none();
        let mut header = chunk.len() as u32;
        if last {
            header |= 0x8000_0000;
        }
        w.write_all(&header.to_be_bytes())?;
        w.write_all(chunk)?;
    }
    Ok(())
}

/// Reads one complete record (possibly multiple fragments).
pub fn read_record<R: Read>(r: &mut R) -> io::Result<Bytes> {
    read_record_limited(r, usize::MAX)
}

/// Reads one complete record, rejecting any record whose *total*
/// reassembled size exceeds `max_total` bytes.
///
/// [`read_record`] caps each fragment at [`MAX_FRAGMENT`] but places no
/// bound on how many fragments a record may span — fine between trusted
/// benchmark processes, not for a long-running daemon whose peers can be
/// buggy. The check runs against the declared fragment lengths *before*
/// buffering, so an oversized record is refused without allocating for it.
pub fn read_record_limited<R: Read>(r: &mut R, max_total: usize) -> io::Result<Bytes> {
    let mut out = BytesMut::new();
    loop {
        let mut hdr = [0u8; 4];
        r.read_exact(&mut hdr)?;
        let word = u32::from_be_bytes(hdr);
        let last = word & 0x8000_0000 != 0;
        let len = (word & 0x7FFF_FFFF) as usize;
        if len > MAX_FRAGMENT {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("fragment of {len} bytes exceeds cap"),
            ));
        }
        if out.len().saturating_add(len) > max_total {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "record exceeds {max_total}-byte cap ({} buffered + {len} declared)",
                    out.len()
                ),
            ));
        }
        let start = out.len();
        out.resize(start + len, 0);
        r.read_exact(&mut out[start..])?;
        if last {
            return Ok(out.freeze());
        }
    }
}

/// In-memory framing helper for datagram-over-stream tests: frames
/// `payload` and returns the raw stream bytes.
pub fn frame(payload: &[u8]) -> Bytes {
    let mut buf = Vec::with_capacity(payload.len() + 8);
    write_record(&mut buf, payload).expect("vec write cannot fail");
    Bytes::from(buf)
}

/// Parses all records out of a contiguous stream buffer (test helper).
pub fn deframe_all(mut stream: Bytes) -> io::Result<Vec<Bytes>> {
    let mut out = Vec::new();
    while stream.has_remaining() {
        let mut cursor = io::Cursor::new(stream.as_ref());
        let record = read_record(&mut cursor)?;
        let consumed = cursor.position() as usize;
        stream.advance(consumed);
        out.push(record);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_fragment_round_trip() {
        let framed = frame(b"hello rpc");
        let records = deframe_all(framed).unwrap();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].as_ref(), b"hello rpc");
    }

    #[test]
    fn empty_record_round_trips() {
        let framed = frame(b"");
        assert_eq!(framed.as_ref(), &[0x80, 0, 0, 0]);
        let records = deframe_all(framed).unwrap();
        assert_eq!(records.len(), 1);
        assert!(records[0].is_empty());
    }

    #[test]
    fn back_to_back_records_separate_cleanly() {
        let mut stream = Vec::new();
        write_record(&mut stream, b"first").unwrap();
        write_record(&mut stream, b"second message").unwrap();
        write_record(&mut stream, b"").unwrap();
        let records = deframe_all(Bytes::from(stream)).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].as_ref(), b"first");
        assert_eq!(records[1].as_ref(), b"second message");
        assert!(records[2].is_empty());
    }

    #[test]
    fn header_carries_last_bit_and_length() {
        let framed = frame(b"abc");
        assert_eq!(framed[0], 0x80);
        assert_eq!(framed[3], 3);
    }

    #[test]
    fn truncated_stream_errors_not_panics() {
        let framed = frame(b"full message");
        let cut = framed.slice(0..6);
        let mut cursor = std::io::Cursor::new(cut.as_ref());
        assert!(read_record(&mut cursor).is_err());
    }

    #[test]
    fn limited_read_rejects_oversized_records_before_buffering() {
        let framed = frame(b"twelve bytes");
        let mut cursor = std::io::Cursor::new(framed.as_ref());
        let err = read_record_limited(&mut cursor, 5).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        // A record at exactly the cap passes.
        let mut cursor = std::io::Cursor::new(framed.as_ref());
        let record = read_record_limited(&mut cursor, 12).unwrap();
        assert_eq!(record.as_ref(), b"twelve bytes");
    }

    #[test]
    fn limited_read_caps_the_fragment_total_not_each_fragment() {
        // Two 3-byte fragments: total 6 exceeds a 5-byte cap even though
        // each fragment alone fits.
        let mut stream = Vec::new();
        stream.extend_from_slice(&3u32.to_be_bytes());
        stream.extend_from_slice(b"abc");
        stream.extend_from_slice(&(3u32 | 0x8000_0000).to_be_bytes());
        stream.extend_from_slice(b"def");
        let mut cursor = std::io::Cursor::new(stream.as_slice());
        assert!(read_record_limited(&mut cursor, 5).is_err());
        let mut cursor = std::io::Cursor::new(stream.as_slice());
        assert_eq!(
            read_record_limited(&mut cursor, 6).unwrap().as_ref(),
            b"abcdef"
        );
    }

    #[test]
    fn multi_fragment_records_reassemble() {
        // Hand-build two fragments: "abc" (not last) + "def" (last).
        let mut stream = Vec::new();
        stream.extend_from_slice(&3u32.to_be_bytes());
        stream.extend_from_slice(b"abc");
        stream.extend_from_slice(&(3u32 | 0x8000_0000).to_be_bytes());
        stream.extend_from_slice(b"def");
        let mut cursor = std::io::Cursor::new(stream.as_slice());
        let record = read_record(&mut cursor).unwrap();
        assert_eq!(record.as_ref(), b"abcdef");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn any_payload_round_trips(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
            let records = deframe_all(frame(&data)).unwrap();
            prop_assert_eq!(records.len(), 1);
            prop_assert_eq!(records[0].as_ref(), data.as_slice());
        }

        #[test]
        fn concatenated_payloads_stay_separate(
            a in proptest::collection::vec(any::<u8>(), 0..512),
            b in proptest::collection::vec(any::<u8>(), 0..512),
        ) {
            let mut stream = Vec::new();
            write_record(&mut stream, &a).unwrap();
            write_record(&mut stream, &b).unwrap();
            let records = deframe_all(Bytes::from(stream)).unwrap();
            prop_assert_eq!(records.len(), 2);
            prop_assert_eq!(records[0].as_ref(), a.as_slice());
            prop_assert_eq!(records[1].as_ref(), b.as_slice());
        }
    }
}
