//! RPC client over TCP and UDP, plus the Table 12/13 latency measurements.
//!
//! A client looks the server up in the [`Registry`] (the portmapper step),
//! connects, and then issues calls: build envelope → XDR-encode → frame
//! (TCP) or send datagram (UDP) → await the xid-matched reply → decode.
//! Every one of those steps is real work per call; their sum is the "RPC
//! adds hundreds of microseconds" overhead of the paper's Tables 12–13.

use crate::message::{Body, ReplyBody, RpcFault, RpcMessage};
use crate::record::{read_record, write_record};
use crate::registry::{Protocol, Registry};
use bytes::Bytes;
use lmb_timing::{Harness, Latency, TimeUnit};
use std::io;
use std::net::{TcpStream, UdpSocket};

/// Client-side call failures.
#[derive(Debug)]
pub enum CallError {
    /// Service not found in the registry.
    NotRegistered,
    /// Transport failure.
    Io(io::Error),
    /// Server answered with an RPC-layer fault.
    Fault(RpcFault),
    /// Reply was undecodable or mismatched.
    BadReply,
}

impl From<io::Error> for CallError {
    fn from(e: io::Error) -> Self {
        CallError::Io(e)
    }
}

impl std::fmt::Display for CallError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CallError::NotRegistered => write!(f, "program not registered"),
            CallError::Io(e) => write!(f, "transport: {e}"),
            CallError::Fault(fault) => write!(f, "rpc fault: {fault:?}"),
            CallError::BadReply => write!(f, "undecodable or mismatched reply"),
        }
    }
}

impl std::error::Error for CallError {}

enum Transport {
    Tcp(TcpStream),
    Udp(UdpSocket),
}

/// A connected RPC client for one (program, version).
pub struct RpcClient {
    transport: Transport,
    program: u32,
    version: u32,
    next_xid: u32,
    udp_buf: Vec<u8>,
}

impl RpcClient {
    /// Looks the service up in `registry` and connects over `protocol`.
    pub fn connect(
        registry: &Registry,
        program: u32,
        version: u32,
        protocol: Protocol,
    ) -> Result<Self, CallError> {
        let port = registry
            .lookup(program, version, protocol)
            .ok_or(CallError::NotRegistered)?;
        let transport = match protocol {
            Protocol::Tcp => {
                let stream = TcpStream::connect(("127.0.0.1", port))?;
                stream.set_nodelay(true)?;
                stream.set_read_timeout(Some(std::time::Duration::from_secs(30)))?;
                Transport::Tcp(stream)
            }
            Protocol::Udp => {
                let sock = UdpSocket::bind("127.0.0.1:0")?;
                sock.connect(("127.0.0.1", port))?;
                sock.set_read_timeout(Some(std::time::Duration::from_secs(30)))?;
                Transport::Udp(sock)
            }
        };
        Ok(Self {
            transport,
            program,
            version,
            next_xid: 1,
            udp_buf: vec![0u8; 64 << 10],
        })
    }

    /// Connects straight to a TCP endpoint, bypassing the registry — for
    /// clients that were handed an address out of band, the way
    /// `lmbench report push --to host:port` is. `addr` is anything
    /// `ToSocketAddrs` accepts (`"127.0.0.1:4045"`, a `SocketAddr`, ...).
    pub fn connect_tcp(
        addr: impl std::net::ToSocketAddrs,
        program: u32,
        version: u32,
    ) -> Result<Self, CallError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(std::time::Duration::from_secs(30)))?;
        Ok(Self {
            transport: Transport::Tcp(stream),
            program,
            version,
            next_xid: 1,
            udp_buf: Vec::new(),
        })
    }

    /// One remote procedure call; `args` must be XDR-encoded (4-aligned).
    pub fn call(&mut self, procedure: u32, args: Bytes) -> Result<Bytes, CallError> {
        let xid = self.next_xid;
        self.next_xid = self.next_xid.wrapping_add(1);
        let wire = RpcMessage::call(xid, self.program, self.version, procedure, args).encode();

        let reply_bytes = match &mut self.transport {
            Transport::Tcp(stream) => {
                write_record(stream, &wire)?;
                read_record(stream)?
            }
            Transport::Udp(sock) => {
                sock.send(&wire)?;
                let n = sock.recv(&mut self.udp_buf)?;
                Bytes::copy_from_slice(&self.udp_buf[..n])
            }
        };

        let reply = RpcMessage::decode(reply_bytes).map_err(|_| CallError::BadReply)?;
        if reply.xid != xid {
            return Err(CallError::BadReply);
        }
        match reply.body {
            Body::Reply(ReplyBody::Success(result)) => Ok(result),
            Body::Reply(ReplyBody::Fault(fault)) => Err(CallError::Fault(fault)),
            Body::Call(_) => Err(CallError::BadReply),
        }
    }
}

/// Measures RPC echo round-trip latency over `protocol` against an already
/// running echo service; each repetition times `round_trips` calls.
///
/// # Panics
///
/// Panics if `round_trips` is zero or the service is unreachable.
pub fn measure_rpc_latency(
    h: &Harness,
    registry: &Registry,
    protocol: Protocol,
    round_trips: usize,
) -> Latency {
    assert!(round_trips > 0, "need at least one round trip");
    let mut client =
        RpcClient::connect(registry, crate::ECHO_PROGRAM, crate::ECHO_VERSION, protocol)
            .expect("connect to echo service");
    let word = Bytes::from_static(b"lmbw");
    h.measure_block(round_trips as u64, || {
        for _ in 0..round_trips {
            let reply = client
                .call(crate::ECHO_PROC, word.clone())
                .expect("echo call");
            debug_assert_eq!(reply, word);
        }
    })
    .latency(TimeUnit::Micros)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::server::RpcServer;
    use crate::{ECHO_PROC, ECHO_PROGRAM, ECHO_VERSION};
    use lmb_timing::Options;

    fn echo_setup() -> (RpcServer, Registry) {
        let registry = Registry::new();
        let server = RpcServer::start(registry.clone()).unwrap();
        server.register(ECHO_PROGRAM, ECHO_VERSION, ECHO_PROC, Box::new(Ok));
        (server, registry)
    }

    #[test]
    fn tcp_call_round_trips() {
        let (_server, registry) = echo_setup();
        let mut client =
            RpcClient::connect(&registry, ECHO_PROGRAM, ECHO_VERSION, Protocol::Tcp).unwrap();
        let reply = client.call(ECHO_PROC, Bytes::from_static(b"ping")).unwrap();
        assert_eq!(reply.as_ref(), b"ping");
    }

    #[test]
    fn udp_call_round_trips() {
        let (_server, registry) = echo_setup();
        let mut client =
            RpcClient::connect(&registry, ECHO_PROGRAM, ECHO_VERSION, Protocol::Udp).unwrap();
        let reply = client.call(ECHO_PROC, Bytes::from_static(b"pong")).unwrap();
        assert_eq!(reply.as_ref(), b"pong");
    }

    #[test]
    fn many_sequential_calls_share_one_connection() {
        let (_server, registry) = echo_setup();
        let mut client =
            RpcClient::connect(&registry, ECHO_PROGRAM, ECHO_VERSION, Protocol::Tcp).unwrap();
        for i in 0..100u32 {
            let mut e = crate::xdr::XdrEncoder::new();
            e.put_u32(i);
            let reply = client.call(ECHO_PROC, e.finish()).unwrap();
            let mut d = crate::xdr::XdrDecoder::new(reply);
            assert_eq!(d.get_u32().unwrap(), i);
        }
    }

    #[test]
    fn unknown_program_is_not_registered() {
        let registry = Registry::new();
        assert!(matches!(
            RpcClient::connect(&registry, 12345, 1, Protocol::Tcp),
            Err(CallError::NotRegistered)
        ));
    }

    #[test]
    fn wrong_procedure_faults() {
        let (_server, registry) = echo_setup();
        let mut client =
            RpcClient::connect(&registry, ECHO_PROGRAM, ECHO_VERSION, Protocol::Tcp).unwrap();
        match client.call(99, Bytes::new()) {
            Err(CallError::Fault(RpcFault::ProcedureUnavailable)) => {}
            other => panic!("expected PROC_UNAVAIL, got {other:?}"),
        }
    }

    #[test]
    fn rpc_latency_exceeds_raw_word_exchange() {
        // The paper's whole point: the RPC layer adds real cost over the
        // bare transport. We can't compare to lmb-ipc here (dependency
        // direction), but the latency must at least be positive & bounded.
        let (_server, registry) = echo_setup();
        let h = Harness::new(Options::quick().with_repetitions(2));
        let lat = measure_rpc_latency(&h, &registry, Protocol::Tcp, 50);
        assert!(lat.as_micros() > 0.0);
        assert!(lat.as_micros() < 50_000.0);
        let lat_udp = measure_rpc_latency(&h, &registry, Protocol::Udp, 50);
        assert!(lat_udp.as_micros() > 0.0);
    }
}
