//! External Data Representation — the RFC 4506 subset RPC needs.
//!
//! XDR is big-endian with every item padded to a 4-byte boundary. The paper
//! notes the latency cost is *not* here ("the data being passed back and
//! forth is a byte, so there is no XDR to be done") but a faithful RPC layer
//! still runs every argument through this discipline.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

/// Decode-side failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XdrError {
    /// Fewer bytes remained than the item requires.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually remaining.
        remaining: usize,
    },
    /// A variable-length item declared a length above the decoder's cap.
    LengthOverflow {
        /// Declared length.
        declared: u32,
        /// The cap in force.
        cap: u32,
    },
    /// A bool was neither 0 nor 1.
    BadBool(u32),
    /// Non-zero padding bytes (XDR requires zero fill).
    BadPadding,
    /// A string was not valid UTF-8.
    BadUtf8,
}

impl fmt::Display for XdrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XdrError::Truncated { needed, remaining } => {
                write!(f, "truncated: needed {needed} bytes, {remaining} remain")
            }
            XdrError::LengthOverflow { declared, cap } => {
                write!(f, "declared length {declared} exceeds cap {cap}")
            }
            XdrError::BadBool(v) => write!(f, "bool encoded as {v}"),
            XdrError::BadPadding => write!(f, "non-zero pad bytes"),
            XdrError::BadUtf8 => write!(f, "string is not UTF-8"),
        }
    }
}

impl std::error::Error for XdrError {}

/// Largest variable-length item the decoder will accept, guarding against
/// hostile length words allocating gigabytes.
pub const MAX_ITEM: u32 = 16 << 20;

fn pad_len(n: usize) -> usize {
    (4 - (n % 4)) % 4
}

/// Serializes items in XDR order.
#[derive(Debug, Default)]
pub struct XdrEncoder {
    buf: BytesMut,
}

impl XdrEncoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finishes, yielding the encoded bytes.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }

    /// Bytes encoded so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been encoded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Encodes an unsigned 32-bit integer.
    pub fn put_u32(&mut self, v: u32) -> &mut Self {
        self.buf.put_u32(v);
        self
    }

    /// Encodes a signed 32-bit integer.
    pub fn put_i32(&mut self, v: i32) -> &mut Self {
        self.buf.put_i32(v);
        self
    }

    /// Encodes an unsigned 64-bit "hyper".
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.buf.put_u64(v);
        self
    }

    /// Encodes a signed 64-bit "hyper".
    pub fn put_i64(&mut self, v: i64) -> &mut Self {
        self.buf.put_i64(v);
        self
    }

    /// Encodes a boolean as 0/1.
    pub fn put_bool(&mut self, v: bool) -> &mut Self {
        self.put_u32(u32::from(v))
    }

    /// Encodes fixed-length opaque data (no length word), zero-padded to 4.
    pub fn put_opaque_fixed(&mut self, data: &[u8]) -> &mut Self {
        self.buf.put_slice(data);
        for _ in 0..pad_len(data.len()) {
            self.buf.put_u8(0);
        }
        self
    }

    /// Encodes variable-length opaque data (length word + bytes + pad).
    pub fn put_opaque(&mut self, data: &[u8]) -> &mut Self {
        self.put_u32(data.len() as u32);
        self.put_opaque_fixed(data)
    }

    /// Encodes a string (same wire form as variable opaque).
    pub fn put_string(&mut self, s: &str) -> &mut Self {
        self.put_opaque(s.as_bytes())
    }

    /// Encodes a counted array via a per-element closure.
    pub fn put_array<T>(&mut self, items: &[T], mut f: impl FnMut(&mut Self, &T)) -> &mut Self {
        self.put_u32(items.len() as u32);
        for item in items {
            f(self, item);
        }
        self
    }
}

/// Deserializes items in XDR order.
#[derive(Debug)]
pub struct XdrDecoder {
    buf: Bytes,
}

impl XdrDecoder {
    /// Wraps encoded bytes.
    pub fn new(buf: Bytes) -> Self {
        Self { buf }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn need(&self, n: usize) -> Result<(), XdrError> {
        if self.buf.len() < n {
            Err(XdrError::Truncated {
                needed: n,
                remaining: self.buf.len(),
            })
        } else {
            Ok(())
        }
    }

    /// Decodes an unsigned 32-bit integer.
    pub fn get_u32(&mut self) -> Result<u32, XdrError> {
        self.need(4)?;
        Ok(self.buf.get_u32())
    }

    /// Decodes a signed 32-bit integer.
    pub fn get_i32(&mut self) -> Result<i32, XdrError> {
        self.need(4)?;
        Ok(self.buf.get_i32())
    }

    /// Decodes an unsigned 64-bit hyper.
    pub fn get_u64(&mut self) -> Result<u64, XdrError> {
        self.need(8)?;
        Ok(self.buf.get_u64())
    }

    /// Decodes a signed 64-bit hyper.
    pub fn get_i64(&mut self) -> Result<i64, XdrError> {
        self.need(8)?;
        Ok(self.buf.get_i64())
    }

    /// Decodes a boolean, rejecting values other than 0/1.
    pub fn get_bool(&mut self) -> Result<bool, XdrError> {
        match self.get_u32()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(XdrError::BadBool(v)),
        }
    }

    /// Decodes `len` bytes of fixed opaque data plus pad.
    pub fn get_opaque_fixed(&mut self, len: usize) -> Result<Bytes, XdrError> {
        let padded = len + pad_len(len);
        self.need(padded)?;
        let data = self.buf.split_to(len);
        let pad = self.buf.split_to(pad_len(len));
        if pad.iter().any(|&b| b != 0) {
            return Err(XdrError::BadPadding);
        }
        Ok(data)
    }

    /// Decodes variable-length opaque data.
    pub fn get_opaque(&mut self) -> Result<Bytes, XdrError> {
        let len = self.get_u32()?;
        if len > MAX_ITEM {
            return Err(XdrError::LengthOverflow {
                declared: len,
                cap: MAX_ITEM,
            });
        }
        self.get_opaque_fixed(len as usize)
    }

    /// Decodes a string.
    pub fn get_string(&mut self) -> Result<String, XdrError> {
        let bytes = self.get_opaque()?;
        String::from_utf8(bytes.to_vec()).map_err(|_| XdrError::BadUtf8)
    }

    /// Decodes a counted array via a per-element closure.
    pub fn get_array<T>(
        &mut self,
        mut f: impl FnMut(&mut Self) -> Result<T, XdrError>,
    ) -> Result<Vec<T>, XdrError> {
        let len = self.get_u32()?;
        if len > MAX_ITEM {
            return Err(XdrError::LengthOverflow {
                declared: len,
                cap: MAX_ITEM,
            });
        }
        let mut out = Vec::with_capacity((len as usize).min(4096));
        for _ in 0..len {
            out.push(f(self)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut e = XdrEncoder::new();
        e.put_u32(7)
            .put_i32(-9)
            .put_u64(u64::MAX)
            .put_i64(i64::MIN)
            .put_bool(true)
            .put_bool(false);
        let mut d = XdrDecoder::new(e.finish());
        assert_eq!(d.get_u32().unwrap(), 7);
        assert_eq!(d.get_i32().unwrap(), -9);
        assert_eq!(d.get_u64().unwrap(), u64::MAX);
        assert_eq!(d.get_i64().unwrap(), i64::MIN);
        assert!(d.get_bool().unwrap());
        assert!(!d.get_bool().unwrap());
        assert_eq!(d.remaining(), 0);
    }

    #[test]
    fn everything_is_four_byte_aligned() {
        for len in 0..9usize {
            let data = vec![0xEEu8; len];
            let mut e = XdrEncoder::new();
            e.put_opaque(&data);
            assert_eq!(e.len() % 4, 0, "opaque of {len} not aligned");
        }
    }

    #[test]
    fn opaque_round_trip_preserves_bytes() {
        let data = b"exactly thirteen".to_vec();
        let mut e = XdrEncoder::new();
        e.put_opaque(&data);
        let mut d = XdrDecoder::new(e.finish());
        assert_eq!(d.get_opaque().unwrap().as_ref(), data.as_slice());
    }

    #[test]
    fn string_round_trip() {
        let mut e = XdrEncoder::new();
        e.put_string("héllo wörld");
        let mut d = XdrDecoder::new(e.finish());
        assert_eq!(d.get_string().unwrap(), "héllo wörld");
    }

    #[test]
    fn truncated_input_is_detected() {
        let mut e = XdrEncoder::new();
        e.put_u64(1);
        let bytes = e.finish().slice(0..5);
        let mut d = XdrDecoder::new(bytes);
        assert!(matches!(d.get_u64(), Err(XdrError::Truncated { .. })));
    }

    #[test]
    fn hostile_length_word_is_capped() {
        let mut e = XdrEncoder::new();
        e.put_u32(u32::MAX); // Claims a 4 GiB opaque.
        let mut d = XdrDecoder::new(e.finish());
        assert!(matches!(
            d.get_opaque(),
            Err(XdrError::LengthOverflow { .. })
        ));
    }

    #[test]
    fn nonzero_padding_rejected() {
        // Hand-craft: length 1, byte, then garbage pad.
        let mut raw = BytesMut::new();
        raw.put_u32(1);
        raw.put_u8(0xAA);
        raw.put_u8(0x01); // Should be zero.
        raw.put_u8(0);
        raw.put_u8(0);
        let mut d = XdrDecoder::new(raw.freeze());
        assert_eq!(d.get_opaque(), Err(XdrError::BadPadding));
    }

    #[test]
    fn bad_bool_rejected() {
        let mut e = XdrEncoder::new();
        e.put_u32(2);
        let mut d = XdrDecoder::new(e.finish());
        assert_eq!(d.get_bool(), Err(XdrError::BadBool(2)));
    }

    #[test]
    fn invalid_utf8_string_rejected() {
        let mut e = XdrEncoder::new();
        e.put_opaque(&[0xFF, 0xFE]);
        let mut d = XdrDecoder::new(e.finish());
        assert_eq!(d.get_string(), Err(XdrError::BadUtf8));
    }

    #[test]
    fn arrays_round_trip() {
        let items = vec![3u32, 1, 4, 1, 5];
        let mut e = XdrEncoder::new();
        e.put_array(&items, |e, &v| {
            e.put_u32(v);
        });
        let mut d = XdrDecoder::new(e.finish());
        assert_eq!(d.get_array(|d| d.get_u32()).unwrap(), items);
    }

    #[test]
    fn wire_format_is_big_endian() {
        let mut e = XdrEncoder::new();
        e.put_u32(0x0102_0304);
        assert_eq!(e.finish().as_ref(), &[1, 2, 3, 4]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn any_opaque_round_trips(data in proptest::collection::vec(any::<u8>(), 0..2048)) {
            let mut e = XdrEncoder::new();
            e.put_opaque(&data);
            let mut d = XdrDecoder::new(e.finish());
            let got = d.get_opaque().unwrap();
            prop_assert_eq!(got.as_ref(), data.as_slice());
            prop_assert_eq!(d.remaining(), 0);
        }

        #[test]
        fn any_string_round_trips(s in "\\PC{0,200}") {
            let mut e = XdrEncoder::new();
            e.put_string(&s);
            let mut d = XdrDecoder::new(e.finish());
            prop_assert_eq!(d.get_string().unwrap(), s);
        }

        #[test]
        fn mixed_sequences_round_trip(
            u in any::<u32>(),
            i in any::<i64>(),
            b in any::<bool>(),
            data in proptest::collection::vec(any::<u8>(), 0..256),
        ) {
            let mut e = XdrEncoder::new();
            e.put_u32(u).put_i64(i).put_bool(b).put_opaque(&data);
            let mut d = XdrDecoder::new(e.finish());
            prop_assert_eq!(d.get_u32().unwrap(), u);
            prop_assert_eq!(d.get_i64().unwrap(), i);
            prop_assert_eq!(d.get_bool().unwrap(), b);
            let got = d.get_opaque().unwrap();
            prop_assert_eq!(got.as_ref(), data.as_slice());
        }

        #[test]
        fn truncation_never_panics(
            data in proptest::collection::vec(any::<u8>(), 0..64),
            cut in 0usize..64,
        ) {
            let mut e = XdrEncoder::new();
            e.put_opaque(&data);
            let full = e.finish();
            let cut = cut.min(full.len());
            let mut d = XdrDecoder::new(full.slice(0..cut));
            // Must return Ok or a structured error, never panic.
            let _ = d.get_opaque();
        }
    }
}
