//! An in-process port mapper.
//!
//! Sun RPC servers register (program, version, protocol) → port with the
//! portmapper; clients "figure out where the server is registered" before
//! connecting (paper §6.7, the connect benchmark's first step). This
//! registry reproduces the lookup indirection without requiring a privileged
//! daemon on port 111.

use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Transport protocol of a registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// TCP with record marking.
    Tcp,
    /// UDP, one message per datagram.
    Udp,
}

/// Registration key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    program: u32,
    version: u32,
    protocol: Protocol,
}

/// A shareable program→port registry.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    map: Arc<RwLock<HashMap<Key, u16>>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a service; replaces any previous registration and returns
    /// the port it displaced, if any.
    pub fn register(
        &self,
        program: u32,
        version: u32,
        protocol: Protocol,
        port: u16,
    ) -> Option<u16> {
        self.map.write().insert(
            Key {
                program,
                version,
                protocol,
            },
            port,
        )
    }

    /// Looks a service up.
    pub fn lookup(&self, program: u32, version: u32, protocol: Protocol) -> Option<u16> {
        self.map
            .read()
            .get(&Key {
                program,
                version,
                protocol,
            })
            .copied()
    }

    /// Removes a registration, returning its port.
    pub fn unregister(&self, program: u32, version: u32, protocol: Protocol) -> Option<u16> {
        self.map.write().remove(&Key {
            program,
            version,
            protocol,
        })
    }

    /// Number of live registrations.
    pub fn len(&self) -> usize {
        self.map.read().len()
    }

    /// True if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.map.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_lookup_unregister_cycle() {
        let r = Registry::new();
        assert!(r.is_empty());
        assert_eq!(r.register(100, 1, Protocol::Tcp, 5000), None);
        assert_eq!(r.lookup(100, 1, Protocol::Tcp), Some(5000));
        assert_eq!(r.lookup(100, 1, Protocol::Udp), None);
        assert_eq!(r.lookup(100, 2, Protocol::Tcp), None);
        assert_eq!(r.unregister(100, 1, Protocol::Tcp), Some(5000));
        assert!(r.is_empty());
    }

    #[test]
    fn re_registration_displaces() {
        let r = Registry::new();
        r.register(7, 1, Protocol::Udp, 4000);
        assert_eq!(r.register(7, 1, Protocol::Udp, 4001), Some(4000));
        assert_eq!(r.lookup(7, 1, Protocol::Udp), Some(4001));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn clones_share_state() {
        let a = Registry::new();
        let b = a.clone();
        a.register(1, 1, Protocol::Tcp, 9);
        assert_eq!(b.lookup(1, 1, Protocol::Tcp), Some(9));
    }

    #[test]
    fn concurrent_registrations_are_safe() {
        let r = Registry::new();
        let handles: Vec<_> = (0..8u32)
            .map(|i| {
                let r = r.clone();
                std::thread::spawn(move || {
                    for v in 0..100u32 {
                        r.register(i, v, Protocol::Tcp, (i * 100 + v) as u16);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(r.len(), 800);
        assert_eq!(r.lookup(3, 42, Protocol::Tcp), Some(342));
    }
}
