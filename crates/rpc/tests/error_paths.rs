//! Error-path drills for the RPC substrate the results daemon leans on.
//!
//! A benchmark client and server trust each other; a long-running ingest
//! daemon cannot. These tests exercise the failure modes a fleet will
//! produce: torn records, wrong program/version/procedure targeting,
//! oversized payloads, stale RPC versions, and connections that die
//! mid-conversation.

use bytes::Bytes;
use lmb_rpc::{
    read_record, write_record, Body, CallError, Protocol, Registry, ReplyBody, RpcClient, RpcFault,
    RpcMessage, RpcServer, ServerOptions, XdrEncoder, ECHO_PROC, ECHO_PROGRAM, ECHO_VERSION,
};
use std::io::Write;
use std::net::{TcpListener, TcpStream};

fn echo_server_with(options: ServerOptions) -> (RpcServer, Registry) {
    let registry = Registry::new();
    let server = RpcServer::start_with(registry.clone(), options).unwrap();
    server.register(ECHO_PROGRAM, ECHO_VERSION, ECHO_PROC, Box::new(Ok));
    (server, registry)
}

fn echo_server() -> (RpcServer, Registry) {
    echo_server_with(ServerOptions::default())
}

#[test]
fn truncated_record_mark_does_not_wedge_the_server() {
    let (server, _registry) = echo_server();

    // A peer declares a 100-byte record, sends 10 bytes, and vanishes.
    {
        let mut conn = TcpStream::connect(("127.0.0.1", server.tcp_port())).unwrap();
        conn.write_all(&(100u32 | 0x8000_0000).to_be_bytes())
            .unwrap();
        conn.write_all(&[0u8; 10]).unwrap();
    } // Dropped: server sees EOF mid-record and must abandon the peer.

    // The next, well-formed client still gets service.
    let mut client =
        RpcClient::connect_tcp(("127.0.0.1", server.tcp_port()), ECHO_PROGRAM, ECHO_VERSION)
            .unwrap();
    let reply = client.call(ECHO_PROC, Bytes::from_static(b"pong")).unwrap();
    assert_eq!(reply.as_ref(), b"pong");
}

#[test]
fn truncated_reply_surfaces_as_client_io_error() {
    // A "server" that reads the call, then answers with a record header
    // promising more bytes than it ever sends.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let port = listener.local_addr().unwrap().port();
    let handle = std::thread::spawn(move || {
        let (mut conn, _) = listener.accept().unwrap();
        let _ = read_record(&mut conn).unwrap();
        conn.write_all(&(64u32 | 0x8000_0000).to_be_bytes())
            .unwrap();
        conn.write_all(&[0u8; 8]).unwrap();
        // Dropping the connection truncates the promised record.
    });

    let mut client =
        RpcClient::connect_tcp(("127.0.0.1", port), ECHO_PROGRAM, ECHO_VERSION).unwrap();
    match client.call(ECHO_PROC, Bytes::from_static(b"ping")) {
        Err(CallError::Io(_)) => {}
        other => panic!("expected Io error from torn reply, got {other:?}"),
    }
    handle.join().unwrap();
}

#[test]
fn unknown_targets_fault_specifically() {
    let (server, _registry) = echo_server();
    let addr = ("127.0.0.1", server.tcp_port());

    // Serial server: each client must close before the next connects.
    {
        let mut client = RpcClient::connect_tcp(addr, 0xdead_beef, 1).unwrap();
        match client.call(0, Bytes::new()) {
            Err(CallError::Fault(RpcFault::ProgramUnavailable)) => {}
            other => panic!("expected PROG_UNAVAIL, got {other:?}"),
        }
    }
    {
        let mut client = RpcClient::connect_tcp(addr, ECHO_PROGRAM, 99).unwrap();
        match client.call(ECHO_PROC, Bytes::new()) {
            Err(CallError::Fault(RpcFault::VersionMismatch)) => {}
            other => panic!("expected PROG_MISMATCH, got {other:?}"),
        }
    }
    {
        let mut client = RpcClient::connect_tcp(addr, ECHO_PROGRAM, ECHO_VERSION).unwrap();
        match client.call(77, Bytes::new()) {
            Err(CallError::Fault(RpcFault::ProcedureUnavailable)) => {}
            other => panic!("expected PROC_UNAVAIL, got {other:?}"),
        }
    }
}

#[test]
fn wrong_rpc_version_is_denied_not_served() {
    let (server, _registry) = echo_server();
    let mut conn = TcpStream::connect(("127.0.0.1", server.tcp_port())).unwrap();

    // Hand-encode a call claiming RPC version 3.
    let mut e = XdrEncoder::new();
    e.put_u32(7); // xid
    e.put_u32(0); // CALL
    e.put_u32(3); // rpcvers: not 2
    e.put_u32(ECHO_PROGRAM);
    e.put_u32(ECHO_VERSION);
    e.put_u32(ECHO_PROC);
    e.put_u32(0).put_u32(0); // cred AUTH_NULL
    e.put_u32(0).put_u32(0); // verf AUTH_NULL
    write_record(&mut conn, &e.finish()).unwrap();

    let reply = RpcMessage::decode(read_record(&mut conn).unwrap()).unwrap();
    assert_eq!(reply.xid, 7);
    assert_eq!(
        reply.body,
        Body::Reply(ReplyBody::Fault(RpcFault::RpcMismatch))
    );
}

#[test]
fn oversized_payload_drops_the_connection() {
    let (server, _registry) = echo_server_with(ServerOptions {
        concurrent: true,
        max_record_bytes: Some(1 << 10),
    });
    let addr = ("127.0.0.1", server.tcp_port());

    // Small payloads pass under the cap.
    let mut client = RpcClient::connect_tcp(addr, ECHO_PROGRAM, ECHO_VERSION).unwrap();
    let reply = client.call(ECHO_PROC, Bytes::from_static(b"tiny")).unwrap();
    assert_eq!(reply.as_ref(), b"tiny");

    // A 64 KiB record blows the 1 KiB cap: the server refuses to buffer
    // it and hangs up, which the client sees as a transport error.
    let big = Bytes::from(vec![0u8; 64 << 10]);
    match client.call(ECHO_PROC, big) {
        Err(CallError::Io(_)) => {}
        other => panic!("expected Io error for oversized record, got {other:?}"),
    }

    // The daemon itself is unharmed: fresh connections still served.
    let mut client = RpcClient::connect_tcp(addr, ECHO_PROGRAM, ECHO_VERSION).unwrap();
    let reply = client.call(ECHO_PROC, Bytes::from_static(b"okay")).unwrap();
    assert_eq!(reply.as_ref(), b"okay");
}

#[test]
fn concurrent_server_interleaves_connections() {
    // With the serial discipline a second connection waits for the first
    // to close; the daemon's discipline must not.
    let (server, _registry) = echo_server_with(ServerOptions {
        concurrent: true,
        max_record_bytes: None,
    });
    let addr = ("127.0.0.1", server.tcp_port());

    let mut first = RpcClient::connect_tcp(addr, ECHO_PROGRAM, ECHO_VERSION).unwrap();
    assert_eq!(
        first
            .call(ECHO_PROC, Bytes::from_static(b"one!"))
            .unwrap()
            .as_ref(),
        b"one!"
    );
    // First connection stays open while the second is served.
    let mut second = RpcClient::connect_tcp(addr, ECHO_PROGRAM, ECHO_VERSION).unwrap();
    assert_eq!(
        second
            .call(ECHO_PROC, Bytes::from_static(b"two!"))
            .unwrap()
            .as_ref(),
        b"two!"
    );
    // And the first is still live afterwards.
    assert_eq!(
        first
            .call(ECHO_PROC, Bytes::from_static(b"more"))
            .unwrap()
            .as_ref(),
        b"more"
    );
}

#[test]
fn concurrent_server_survives_a_thundering_herd() {
    let (server, _registry) = echo_server_with(ServerOptions {
        concurrent: true,
        max_record_bytes: Some(1 << 20),
    });
    let port = server.tcp_port();
    let threads: Vec<_> = (0..16u32)
        .map(|t| {
            std::thread::spawn(move || {
                let mut client =
                    RpcClient::connect_tcp(("127.0.0.1", port), ECHO_PROGRAM, ECHO_VERSION)
                        .unwrap();
                for i in 0..25u32 {
                    let mut e = XdrEncoder::new();
                    e.put_u32(t * 1000 + i);
                    let reply = client.call(ECHO_PROC, e.finish()).unwrap();
                    let mut d = lmb_rpc::XdrDecoder::new(reply);
                    assert_eq!(d.get_u32().unwrap(), t * 1000 + i);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
}

#[test]
fn registry_lookup_still_guards_connect() {
    // The registry path keeps its NotRegistered error even now that
    // direct connects exist.
    let registry = Registry::new();
    assert!(matches!(
        RpcClient::connect(&registry, 0x4444_4444, 1, Protocol::Tcp),
        Err(CallError::NotRegistered)
    ));
}
