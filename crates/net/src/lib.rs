//! Simulated network links for the paper's *remote* experiments
//! (Tables 4 and 14).
//!
//! The paper measured four physical media between machine pairs we do not
//! have: 10baseT, 100baseT, FDDI, and HIPPI. But it also hands us the
//! decomposition that makes simulation sound (§6.7): "The times shown
//! include the time on the wire, which is about 130 microseconds for 10Mbit
//! ethernet, 13 microseconds for 100Mbit ethernet and FDDI, and less than
//! 10 microseconds for Hippi" — i.e. remote cost = *software overhead*
//! (measurable on loopback, which traverses both protocol stacks) + *wire
//! time* (pure physics: serialization at the bit rate plus media access).
//!
//! [`LinkModel`] captures the physics; [`remote`] composes it with real
//! loopback measurements from `lmb-ipc` to regenerate the remote tables'
//! shape: HIPPI far ahead on bandwidth, 100baseT competitive with FDDI
//! despite FDDI's ~3x larger packets, 10baseT an order of magnitude behind.

pub mod link;
pub mod remote;

pub use link::{standard_links, LinkModel};
pub use remote::{remote_bandwidth, remote_latency, RemoteBandwidth, RemoteLatency};
