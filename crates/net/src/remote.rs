//! Composing measured loopback software cost with modeled wire time —
//! the regeneration path for Tables 4 and 14.
//!
//! Loopback traverses the sender *and* receiver protocol stacks on one
//! machine, so a loopback measurement is exactly the "software overhead"
//! term of the paper's decomposition. The remote number adds the wire:
//!
//! * latency:   `RTT_remote = RTT_loopback + 2 x wire_time(word packet)`
//! * bandwidth: per-byte costs add — `1/bw_remote = 1/bw_software +
//!   1/bw_wire` (+ a software checksum term when the adapter does not
//!   offload, per the paper's "the majority of the TCP cost is in the
//!   bcopy, the checksum, and the driver").

use crate::link::LinkModel;

/// Size of the latency benchmark's packet on the wire: a word padded to
/// the 64-byte minimum Ethernet frame.
pub const WORD_PACKET: usize = 64;

/// Throughput of a software TCP checksum pass, MB/s: one pass over the
/// data at cache speed on the era of hardware the tables model.
pub const SW_CHECKSUM_MB_S: f64 = 300.0;

/// A Table 14 row: remote round-trip latency over one medium.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RemoteLatency {
    /// The medium.
    pub link: LinkModel,
    /// Measured loopback round trip (software both sides), µs.
    pub loopback_rtt_us: f64,
    /// Modeled two-way wire time, µs.
    pub wire_rtt_us: f64,
    /// Composed remote round trip, µs.
    pub total_us: f64,
}

/// A Table 4 row: remote TCP bandwidth over one medium.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RemoteBandwidth {
    /// The medium.
    pub link: LinkModel,
    /// Measured loopback software bandwidth, MB/s.
    pub loopback_mb_s: f64,
    /// The medium's own payload throughput, MB/s.
    pub wire_mb_s: f64,
    /// Composed end-to-end bandwidth, MB/s.
    pub total_mb_s: f64,
}

/// Composes a measured loopback RTT with a link's wire time.
///
/// # Panics
///
/// Panics if `loopback_rtt_us` is not positive.
pub fn remote_latency(link: LinkModel, loopback_rtt_us: f64) -> RemoteLatency {
    assert!(loopback_rtt_us > 0.0, "loopback RTT must be positive");
    let wire_rtt_us = 2.0 * link.wire_time_us(WORD_PACKET);
    RemoteLatency {
        link,
        loopback_rtt_us,
        wire_rtt_us,
        total_us: loopback_rtt_us + wire_rtt_us,
    }
}

/// Composes a measured loopback bandwidth with a link's throughput.
///
/// Without checksum offload, a software checksum pass over every byte is
/// added to the software term (on loopback the checksum "may be safely
/// eliminated", §5.2, so it is *not* already in the measurement).
///
/// # Panics
///
/// Panics if `loopback_mb_s` is not positive.
pub fn remote_bandwidth(link: LinkModel, loopback_mb_s: f64) -> RemoteBandwidth {
    assert!(loopback_mb_s > 0.0, "loopback bandwidth must be positive");
    let wire_mb_s = link.throughput_mb_s();
    let us_per_byte_at = |mb_s: f64| 1e6 / (mb_s * (1 << 20) as f64);
    let mut sw_us_per_byte = us_per_byte_at(loopback_mb_s);
    if !link.checksum_offload {
        sw_us_per_byte += us_per_byte_at(SW_CHECKSUM_MB_S);
    }
    let wire_us_per_byte = us_per_byte_at(wire_mb_s);
    let total_us_per_byte = sw_us_per_byte + wire_us_per_byte;
    RemoteBandwidth {
        link,
        loopback_mb_s,
        wire_mb_s,
        total_mb_s: 1.0 / total_us_per_byte / (1 << 20) as f64 * 1e6,
    }
}

/// Builds the full Table 14 (all four media) from one loopback RTT.
pub fn latency_table(loopback_rtt_us: f64) -> Vec<RemoteLatency> {
    crate::link::standard_links()
        .into_iter()
        .map(|l| remote_latency(l, loopback_rtt_us))
        .collect()
}

/// Builds the full Table 4 from one loopback bandwidth.
pub fn bandwidth_table(loopback_mb_s: f64) -> Vec<RemoteBandwidth> {
    crate::link::standard_links()
        .into_iter()
        .map(|l| remote_bandwidth(l, loopback_mb_s))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::standard_links;

    #[test]
    fn remote_latency_adds_paper_scale_wire_time() {
        // A 1995 loopback RTC of ~300us over 10baseT gains ~130us of wire.
        let r = remote_latency(LinkModel::ten_base_t(), 300.0);
        assert!(r.wire_rtt_us > 80.0 && r.wire_rtt_us < 250.0, "{r:?}");
        assert!((r.total_us - r.loopback_rtt_us - r.wire_rtt_us).abs() < 1e-9);
    }

    #[test]
    fn remote_bandwidth_never_exceeds_either_term() {
        for link in standard_links() {
            let r = remote_bandwidth(link, 30.0);
            assert!(
                r.total_mb_s <= r.loopback_mb_s + 1e-9,
                "{}: {} > sw {}",
                link.name,
                r.total_mb_s,
                r.loopback_mb_s
            );
            assert!(r.total_mb_s <= r.wire_mb_s + 1e-9);
        }
    }

    #[test]
    fn table4_shape_hippi_wins_10baset_trails() {
        // SGI-like software: 60 MB/s loopback.
        let rows = bandwidth_table(60.0);
        let by_name = |n: &str| rows.iter().find(|r| r.link.name == n).unwrap().total_mb_s;
        let hippi = by_name("hippi");
        let hundred = by_name("100baseT");
        let fddi = by_name("fddi");
        let ten = by_name("10baseT");
        assert!(hippi > 2.0 * hundred, "hippi {hippi} vs 100baseT {hundred}");
        assert!(hundred > 5.0 * ten, "100baseT {hundred} vs 10baseT {ten}");
        // Table 4: 100baseT (9.5) competitive with FDDI (8.8).
        assert!((hundred / fddi) > 0.7 && (hundred / fddi) < 1.5);
        // 10baseT lands near the paper's ~0.9 MB/s.
        assert!((0.5..1.3).contains(&ten), "10baseT {ten}");
    }

    #[test]
    fn table14_ordering_ethernet_lowest_latency() {
        // §6.7: "the most heavily used network interfaces (i.e. ethernet)
        // have the lowest latencies" — with equal software overhead, the
        // wire term orders hippi < fddi/100baseT < 10baseT.
        let rows = latency_table(400.0);
        let by_name = |n: &str| rows.iter().find(|r| r.link.name == n).unwrap().total_us;
        assert!(by_name("hippi") < by_name("100baseT"));
        assert!(by_name("100baseT") < by_name("10baseT"));
        assert!(by_name("fddi") < by_name("10baseT"));
    }

    #[test]
    fn checksum_offload_helps_bandwidth() {
        // Same wire, with and without offload.
        let mut with = LinkModel::hippi();
        let mut without = with;
        with.checksum_offload = true;
        without.checksum_offload = false;
        let sw = 60.0;
        assert!(remote_bandwidth(with, sw).total_mb_s > remote_bandwidth(without, sw).total_mb_s);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_loopback_rejected() {
        remote_latency(LinkModel::fddi(), 0.0);
    }
}
