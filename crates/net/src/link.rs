//! Link physics: bit rate, MTU, per-packet media access cost.

/// A physical network medium.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkModel {
    /// Medium name as the paper prints it.
    pub name: &'static str,
    /// Raw bit rate, megabits per second.
    pub bandwidth_mbit: f64,
    /// Maximum payload per packet, bytes.
    pub mtu: usize,
    /// Fixed per-packet cost: media access, preamble, PHY latency — µs.
    pub per_packet_us: f64,
    /// Per-packet protocol header bytes on the wire.
    pub header_bytes: usize,
    /// True if the adapter checksums TCP in hardware (the paper's SGI
    /// HIPPI: "hardware support for TCP checksums").
    pub checksum_offload: bool,
}

impl LinkModel {
    /// 10 Mb/s Ethernet (10baseT).
    pub fn ten_base_t() -> Self {
        Self {
            name: "10baseT",
            bandwidth_mbit: 10.0,
            mtu: 1500,
            per_packet_us: 10.0,
            header_bytes: 18 + 20 + 20, // eth + IP + TCP
            checksum_offload: false,
        }
    }

    /// 100 Mb/s Ethernet (100baseT).
    pub fn hundred_base_t() -> Self {
        Self {
            name: "100baseT",
            bandwidth_mbit: 100.0,
            mtu: 1500,
            per_packet_us: 1.5,
            header_bytes: 18 + 20 + 20,
            checksum_offload: false,
        }
    }

    /// FDDI: 100 Mb/s token ring, "packets that are almost three times
    /// larger" than Ethernet's.
    pub fn fddi() -> Self {
        Self {
            name: "fddi",
            bandwidth_mbit: 100.0,
            mtu: 4352,
            per_packet_us: 4.0, // Token rotation share.
            header_bytes: 13 + 20 + 20,
            checksum_offload: false,
        }
    }

    /// HIPPI: 800 Mb/s, huge frames, hardware TCP checksums.
    pub fn hippi() -> Self {
        Self {
            name: "hippi",
            bandwidth_mbit: 800.0,
            mtu: 65280,
            per_packet_us: 2.0,
            header_bytes: 40 + 20 + 20,
            checksum_offload: true,
        }
    }

    /// Wire time to move `bytes` of payload one way, µs: packetization at
    /// the MTU, each packet paying the fixed cost plus serialization of
    /// payload + headers at the bit rate.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is zero.
    pub fn wire_time_us(&self, bytes: usize) -> f64 {
        assert!(bytes > 0, "zero-byte transfer");
        let packets = bytes.div_ceil(self.mtu);
        let on_wire_bits = ((bytes + packets * self.header_bytes) * 8) as f64;
        packets as f64 * self.per_packet_us + on_wire_bits / self.bandwidth_mbit
    }

    /// Steady-state payload throughput of the medium alone, MB/s
    /// (2^20 bytes), at full-MTU packets.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate model whose full-MTU packet takes no
    /// positive finite time (zero/negative `per_packet_us` combined with
    /// an infinite bit rate, or NaN parameters) — a throughput computed
    /// from such a model would silently be `inf`/NaN and poison every
    /// table built from it.
    pub fn throughput_mb_s(&self) -> f64 {
        // Full-MTU packets back to back.
        let per_packet_s = self.wire_time_us(self.mtu) / 1e6;
        assert!(
            per_packet_s.is_finite() && per_packet_s > 0.0,
            "degenerate link model {}: full-MTU packet time {per_packet_s}s",
            self.name
        );
        (self.mtu as f64 / (1 << 20) as f64) / per_packet_s
    }
}

/// The paper's four media, fastest wire first.
pub fn standard_links() -> Vec<LinkModel> {
    vec![
        LinkModel::hippi(),
        LinkModel::hundred_base_t(),
        LinkModel::fddi(),
        LinkModel::ten_base_t(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_packet_wire_times_match_paper_quotes() {
        // §6.7: ~65us one-way on 10Mbit for the latency benchmark's small
        // packet; 13us for 100Mbit/FDDI; <10us for HIPPI.
        let word_packet = 64; // Word + padding to minimum frame.
        let t10 = LinkModel::ten_base_t().wire_time_us(word_packet);
        assert!((40.0..120.0).contains(&t10), "10baseT {t10}us");
        let t100 = LinkModel::hundred_base_t().wire_time_us(word_packet);
        assert!((5.0..20.0).contains(&t100), "100baseT {t100}us");
        let tf = LinkModel::fddi().wire_time_us(word_packet);
        assert!((5.0..20.0).contains(&tf), "fddi {tf}us");
        let th = LinkModel::hippi().wire_time_us(word_packet);
        assert!(th < 10.0, "hippi {th}us");
    }

    #[test]
    fn wire_time_scales_with_size_and_packetizes() {
        let link = LinkModel::hundred_base_t();
        let one = link.wire_time_us(1500);
        let two = link.wire_time_us(3000);
        assert!(two > one * 1.9 && two < one * 2.1);
        // 1501 bytes needs two packets: strictly more than one full MTU.
        assert!(link.wire_time_us(1501) > one);
    }

    #[test]
    fn medium_throughput_ordering_matches_table_4() {
        let hippi = LinkModel::hippi().throughput_mb_s();
        let hundred = LinkModel::hundred_base_t().throughput_mb_s();
        let fddi = LinkModel::fddi().throughput_mb_s();
        let ten = LinkModel::ten_base_t().throughput_mb_s();
        assert!(hippi > fddi && hippi > hundred, "hippi {hippi}");
        assert!(fddi > ten && hundred > ten);
        // "100baseT is looking quite competitive when compared to FDDI":
        // within ~25% despite FDDI's 3x packets.
        assert!((hundred / fddi) > 0.75, "100baseT {hundred} vs FDDI {fddi}");
        // Raw sanity: 10baseT tops out near 1.2 MB/s.
        assert!((0.8..1.3).contains(&ten), "10baseT {ten} MB/s");
    }

    #[test]
    fn only_hippi_offloads_checksums() {
        let links = standard_links();
        assert_eq!(links.len(), 4);
        for l in &links {
            assert_eq!(l.checksum_offload, l.name == "hippi", "{}", l.name);
        }
    }

    #[test]
    #[should_panic(expected = "zero-byte")]
    fn zero_bytes_rejected() {
        LinkModel::hippi().wire_time_us(0);
    }

    #[test]
    #[should_panic(expected = "degenerate link model")]
    fn degenerate_model_rejected_not_divided() {
        // An infinite bit rate with no fixed packet cost yields a
        // zero-time packet; throughput must refuse, not return `inf`.
        let broken = LinkModel {
            name: "broken",
            bandwidth_mbit: f64::INFINITY,
            mtu: 1500,
            per_packet_us: 0.0,
            header_bytes: 0,
            checksum_offload: false,
        };
        broken.throughput_mb_s();
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn any_link() -> impl Strategy<Value = LinkModel> {
        (0..4usize).prop_map(|i| standard_links()[i])
    }

    proptest! {
        /// Wire time is strictly monotone in payload size.
        #[test]
        fn wire_time_monotone(link in any_link(), a in 1usize..100_000, b in 1usize..100_000) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(link.wire_time_us(lo) <= link.wire_time_us(hi));
        }

        /// Payload throughput never exceeds the raw bit rate.
        #[test]
        fn throughput_below_bit_rate(link in any_link()) {
            let raw_mb_s = link.bandwidth_mbit / 8.0 * 1e6 / (1 << 20) as f64;
            prop_assert!(link.throughput_mb_s() <= raw_mb_s);
        }

        /// Packetization: wire time is superadditive across a split
        /// (two transfers cost at least one combined transfer).
        #[test]
        fn splitting_never_cheaper(link in any_link(), a in 1usize..50_000, b in 1usize..50_000) {
            let together = link.wire_time_us(a + b);
            let split = link.wire_time_us(a) + link.wire_time_us(b);
            prop_assert!(split >= together - 1e-9);
        }
    }
}
