//! Operational metrics for lmbench-rs: counters, gauges, and log2-bucketed
//! histograms behind a process-global on/off switch.
//!
//! The design mirrors the `lmb-trace` sink contract: when metrics are
//! disabled (the default), every recording call is a single relaxed atomic
//! load and a predictable branch — nothing is allocated, locked, or written.
//! The overhead guard in `tests/overhead.rs` pins that promise the same way
//! `crates/trace/tests/overhead.rs` pins the trace sink's.
//!
//! Two recording paths exist on every instrument:
//!
//! * `add` / `set` / `record` — gated on [`enabled`]; use these on hot paths
//!   that must cost nothing when nobody is looking.
//! * `add_always` / `set_always` / `record_always` — ungated; use these on
//!   paths that are already behind another enablement check (the trace sink's
//!   delivery path) or that are intrinsically cold (a compaction run).
//!
//! Instruments can live two ways: as plain struct fields (a daemon holding
//! its own `Counter`s) or registered by name in the process-global registry
//! so [`snapshot`] can enumerate them. Snapshots are deterministic: names
//! are sorted, histogram bucket boundaries are fixed powers of two, and no
//! wall-clock state leaks in — two processes that perform the same recorded
//! operations in the same order produce byte-identical rendered snapshots.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering::Relaxed};
use std::sync::{Mutex, MutexGuard, OnceLock};

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Is metrics recording on? Inlined relaxed load: the entire disabled-path
/// cost of any gated instrument call.
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Relaxed)
}

/// Turn gated recording on process-wide.
pub fn enable() {
    ENABLED.store(true, Relaxed);
}

/// Turn gated recording off process-wide. Values already recorded remain
/// readable; nothing is cleared.
pub fn disable() {
    ENABLED.store(false, Relaxed);
}

/// A monotonically increasing count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub const fn new() -> Self {
        Counter {
            value: AtomicU64::new(0),
        }
    }

    /// Gated add: free when metrics are disabled.
    #[inline(always)]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.value.fetch_add(n, Relaxed);
        }
    }

    #[inline(always)]
    pub fn incr(&self) {
        self.add(1)
    }

    /// Ungated add for call sites behind their own enablement check.
    #[inline]
    pub fn add_always(&self, n: u64) {
        self.value.fetch_add(n, Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Relaxed)
    }
}

/// A value that can move both ways (active connections, queue depth).
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    pub const fn new() -> Self {
        Gauge {
            value: AtomicI64::new(0),
        }
    }

    #[inline(always)]
    pub fn set(&self, v: i64) {
        if enabled() {
            self.value.store(v, Relaxed);
        }
    }

    #[inline(always)]
    pub fn add(&self, n: i64) {
        if enabled() {
            self.value.fetch_add(n, Relaxed);
        }
    }

    #[inline]
    pub fn add_always(&self, n: i64) {
        self.value.fetch_add(n, Relaxed);
    }

    #[inline]
    pub fn set_always(&self, v: i64) {
        self.value.store(v, Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.value.load(Relaxed)
    }
}

/// One bucket per power of two plus a zero bucket: 65 in all, always.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Bucket index for a recorded value. Bucket 0 holds zeros; bucket `i >= 1`
/// holds `2^(i-1) <= v < 2^i`. The boundaries are fixed at compile time so
/// snapshots taken under `SimClock` (or on any two hosts fed the same
/// values) land in identical buckets.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros()) as usize
    }
}

/// Lower bound of a bucket (inclusive), for rendering.
pub fn bucket_floor(index: usize) -> u64 {
    match index {
        0 => 0,
        i => 1u64 << (i - 1),
    }
}

/// A log2-bucketed distribution (latencies in microseconds, batch sizes).
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    pub const fn new() -> Self {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
        }
    }

    /// Gated record: free when metrics are disabled.
    #[inline(always)]
    pub fn record(&self, v: u64) {
        if enabled() {
            self.record_always(v);
        }
    }

    /// Ungated record for call sites behind their own enablement check.
    #[inline]
    pub fn record_always(&self, v: u64) {
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
        self.buckets[bucket_index(v)].fetch_add(1, Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Relaxed)
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Relaxed);
            if n > 0 {
                buckets.push((i as u32, n));
            }
        }
        HistogramSnapshot {
            count: self.count(),
            sum: self.sum(),
            buckets,
        }
    }
}

/// Point-in-time copy of one histogram: total count, total sum, and the
/// non-empty buckets as `(bucket index, count)` pairs in index order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub buckets: Vec<(u32, u64)>,
}

// ---------------------------------------------------------------------------
// Process-global registry
// ---------------------------------------------------------------------------

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<&'static str, &'static Counter>,
    gauges: BTreeMap<&'static str, &'static Gauge>,
    histograms: BTreeMap<&'static str, &'static Histogram>,
}

fn registry() -> MutexGuard<'static, RegistryInner> {
    static REGISTRY: OnceLock<Mutex<RegistryInner>> = OnceLock::new();
    REGISTRY
        .get_or_init(|| Mutex::new(RegistryInner::default()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Find-or-create the named counter. The instrument is leaked once and lives
/// for the process; cache the returned reference (see the [`counter!`]
/// macro) so hot paths never touch the registry lock.
pub fn counter(name: &'static str) -> &'static Counter {
    registry()
        .counters
        .entry(name)
        .or_insert_with(|| Box::leak(Box::new(Counter::new())))
}

/// Find-or-create the named gauge.
pub fn gauge(name: &'static str) -> &'static Gauge {
    registry()
        .gauges
        .entry(name)
        .or_insert_with(|| Box::leak(Box::new(Gauge::new())))
}

/// Find-or-create the named histogram.
pub fn histogram(name: &'static str) -> &'static Histogram {
    registry()
        .histograms
        .entry(name)
        .or_insert_with(|| Box::leak(Box::new(Histogram::new())))
}

/// Resolve a named counter once, then reuse the `&'static` on every hit.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static SLOT: ::std::sync::OnceLock<&'static $crate::Counter> = ::std::sync::OnceLock::new();
        *SLOT.get_or_init(|| $crate::counter($name))
    }};
}

/// Resolve a named gauge once, then reuse the `&'static` on every hit.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static SLOT: ::std::sync::OnceLock<&'static $crate::Gauge> = ::std::sync::OnceLock::new();
        *SLOT.get_or_init(|| $crate::gauge($name))
    }};
}

/// Resolve a named histogram once, then reuse the `&'static` on every hit.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static SLOT: ::std::sync::OnceLock<&'static $crate::Histogram> =
            ::std::sync::OnceLock::new();
        *SLOT.get_or_init(|| $crate::histogram($name))
    }};
}

/// A deterministic point-in-time copy of every registered instrument,
/// sorted by name.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    pub counters: Vec<(String, u64)>,
    pub gauges: Vec<(String, i64)>,
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl Snapshot {
    /// Everything as flat `(name, value)` counter rows — the shape the
    /// `metrics_snapshot` trace event carries. Gauges clamp at zero;
    /// histograms contribute `name.count`, `name.sum`, and one
    /// `name.ge_<floor>` row per non-empty bucket.
    pub fn flatten(&self) -> Vec<(String, u64)> {
        let mut rows = Vec::new();
        for (name, v) in &self.counters {
            rows.push((name.clone(), *v));
        }
        for (name, v) in &self.gauges {
            rows.push((name.clone(), (*v).max(0) as u64));
        }
        for (name, h) in &self.histograms {
            rows.push((format!("{name}.count"), h.count));
            rows.push((format!("{name}.sum"), h.sum));
            for (idx, n) in &h.buckets {
                rows.push((format!("{name}.ge_{}", bucket_floor(*idx as usize)), *n));
            }
        }
        rows.sort();
        rows
    }

    /// What happened between `earlier` and `self`: counters and histogram
    /// totals subtract (saturating, so a fresh registry diffs cleanly),
    /// gauges keep their latest value.
    pub fn delta_from(&self, earlier: &Snapshot) -> Snapshot {
        let base_counters: BTreeMap<&str, u64> = earlier
            .counters
            .iter()
            .map(|(n, v)| (n.as_str(), *v))
            .collect();
        let base_hists: BTreeMap<&str, &HistogramSnapshot> = earlier
            .histograms
            .iter()
            .map(|(n, h)| (n.as_str(), h))
            .collect();
        let counters = self
            .counters
            .iter()
            .map(|(n, v)| {
                let before = base_counters.get(n.as_str()).copied().unwrap_or(0);
                (n.clone(), v.saturating_sub(before))
            })
            .collect();
        let histograms = self
            .histograms
            .iter()
            .map(|(n, h)| {
                let mut out = h.clone();
                if let Some(before) = base_hists.get(n.as_str()) {
                    out.count = h.count.saturating_sub(before.count);
                    out.sum = h.sum.saturating_sub(before.sum);
                    let earlier_buckets: BTreeMap<u32, u64> =
                        before.buckets.iter().copied().collect();
                    out.buckets = h
                        .buckets
                        .iter()
                        .map(|(i, c)| {
                            (
                                *i,
                                c.saturating_sub(earlier_buckets.get(i).copied().unwrap_or(0)),
                            )
                        })
                        .filter(|(_, c)| *c > 0)
                        .collect();
                }
                (n.clone(), out)
            })
            .collect();
        Snapshot {
            counters,
            gauges: self.gauges.clone(),
            histograms,
        }
    }
}

/// Snapshot every registered instrument. Deterministic: BTreeMap order, no
/// timestamps, no process identity.
pub fn snapshot() -> Snapshot {
    let reg = registry();
    Snapshot {
        counters: reg
            .counters
            .iter()
            .map(|(n, c)| (n.to_string(), c.get()))
            .collect(),
        gauges: reg
            .gauges
            .iter()
            .map(|(n, g)| (n.to_string(), g.get()))
            .collect(),
        histograms: reg
            .histograms
            .iter()
            .map(|(n, h)| (n.to_string(), h.snapshot()))
            .collect(),
    }
}

/// Serializes tests that flip the process-global [`enable`] switch, exactly
/// like `lmb_trace::test_lock`.
#[doc(hidden)]
pub fn test_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn guard() -> MutexGuard<'static, ()> {
        test_lock().lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn gated_instruments_record_nothing_while_disabled() {
        let _g = guard();
        disable();
        let c = Counter::new();
        let g = Gauge::new();
        let h = Histogram::new();
        c.add(7);
        g.set(9);
        h.record(1024);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
        assert_eq!(h.count(), 0);
        enable();
        c.add(7);
        g.set(9);
        h.record(1024);
        assert_eq!(c.get(), 7);
        assert_eq!(g.get(), 9);
        assert_eq!((h.count(), h.sum()), (1, 1024));
        disable();
    }

    #[test]
    fn ungated_paths_record_regardless_of_the_switch() {
        let _g = guard();
        disable();
        let c = Counter::new();
        c.add_always(3);
        let h = Histogram::new();
        h.record_always(0);
        assert_eq!(c.get(), 3);
        assert_eq!(h.snapshot().buckets, vec![(0, 1)]);
    }

    #[test]
    fn bucket_boundaries_are_fixed_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_floor(0), 0);
        assert_eq!(bucket_floor(1), 1);
        assert_eq!(bucket_floor(11), 1024);
        // Every value lands strictly inside [floor(i), floor(i+1)).
        for v in [1u64, 2, 3, 5, 100, 4095, 4096, 1 << 40] {
            let i = bucket_index(v);
            assert!(bucket_floor(i) <= v);
            assert!(i == 64 || v < bucket_floor(i + 1));
        }
    }

    #[test]
    fn registry_snapshot_is_sorted_and_repeatable() {
        let _g = guard();
        counter("test.zeta").add_always(2);
        counter("test.alpha").add_always(1);
        gauge("test.depth").set_always(4);
        histogram("test.lat_us").record_always(300);
        let a = snapshot();
        let b = snapshot();
        assert_eq!(a, b);
        let names: Vec<&str> = a.counters.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        assert!(a
            .histograms
            .iter()
            .any(|(n, h)| n == "test.lat_us" && h.count >= 1));
    }

    #[test]
    fn named_instruments_are_find_or_create() {
        let _g = guard();
        let first = counter("test.shared") as *const Counter;
        let second = counter("test.shared") as *const Counter;
        assert_eq!(first, second);
    }

    #[test]
    fn flatten_renders_histograms_as_counter_rows() {
        let h = Histogram::new();
        h.record_always(5);
        h.record_always(1000);
        let snap = Snapshot {
            counters: vec![("c".into(), 2)],
            gauges: vec![("g".into(), -3)],
            histograms: vec![("h".into(), h.snapshot())],
        };
        let flat = snap.flatten();
        assert!(flat.contains(&("c".to_string(), 2)));
        assert!(flat.contains(&("g".to_string(), 0)));
        assert!(flat.contains(&("h.count".to_string(), 2)));
        assert!(flat.contains(&("h.sum".to_string(), 1005)));
        assert!(flat.contains(&("h.ge_4".to_string(), 1)));
        assert!(flat.contains(&("h.ge_512".to_string(), 1)));
    }

    #[test]
    fn snapshot_delta_subtracts_counters_and_histograms() {
        let h = Histogram::new();
        h.record_always(10);
        let before = Snapshot {
            counters: vec![("c".into(), 5)],
            gauges: vec![("g".into(), 1)],
            histograms: vec![("h".into(), h.snapshot())],
        };
        h.record_always(10);
        h.record_always(2000);
        let after = Snapshot {
            counters: vec![("c".into(), 9), ("new".into(), 4)],
            gauges: vec![("g".into(), 7)],
            histograms: vec![("h".into(), h.snapshot())],
        };
        let d = after.delta_from(&before);
        assert!(d.counters.contains(&("c".to_string(), 4)));
        assert!(d.counters.contains(&("new".to_string(), 4)));
        assert!(d.gauges.contains(&("g".to_string(), 7)));
        let (_, hd) = &d.histograms[0];
        assert_eq!(hd.count, 2);
        assert_eq!(hd.sum, 2010);
        assert_eq!(hd.buckets, vec![(4, 1), (11, 1)]);
    }
}
