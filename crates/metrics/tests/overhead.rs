//! The metrics twin of `crates/trace/tests/overhead.rs`: with the registry
//! disabled, a timing loop dotted with gated counter/gauge/histogram calls
//! must be indistinguishable from a bare one.
//!
//! Each disabled instrument call is one relaxed atomic load and a
//! predictable branch; this guard holds it to that with the paper's
//! min-of-N methodology (minimums discard scheduling noise, §3.4) and the
//! workspace's bounded-retry discipline for timing assertions.

use lmb_metrics::{Counter, Gauge, Histogram};
use std::hint::black_box;
use std::time::Instant;

/// A deterministic few-hundred-nanosecond unit of work.
#[inline(never)]
fn work(seed: u64) -> u64 {
    let mut acc = seed;
    for i in 0..64u64 {
        acc = acc.wrapping_mul(6364136223846793005).wrapping_add(i);
    }
    acc
}

/// Minimum per-iteration time (ns) over `reps` timed runs of `iters`
/// iterations of `body`.
fn min_ns_per_iter(reps: u32, iters: u64, mut body: impl FnMut(u64) -> u64) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let start = Instant::now();
        let mut acc = 0u64;
        for i in 0..iters {
            acc = acc.wrapping_add(body(i));
        }
        black_box(acc);
        let ns = start.elapsed().as_secs_f64() * 1e9 / iters as f64;
        best = best.min(ns);
    }
    best
}

#[test]
fn disabled_metrics_do_not_perturb_a_timed_loop() {
    let _guard = lmb_metrics::test_lock()
        .lock()
        .unwrap_or_else(|p| p.into_inner());
    lmb_metrics::disable();
    assert!(
        !lmb_metrics::enabled(),
        "metrics must be disabled for the overhead guard"
    );
    static REQUESTS: Counter = Counter::new();
    static DEPTH: Gauge = Gauge::new();
    static LATENCY: Histogram = Histogram::new();
    const ITERS: u64 = 20_000;
    const REPS: u32 = 7;
    // Timing comparisons flake under CI schedulers; retry a few times and
    // keep the best (smallest) observed ratio, failing only if every
    // attempt shows a real slowdown.
    let mut best_ratio = f64::INFINITY;
    for _ in 0..6 {
        let baseline = min_ns_per_iter(REPS, ITERS, work);
        let instrumented = min_ns_per_iter(REPS, ITERS, |i| {
            // The exact instrumentation shape the RPC server and daemon
            // use on their request path: all three must vanish.
            REQUESTS.incr();
            DEPTH.add(1);
            LATENCY.record(i);
            work(i)
        });
        assert!(baseline > 0.0 && instrumented > 0.0);
        best_ratio = best_ratio.min(instrumented / baseline);
        if best_ratio <= 1.10 {
            break;
        }
    }
    assert!(
        best_ratio <= 1.25,
        "disabled metrics slowed the loop by {:.1}% (want < 25% even under noise)",
        (best_ratio - 1.0) * 100.0
    );
    assert_eq!(REQUESTS.get(), 0, "disabled counter must not have counted");
    assert_eq!(DEPTH.get(), 0);
    assert_eq!(LATENCY.count(), 0);
}
